#!/usr/bin/env python
"""Project-specific AST lint: rules the generic linters cannot express.

Three rules, each enforcing an invariant the execution layer depends on
(see ``docs/static-analysis.md`` for the catalog):

``bare-raise``
    No bare ``raise ValueError(...)`` / ``raise RuntimeError(...)`` /
    ``raise TypeError(...)`` inside the execution layer
    (``runtime/``, ``session/``, ``sim/``, ``core/plan.py``): failures
    there must use the typed taxonomy of :mod:`repro.errors` so the
    retry/degradation machinery can classify them.  Genuine
    *configuration* errors — the user asked for something that does not
    exist, where a plain builtin is the documented contract — carry a
    ``# lint: config-error`` pragma on the raise line.

``hot-alloc``
    No allocation calls (``np.zeros`` / ``np.empty`` / ``np.copy`` /
    ``np.array`` / ``np.ascontiguousarray`` / ``tracked_empty``) inside
    the per-op ``run()`` / ``run_batched()`` closures of
    ``sim/program.py``: compiled-op execution must be allocation-free in
    steady state; buffers come from the :class:`Workspace` only.

``monotonic-time``
    No ``time.time()`` anywhere in ``src/repro``: deadlines and timing
    use ``time.monotonic()`` / ``time.perf_counter()`` (wall-clock time
    jumps break :class:`repro.errors.Deadline`).

Usage::

    python tools/lint_repro.py [--baseline tools/lint_baseline.json]
                               [--write-baseline] [paths...]

Exit status 1 when any non-baselined finding exists.  The baseline file
is a committed JSON list of finding keys (``"path::rule::symbol"``) that
lets pre-existing findings ride along without blocking CI; it is empty —
keep it that way.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Directories/files where the bare-raise rule applies (the execution
#: layer; planner/analysis code raising ValueError on bad user input is
#: out of scope by design).
BARE_RAISE_SCOPE = (
    "runtime/",
    "session/",
    "sim/",
    "core/plan.py",
)
BARE_RAISE_BUILTINS = {"ValueError", "RuntimeError", "TypeError"}
PRAGMA = "lint: config-error"

HOT_ALLOC_FILE = "sim/program.py"
HOT_ALLOC_CALLS = {"zeros", "empty", "copy", "array", "ascontiguousarray"}
HOT_ALLOC_NAMES = {"tracked_empty"}
HOT_CLOSURES = {"run", "run_batched"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str, symbol: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        #: Line-number-independent key for the baseline (survives drift).
        self.key = f"{path}::{rule}::{symbol}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _has_pragma(source_lines: list[str], node: ast.AST) -> bool:
    line = source_lines[node.lineno - 1]
    # The pragma may sit on the raise line or on the closing line of a
    # multi-line raise.
    end = getattr(node, "end_lineno", node.lineno)
    return any(
        PRAGMA in source_lines[i]
        for i in range(node.lineno - 1, min(end, len(source_lines)))
    )


def _enclosing(stack: list[str]) -> str:
    return ".".join(stack) if stack else "<module>"


def check_file(path: Path) -> list[Finding]:
    rel = path.relative_to(REPO).as_posix()
    rel_src = path.relative_to(SRC).as_posix() if SRC in path.parents or path.parent == SRC else rel
    try:
        source = path.read_text()
    except OSError as exc:  # pragma: no cover - unreadable file
        return [Finding(rel, 0, "io", f"unreadable: {exc}", "io")]
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))

    findings: list[Finding] = []
    in_scope_raise = any(
        rel_src == scope or rel_src.startswith(scope) for scope in BARE_RAISE_SCOPE
    )
    is_hot_file = rel_src == HOT_ALLOC_FILE

    func_stack: list[str] = []
    #: Parallel stack: whether each enclosing function is a class method.
    #: ``CompiledProgram.run`` (the documented one-allocation public API)
    #: is a method; the hot-alloc rule targets only the nested per-op
    #: ``run`` / ``run_batched`` closures.
    method_stack: list[bool] = []

    def visit(node: ast.AST, parent: ast.AST | None = None) -> None:
        pushed = False
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_stack.append(node.name)
            method_stack.append(isinstance(parent, ast.ClassDef))
            pushed = True

        if in_scope_raise and isinstance(node, ast.Raise) and node.exc is not None:
            call = node.exc
            name = None
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Name):
                name = call.func.id
            elif isinstance(call, ast.Name):
                name = call.id
            if name in BARE_RAISE_BUILTINS and not _has_pragma(lines, node):
                where = _enclosing(func_stack)
                findings.append(
                    Finding(
                        rel, node.lineno, "bare-raise",
                        f"bare `raise {name}` in {where}: use a typed error "
                        f"from repro.errors (or mark a genuine user "
                        f"configuration error with `# {PRAGMA}`)",
                        f"{where}:{name}",
                    )
                )

        if is_hot_file and isinstance(node, ast.Call):
            hot = any(
                f in HOT_CLOSURES and not is_method
                for f, is_method in zip(func_stack, method_stack)
            )
            if hot:
                alloc = None
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and isinstance(f.value, ast.Name)
                    and f.value.id == "np"
                    and f.attr in HOT_ALLOC_CALLS
                ):
                    alloc = f"np.{f.attr}"
                elif isinstance(f, ast.Name) and f.id in HOT_ALLOC_NAMES:
                    alloc = f.id
                if alloc is not None:
                    where = _enclosing(func_stack)
                    findings.append(
                        Finding(
                            rel, node.lineno, "hot-alloc",
                            f"allocation `{alloc}` inside hot closure "
                            f"{where}: per-op execution must be "
                            f"allocation-free — borrow from the Workspace",
                            f"{where}:{alloc}",
                        )
                    )

        if isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr == "time"
                and isinstance(f.value, ast.Name)
                and f.value.id == "time"
            ):
                where = _enclosing(func_stack)
                findings.append(
                    Finding(
                        rel, node.lineno, "monotonic-time",
                        f"`time.time()` in {where}: use time.monotonic() or "
                        f"time.perf_counter() (Deadline requires a "
                        f"monotonic clock)",
                        f"{where}:time.time",
                    )
                )

        for child in ast.iter_child_nodes(node):
            visit(child, node)
        if pushed:
            func_stack.pop()
            method_stack.pop()

    visit(tree)
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=REPO / "tools" / "lint_baseline.json",
        help="JSON list of accepted finding keys",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    args = parser.parse_args(argv)

    roots = args.paths or [SRC]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)

    findings: list[Finding] = []
    for path in files:
        findings.extend(check_file(path))

    if args.write_baseline:
        args.baseline.write_text(
            json.dumps(sorted(f.key for f in findings), indent=2) + "\n"
        )
        print(f"wrote {len(findings)} finding key(s) to {args.baseline}")
        return 0

    baseline: set[str] = set()
    if args.baseline.exists():
        baseline = set(json.loads(args.baseline.read_text()))

    fresh = [f for f in findings if f.key not in baseline]
    for finding in fresh:
        print(finding)
    suppressed = len(findings) - len(fresh)
    status = "clean" if not fresh else f"{len(fresh)} finding(s)"
    print(
        f"lint_repro: {status} across {len(files)} file(s)"
        + (f" ({suppressed} baselined)" if suppressed else "")
    )
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())

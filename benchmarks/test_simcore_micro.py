"""Simulation-core micro benchmarks (opt-in: ``pytest -m bench``).

These tests assert the perf envelope the zero-copy engine must hold —
specialized paths beating the tensordot reference, plan execution beating
the seed executor, and no >2x regression vs the committed
``BENCH_simcore.json`` baseline.  They are excluded from the default
(tier-1) run by the ``bench`` marker because wall-clock assertions are
machine-dependent; run them with::

    PYTHONPATH=src python -m pytest benchmarks/test_simcore_micro.py -m bench -s
"""

import json

import pytest

import run_bench


pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def micro_results():
    return run_bench.run_micro(num_qubits=18, repeats=3)


class TestMicroSpeedups:
    def test_structured_paths_beat_reference(self, micro_results):
        # Conservative floors (the committed 20q baseline records ~5-10x):
        # structured gates must win big, dense gates must at least win.
        assert micro_results["diagonal"]["speedup"] > 3.0
        assert micro_results["permutation"]["speedup"] > 3.0
        assert micro_results["controlled"]["speedup"] > 1.5

    def test_dense_paths_beat_reference(self, micro_results):
        assert micro_results["dense_1q"]["speedup"] > 1.5
        assert micro_results["dense_2q"]["speedup"] > 1.2

    def test_1q2q_mix_speedup(self, micro_results):
        assert micro_results["mix_1q2q_speedup"] > 2.5

    def test_wide_fused_gemm_routing_beats_tensordot(self, micro_results):
        # Satellite pin: k>=3 fused matrices on plannable positions run as
        # one streaming gemm (was ~1.2x as pure tensordot, ~4x routed).
        assert micro_results["fused_3q"]["speedup"] > 1.5


class TestPlanSpeedup:
    def test_execute_plan_beats_seed_executor(self):
        plan = run_bench.run_plan(num_qubits=14, repeats=2)
        assert plan["speedup"] > 1.5
        assert plan["state_fidelity_vs_seed"] > 1 - 1e-9
        # Ping-pong pair + one tensordot workspace per wide fused kernel —
        # a handful, never O(#gates) (qft-14 has 105 gates).
        assert plan["warm_allocations_state_sized"] <= 10


class TestOffloadRuntime:
    @pytest.fixture(scope="class")
    def offload_results(self):
        return run_bench.run_offload(num_qubits=12, repeats=2)

    def test_parallel_is_bit_exact_at_every_width(self, offload_results):
        for workers, par in offload_results["parallel"].items():
            assert par["bit_exact"], f"W={workers} diverged from sequential"

    def test_batch_is_not_slower_than_oneshot(self, offload_results):
        # Reusing one runtime (pool, worker buffers, segmentation) across a
        # batch must not lose to spinning everything up per problem.  The
        # amortisation win is only a few percent at this size, so allow
        # timing noise rather than assert a strict > 1.0.
        assert offload_results["batch"]["amortization_speedup"] > 0.8

    def test_records_host_parallelism_context(self, offload_results):
        assert offload_results["cpu_count"] >= 1
        assert offload_results["num_shards"] > offload_results["physical_gpus"]


class TestSessionAmortisation:
    @pytest.fixture(scope="class")
    def session_results(self):
        return run_bench.run_session_bench(num_qubits=10, sweep_size=10)

    def test_sweep_partitions_once(self, session_results):
        assert session_results["plans_built"] == 1
        assert session_results["cache_hits"] == session_results["sweep_size"] - 1

    def test_warm_states_match_cold(self, session_results):
        assert (
            session_results["states_match_cold"] == session_results["sweep_size"]
        )

    def test_amortisation_at_least_5x(self, session_results):
        # Planning dominates at this size, so skipping 9 of 10 solves must
        # win by far more than the acceptance floor.
        assert session_results["speedup"] >= 5.0


class TestCompiledPrograms:
    @pytest.fixture(scope="class")
    def compile_results(self):
        return run_bench.run_compile_bench(num_qubits=10, repeats=3)

    def test_compiled_reexecution_beats_interpreter_2x(self, compile_results):
        assert compile_results["speedup_vs_interpreted"] >= 2.0
        assert compile_results["bit_exact_incore"]

    def test_batched_beats_loop_1_5x(self, compile_results):
        assert compile_results["batched"]["speedup_vs_loop"] >= 1.5
        assert compile_results["batched"]["states_match"]
        assert compile_results["batched"]["max_abs_diff"] <= 1e-10

    def test_every_path_agrees(self, compile_results):
        assert compile_results["offload_state_matches"]
        assert all(compile_results["parallel_bit_exact"].values())

    def test_rebind_reuses_constant_ops(self, compile_results):
        assert compile_results["rebind_ops_reused"] > 0
        assert compile_results["rebind_seconds"] < compile_results["compile_seconds"] * 5


class TestPlannerPresets:
    @pytest.fixture(scope="class")
    def planner_results(self):
        return run_bench.run_plan_pipeline_bench(
            run_bench.PLAN_SWEEP_QUICK, repeats=3
        )

    def test_fast_preset_median_speedup(self, planner_results):
        assert planner_results["fast_median_speedup_vs_seed"] >= 2.0

    def test_fast_preset_cost_never_worse_than_seed(self, planner_results):
        for key, entry in planner_results["entries"].items():
            fast = entry["presets"]["fast"]
            assert fast["kernel_cost"] <= entry["seed_kernel_cost"] + 1e-9, key

    def test_preset_quality_ladder_monotone(self, planner_results):
        for key, entry in planner_results["entries"].items():
            presets = entry["presets"]
            assert presets["balanced"]["kernel_cost"] <= presets["fast"]["kernel_cost"] + 1e-9, key
            assert presets["quality"]["kernel_cost"] <= presets["balanced"]["kernel_cost"] + 1e-9, key


class TestBaselineRegression:
    def test_quick_run_has_no_regression_vs_committed_baseline(self):
        baseline_path = run_bench.DEFAULT_BASELINE
        if not baseline_path.exists():
            pytest.skip("no committed BENCH_simcore.json baseline")
        baseline = json.loads(baseline_path.read_text())
        current = run_bench.run_suite(
            micro_sizes=[16], plan_sizes=[14], repeats=3, offload_sizes=[12],
            session_sizes=[10], session_sweep=10, compile_sizes=[10],
            planner_sweep=run_bench.PLAN_SWEEP_QUICK,
        )
        problems = run_bench.check_regression(current, baseline, threshold=2.0)
        assert not problems, "\n".join(problems)

    def test_check_regression_flags_slowdowns(self):
        current = run_bench.run_suite(
            micro_sizes=[16], plan_sizes=[14], repeats=2, offload_sizes=[12],
            session_sizes=[10], session_sweep=4, compile_sizes=[10],
            planner_sweep=run_bench.PLAN_SWEEP_QUICK[:1],
        )
        assert run_bench.check_regression(current, current) == []
        slowed = json.loads(json.dumps(current))
        for metrics in slowed["micro"]["16"].values():
            if isinstance(metrics, dict):
                metrics["fast_gates_per_s"] /= 10.0
        slowed["plans"]["14"]["fast_seconds"] *= 10.0
        slowed["offload"]["12"]["sequential_seconds"] *= 10.0
        slowed["offload"]["12"]["parallel"]["4"]["seconds"] *= 10.0
        slowed["offload"]["12"]["parallel"]["2"]["bit_exact"] = False
        slowed["session"]["10"]["execute_seconds_warm"] *= 10.0
        slowed["session"]["10"]["cache_hits"] = 0
        slowed["compile"]["10"]["compiled_seconds_per_run"] *= 10.0
        slowed["compile"]["10"]["speedup_vs_interpreted"] = 1.0
        slowed["compile"]["10"]["batched"]["speedup_vs_loop"] = 1.0
        slowed["compile"]["10"]["batched"]["states_match"] = False
        slowed["compile"]["10"]["parallel_bit_exact"]["2"] = False
        slowed["plan"]["fast_median_speedup_vs_seed"] = 1.0
        first_plan = next(iter(slowed["plan"]["entries"].values()))
        first_plan["presets"]["fast"]["kernel_cost"] = (
            first_plan["seed_kernel_cost"] * 2.0
        )
        first_plan["presets"]["fast"]["seconds"] *= 10.0
        problems = run_bench.check_regression(current=slowed, baseline=current)
        assert len(problems) >= 14

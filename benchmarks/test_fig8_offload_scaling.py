"""Figure 8 — DRAM offloading scales across GPUs for Atlas but not for QDAO.

The paper runs the 32-qubit qft circuit with DRAM offloading on 1, 2 and 4
GPUs: Atlas's time drops as GPUs are added (shards stream through more
devices in parallel) while QDAO's stays flat.  The benchmark reproduces the
same three-point sweep with the performance model.
"""

from repro.analysis import figure8_offload_scaling, format_table


def test_fig8_offload_scaling(benchmark, paper_scale, local_qubits):
    num_qubits = 32 if paper_scale else local_qubits + 4
    rows = benchmark.pedantic(
        figure8_offload_scaling,
        kwargs=dict(num_qubits=num_qubits, local_qubits=local_qubits,
                    gpu_counts=(1, 2, 4), pruning_threshold=16),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(
        rows,
        title=f"Figure 8 — offloaded {num_qubits}-qubit qft vs GPU count (modelled seconds)",
    ))

    atlas = [row["atlas_s"] for row in rows]
    qdao = [row["qdao_s"] for row in rows]
    # Atlas gets faster with more GPUs; QDAO stays flat.
    assert atlas[-1] < atlas[0]
    assert abs(qdao[-1] - qdao[0]) / qdao[0] < 0.05

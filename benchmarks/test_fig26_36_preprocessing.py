"""Figures 26–36 — kernelization preprocessing time per circuit family.

The appendix also reports how long each kernelization algorithm takes to
*run* (not the quality of its output).  The paper's observation is that
KERNELIZE's preprocessing stays within the same order of magnitude as the
ILP staging (seconds), and that the greedy packer is the fastest but
produces the worst plans.  These benchmarks time the three kernelizers on
each family; pytest-benchmark records the KERNELIZE timing as the primary
measurement.
"""

import pytest

from repro.analysis import figure26_36_preprocessing_time, format_table

FIGURE_OF_FAMILY = {
    "ae": 26, "dj": 27, "ghz": 28, "graphstate": 29, "ising": 30, "qft": 31,
    "qpeexact": 32, "qsvm": 33, "su2random": 34, "vqc": 35, "wstate": 36,
}


@pytest.mark.parametrize("family", sorted(FIGURE_OF_FAMILY))
def test_per_circuit_preprocessing_time(benchmark, family, families, qubit_range, paper_scale):
    if not paper_scale and family not in families:
        pytest.skip("family excluded from the reduced-scale sweep (set REPRO_PAPER_SCALE=1)")
    rows = benchmark.pedantic(
        figure26_36_preprocessing_time,
        kwargs=dict(family=family, qubit_range=qubit_range, pruning_threshold=32),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(
        rows,
        title=f"Figure {FIGURE_OF_FAMILY[family]} — kernelization preprocessing time, {family}",
    ))
    for row in rows:
        assert row["atlas_s"] > 0 and row["atlas_naive_s"] > 0 and row["greedy_s"] > 0
        # Greedy packing is the cheapest preprocessing step.
        assert row["greedy_s"] <= row["atlas_s"]

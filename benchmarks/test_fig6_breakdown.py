"""Figure 6 — simulation time breakdown: communication vs computation.

The paper reports, averaged over the 11 benchmark circuits, the fraction of
Atlas's simulation time spent communicating as the machine grows from 1 to
256 GPUs: ~0% on a single GPU, a minority share within one node, and a
majority (≈60–66%) once multiple nodes are involved.  The benchmark
regenerates those averages from the cluster performance model.
"""

from repro.analysis import figure6_breakdown, format_table


def test_fig6_breakdown(benchmark, families, gpu_counts, local_qubits):
    rows = benchmark.pedantic(
        figure6_breakdown,
        kwargs=dict(
            families=families,
            gpu_counts=gpu_counts,
            local_qubits=local_qubits,
            pruning_threshold=16,
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows, title="Figure 6 — Atlas time breakdown (averages)"))

    by_gpus = {row["gpus"]: row for row in rows}
    # Single GPU: no inter-shard communication at all.
    assert by_gpus[min(by_gpus)]["comm_fraction"] == 0.0
    # Communication share grows (weakly) as the machine spans more GPUs/nodes.
    fractions = [row["comm_fraction"] for row in rows]
    assert fractions[-1] >= fractions[0]
    # Multi-node configurations are communication-dominated (paper: ~65%).
    if max(by_gpus) >= 16:
        assert by_gpus[max(by_gpus)]["comm_fraction"] > 0.3

"""Figure 5 — end-to-end weak scaling: Atlas vs HyQuas / cuQuantum / Qiskit.

For every circuit family the paper increases the machine from 1 to 256 GPUs
while growing the circuit by one qubit per doubling (28 local qubits).  The
benchmark reproduces that sweep on the cluster performance model and prints,
per family, the modelled simulation time of each simulator plus Atlas's
speedup over the best baseline.  The paper's headline claims that should
hold qualitatively: Atlas ≥ baselines at small GPU counts and increasingly
faster at large GPU counts (2×–5× at 64–256 GPUs), and Qiskit slower by
orders of magnitude throughout.
"""

from repro.analysis import figure5_weak_scaling, format_series


def test_fig5_weak_scaling(benchmark, families, gpu_counts, local_qubits):
    results = benchmark.pedantic(
        figure5_weak_scaling,
        kwargs=dict(
            families=families,
            gpu_counts=gpu_counts,
            local_qubits=local_qubits,
            pruning_threshold=16,
            ilp_time_limit=60.0,
        ),
        iterations=1,
        rounds=1,
    )
    print()
    for family, rows in results.items():
        series = {
            name: [row[name] for row in rows]
            for name in ("atlas", "hyquas", "cuquantum", "qiskit")
        }
        series["atlas_speedup"] = [row["speedup_vs_best_baseline"] for row in rows]
        print(
            format_series(
                "gpus",
                [row["gpus"] for row in rows],
                series,
                title=f"Figure 5 ({family}) — modelled simulation time (s)",
            )
        )
        print()

    # Qualitative checks across all families.
    for family, rows in results.items():
        for row in rows:
            assert row["atlas"] <= row["qiskit"], family
        # At the largest machine Atlas should beat the strongest baseline.
        assert rows[-1]["speedup_vs_best_baseline"] >= 1.0, family

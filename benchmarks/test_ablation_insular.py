"""Ablation (beyond the paper's figures): the value of insular qubits.

DESIGN.md calls out the insular-qubit optimisation as a load-bearing design
choice: without it, every controlled-phase / diagonal gate would force its
qubits into the local set and the stager would need far more stages (and
therefore far more all-to-all exchanges).  This ablation quantifies that by
staging the same circuits with insularity information withheld from the
stager (every gate qubit treated as non-insular).
"""

import pytest

from repro.analysis import format_table
from repro.analysis.reporting import geometric_mean
from repro.circuits.library import get_circuit
from repro.core.stage_heuristics import snuqs_stage_circuit
from repro.core.stage import stage_circuit


def _stage_count_without_insularity(circuit, local, regional, global_):
    """Greedy staging that ignores insularity (every qubit must be local)."""
    remaining = list(range(len(circuit)))
    stages = 0
    while remaining:
        stages += 1
        working: set[int] = set()
        taken: set[int] = set()
        blocked: set[int] = set()
        for idx in remaining:
            gate = circuit[idx]
            qubits = set(gate.qubits)
            if blocked & qubits:
                blocked |= qubits
                continue
            if len(working | qubits) <= local:
                working |= qubits
                taken.add(idx)
            else:
                blocked |= qubits
        if not taken:
            raise RuntimeError("no progress")
        remaining = [i for i in remaining if i not in taken]
    return stages


def test_insular_qubit_ablation(benchmark, families, local_qubits):
    num_qubits = local_qubits + 4

    def run():
        rows = []
        for family in families:
            circuit = get_circuit(family, num_qubits)
            with_ins = stage_circuit(circuit, local_qubits, 2, 2, time_limit=60.0)
            without_ins = _stage_count_without_insularity(circuit, local_qubits, 2, 2)
            rows.append(
                {
                    "circuit": family,
                    "stages_with_insular": with_ins.num_stages,
                    "stages_without_insular": without_ins,
                }
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(format_table(rows, title="Ablation — staging with vs without insular qubits"))
    with_g = geometric_mean([r["stages_with_insular"] for r in rows])
    without_g = geometric_mean([r["stages_without_insular"] for r in rows])
    # Insularity can only help, and helps overall.
    assert all(r["stages_with_insular"] <= r["stages_without_insular"] for r in rows)
    assert with_g <= without_g

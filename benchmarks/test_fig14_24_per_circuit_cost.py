"""Figures 14–24 — per-family kernelization cost (Atlas / Atlas-Naive / greedy).

The appendix plots, for each of the 11 circuit families and every size from
28 to 36 qubits, the total execution cost of the kernel plans produced by
KERNELIZE ("Atlas"), ORDERED-KERNELIZE ("Atlas-Naive") and the greedy
5-qubit packer.  One benchmark per family regenerates the corresponding
figure's series; the invariant checked is the paper's ordering
Atlas ≤ Atlas-Naive ≤-ish greedy (greedy occasionally ties on the trivially
structured families such as dj and ghz).
"""

import pytest

from repro.analysis import figure14_24_per_circuit_cost, format_table

FIGURE_OF_FAMILY = {
    "ae": 14, "dj": 15, "ghz": 16, "graphstate": 17, "ising": 18, "qft": 19,
    "qpeexact": 20, "qsvm": 21, "su2random": 22, "vqc": 23, "wstate": 24,
}


@pytest.mark.parametrize("family", sorted(FIGURE_OF_FAMILY))
def test_per_circuit_kernelization_cost(benchmark, family, families, qubit_range, paper_scale):
    if not paper_scale and family not in families:
        pytest.skip("family excluded from the reduced-scale sweep (set REPRO_PAPER_SCALE=1)")
    rows = benchmark.pedantic(
        figure14_24_per_circuit_cost,
        kwargs=dict(family=family, qubit_range=qubit_range, pruning_threshold=32),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(
        rows,
        title=f"Figure {FIGURE_OF_FAMILY[family]} — kernelization cost, {family}",
    ))
    # Allow a small margin over ORDERED-KERNELIZE: with the beam-pruning
    # threshold in effect, KERNELIZE is no longer provably dominant
    # (Appendix B-f notes pruning "is the only optimization that may worsen
    # the results"); in practice it stays within a few percent.
    for row in rows:
        assert row["atlas"] <= row["atlas_naive"] * 1.05
        assert row["atlas"] <= row["greedy"] * 1.05

"""Table II + Figures 25/37 — the hhl case study (many gates, few qubits).

The hhl circuits have orders of magnitude more gates than qubits (Table II),
which stresses the kernelizers.  The paper shows that KERNELIZE matches
ORDERED-KERNELIZE's cost on these circuits while running in linear time in
the number of gates (Figure 37), and that both beat the greedy packer
(Figure 25).
"""

from repro.analysis import figure25_hhl_case_study, format_table


def test_fig25_hhl_case_study(benchmark, paper_scale):
    sizes = (4, 7, 9, 10) if paper_scale else (4, 6, 7, 8)
    rows = benchmark.pedantic(
        figure25_hhl_case_study,
        kwargs=dict(hhl_sizes=sizes, pruning_threshold=16),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows, title="Table II + Figure 25 — hhl case study"))

    gates = [row["gates"] for row in rows]
    assert gates == sorted(gates)
    for row in rows:
        # KERNELIZE is no worse than the alternatives on cost.
        assert row["atlas"] <= row["atlas_naive"] * 1.05
        assert row["atlas"] <= row["greedy"] * 1.05

"""Figure 13 — pruning-threshold ablation of the KERNELIZE beam search.

The DP kernelizer bounds its state count with a pruning threshold T
(Appendix B-f).  The paper sweeps T from 4 to 4000 and shows (a) the
resulting plan cost decreases (then flattens) as T grows, (b) preprocessing
time grows with T, and (c) even tiny T beats ORDERED-KERNELIZE
("Atlas-Naive").  The benchmark regenerates that trade-off curve.
"""

from repro.analysis import figure13_pruning_threshold, format_table


def test_fig13_pruning_threshold(benchmark, paper_scale, families, local_qubits):
    thresholds = (4, 16, 50, 100, 200, 500) if paper_scale else (4, 16, 64)
    rows = benchmark.pedantic(
        figure13_pruning_threshold,
        kwargs=dict(thresholds=thresholds, families=families, num_qubits=local_qubits),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows, title="Figure 13 — pruning threshold T sweep"))

    numeric = [row for row in rows if isinstance(row["threshold"], int)]
    naive = next(row for row in rows if row["threshold"] == "naive")
    costs = [row["relative_cost"] for row in numeric]
    # Cost is non-increasing in T (larger beams cannot hurt).
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    # Even the smallest threshold beats ORDERED-KERNELIZE on cost.
    assert costs[0] <= naive["relative_cost"] + 1e-9

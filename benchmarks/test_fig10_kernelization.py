"""Figure 10 — kernelization effectiveness relative to greedy packing.

The paper reports, per circuit family, the geometric-mean cost of
KERNELIZE's kernel plans relative to a baseline that greedily packs gates
into 5-qubit fusion kernels (values below 1.0 mean KERNELIZE is better;
the paper's geomean is 0.583, with qft at 0.370 and dj/qsvm near 1.0).
The benchmark regenerates the relative-cost table and checks the headline
claims: no family gets worse, and the structured circuits (qft, ae,
su2random, vqc) improve by roughly 2–3×.
"""

from repro.analysis import figure10_kernelization, format_table
from repro.analysis.reporting import geometric_mean


def test_fig10_kernelization(benchmark, families, qubit_range):
    rows = benchmark.pedantic(
        figure10_kernelization,
        kwargs=dict(families=families, qubit_range=qubit_range, pruning_threshold=32),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows, title="Figure 10 — relative kernelization cost vs greedy"))

    by_name = {row["circuit"]: row["relative_cost"] for row in rows}
    # KERNELIZE never loses to the greedy baseline.
    assert all(v <= 1.01 for v in by_name.values())
    # The overall geometric mean shows a clear win (paper: 0.583).
    assert by_name["geomean"] < 0.9
    # qft is among the biggest winners (paper: 0.370).
    if "qft" in by_name:
        assert by_name["qft"] < 0.6

#!/usr/bin/env python
"""Simulation-core benchmark runner — emits/checks ``BENCH_simcore.json``.

Measures the zero-copy gate-application engine against the seed
implementation (dense tensordot apply + ``expand_matrix``-product fusion,
per-gate allocation) that :func:`repro.sim.apply.apply_matrix_reference`
preserves:

* **micro** — gates/sec by gate class (dense 1q, dense 2q, diagonal,
  permutation, controlled, fused 3q), each swept across qubit positions of
  a ``2^n`` state, for the engine and for the seed reference;
* **plan** — end-to-end :func:`repro.runtime.execute_plan` wall time on a
  QFT benchmark circuit (the paper's QFT-28 shape at a configurable size)
  versus a faithful re-implementation of the seed executor;
* **allocations** — engine allocation counts for a warm plan execution
  (the O(1)-state-sized-allocations property);
* **offload** — the shard-streaming runtime: sequential
  :func:`repro.runtime.execute_plan_offloaded` versus the parallel
  shard scheduler at 1/2/4 workers (bit-exactness checked), plus the
  ``run_batch`` heavy-traffic scenario versus one-shot execution.  The
  host's ``cpu_count`` is recorded next to the timings: thread-parallel
  speedup is bounded by the cores actually available, so compare parallel
  numbers only across runs on comparable hosts;
* **session** — plan-cache amortisation: a structurally identical VQC
  parameter sweep run cold (one fresh :func:`repro.simulate` per circuit,
  ILP staging + DP kernelization every time) versus warm (one
  :class:`repro.Session` ``run`` over the whole sweep — partitioning runs
  once, every further circuit re-binds the cached plan).  The ``--quick``
  gate requires the cache to prove ``sweep_size - 1`` hits, every warm
  state to match its cold counterpart, and the warm path to be ≥ 5x
  faster end-to-end;
* **plan** — the cold planning path: every library family x machine shape
  (4-shard split and single-shard "fits locally") planned by the seed
  planner (full ILP iteration + reference beam DP, reconstructed as a
  pipeline) and by each preset (``fast`` / ``balanced`` / ``quality``).
  The ``--quick`` gate requires the fast preset's median speedup over the
  seed planner to stay ≥ 2x with per-entry ``total_kernel_cost`` no worse
  than the seed plan, and the preset quality ladder to stay monotone
  (quality ≤ balanced ≤ fast kernel cost);
* **compile** — the compiled-program layer: one plan lowered once to a
  :class:`repro.sim.CompiledProgram` and re-executed many times versus the
  per-gate interpreter (`execute_plan(compiled=False)`), program rebind
  cost, and batched ``(B, 2^n)`` execution versus a B-loop of single-state
  runs.  The ``--quick`` gate requires compiled re-execution ≥ 2x over the
  interpreter (and ≥ 2x over the committed session baseline's warm
  per-circuit execution when present), batched execution ≥ 1.5x over the
  loop at B=16, and agreement across the incore (compiled vs interpreted,
  bit-exact), batched-vs-looped (tight tolerance — the B-wide gemm fold
  can change BLAS summation order), offload, and parallel (W ∈ {1,2,4},
  bit-exact) paths.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full run, writes BENCH_simcore.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # small sizes + regression check
    PYTHONPATH=src python benchmarks/run_bench.py --quick --write # refresh baseline at quick scale

``--quick`` compares against the committed baseline and exits non-zero if
any metric regressed by more than ``--threshold`` (default 2×).  The same
check runs under ``pytest -m bench`` (see ``test_simcore_micro.py``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
try:  # allow "python benchmarks/run_bench.py" without PYTHONPATH
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro import Session, simulate
from repro.circuits.library import ghz, graphstate, ising, qft, vqc, wstate
from repro.planner import PassManager, resolve_planner
from repro.cluster import MachineConfig
from repro.core import KernelizeConfig, partition
from repro.runtime import (
    ParallelRuntime,
    compile_plan,
    execute_plan,
    execute_plan_offloaded,
    execute_plan_parallel,
    model_simulation_time,
)
from repro.session.cache import rebind_plan
from repro.runtime.sharding import QubitLayout, permute_state
from repro.sim import StateVector, apply_matrix_reference, expand_matrix, kernel_qubits
from repro.sim import apply as apply_mod
from repro.sim.apply import apply_gate_buffered, apply_matrix
from repro.circuits.gates import gate_matrix

DEFAULT_BASELINE = REPO_ROOT / "BENCH_simcore.json"

#: Gate classes of the micro benchmark: name -> (matrix factory, #qubits).
GATE_CLASSES = {
    "dense_1q": (lambda: gate_matrix("h"), 1),
    "dense_2q": (lambda: _random_unitary(4, seed=7), 2),
    "diagonal": (lambda: gate_matrix("cp", [0.3]), 2),
    "permutation": (lambda: gate_matrix("cx"), 2),
    "controlled": (lambda: gate_matrix("ch"), 2),
    "fused_3q": (lambda: _random_unitary(8, seed=9), 3),
}


def _random_unitary(dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    unitary, _ = np.linalg.qr(raw)
    return unitary


def _best_seconds(fn, repeats: int) -> float:
    """Minimum wall time over *repeats* calls.

    The minimum is the standard estimator for throughput microbenchmarks:
    it is the sample least polluted by scheduler/container contention, and
    both the engine and the seed reference are measured the same way.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.min(samples))


# ---------------------------------------------------------------------------
# Micro benchmark
# ---------------------------------------------------------------------------


def _sweep_positions(n: int, k: int) -> list[list[int]]:
    """Qubit tuples covering low / middle / high positions of the register."""
    if k == 1:
        picks = sorted({0, 1, n // 2, n - 2, n - 1})
        return [[q] for q in picks]
    if k == 2:
        return [
            [0, 1],
            [1, 0],
            [0, n - 1],
            [n // 2 - 1, n // 2],
            [2, n // 2],
            [n - 2, n - 1],
        ]
    return [[0, 1, 2], [n // 2 - 1, n // 2, n // 2 + 1], [n - 3, n - 2, n - 1]]


def run_micro(num_qubits: int, repeats: int = 5) -> dict:
    """Gates/sec per gate class for the engine vs the seed reference."""
    rng = np.random.default_rng(0)
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    state /= np.linalg.norm(state)
    scratch = np.empty_like(state)
    results: dict[str, dict] = {}
    for label, (factory, k) in GATE_CLASSES.items():
        matrix = factory()
        sweeps = _sweep_positions(num_qubits, k)

        def run_fast(buffers=[state, scratch]):
            buf, scr = buffers
            for qubits in sweeps:
                buf, scr = apply_gate_buffered(buf, scr, matrix, qubits)
            buffers[0], buffers[1] = buf, scr

        def run_reference():
            for qubits in sweeps:
                apply_matrix_reference(state, matrix, qubits)

        fast = _best_seconds(run_fast, repeats) / len(sweeps)
        reference = _best_seconds(run_reference, repeats) / len(sweeps)
        results[label] = {
            "fast_gates_per_s": 1.0 / fast,
            "ref_gates_per_s": 1.0 / reference,
            "speedup": reference / fast,
        }
    classes_1q2q = [c for c, (_, k) in GATE_CLASSES.items() if k <= 2]
    speedups = [results[c]["speedup"] for c in classes_1q2q]
    results["mix_1q2q_speedup"] = float(np.exp(np.mean(np.log(speedups))))
    return results


# ---------------------------------------------------------------------------
# End-to-end plan benchmark (engine vs faithful seed executor)
# ---------------------------------------------------------------------------


def _fused_unitary_seed(gates, qubits=None):
    """Seed fusion: expand every gate to the kernel space and matmul (O(8^m))."""
    if qubits is None:
        qubits = kernel_qubits(gates)
    qubits = tuple(qubits)
    fused = np.eye(1 << len(qubits), dtype=np.complex128)
    for gate in gates:
        fused = expand_matrix(gate.matrix(), gate.qubits, qubits) @ fused
    return fused, qubits


def _execute_plan_seed(plan):
    """The seed executor: tensordot apply, per-kernel re-fusion, per-gate
    allocation.  Mirrors the pre-optimization ``execute_plan`` code path."""
    n = plan.num_qubits
    state = np.zeros(1 << n, dtype=np.complex128)
    state[0] = 1.0
    layout = QubitLayout(n)
    for stage in plan.stages:
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            state = permute_state(state, layout, target)
            layout.update(target)
        logical_to_physical = layout.logical_to_physical()
        kernels = stage.kernels or []
        if stage.kernels is None:
            groups = [([gate], None) for gate in stage.gates]
        else:
            groups = [(list(k.gates), k.kernel_type) for k in kernels]
        for gates, kernel_type in groups:
            if kernel_type is not None and kernel_type.value == "fusion":
                matrix, logical_qubits = _fused_unitary_seed(gates)
                physical = [logical_to_physical[q] for q in logical_qubits]
                state = apply_matrix_reference(state, matrix, physical)
            else:
                for gate in gates:
                    physical = [logical_to_physical[q] for q in gate.qubits]
                    state = apply_matrix_reference(state, gate.matrix(), physical)
    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        state = permute_state(state, layout, identity)
    return state


def run_plan(num_qubits: int, repeats: int = 3) -> dict:
    """Wall time of execute_plan vs the seed executor on a QFT circuit."""
    circuit = qft(num_qubits)
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=4, local_qubits=num_qubits - 2
    )
    plan, _ = partition(circuit, machine)

    # Warm caches (fused unitaries, dispatch analysis, scratch pool) so the
    # timed runs measure steady-state execution.
    fast_state, _ = execute_plan(plan)
    fast = _best_seconds(lambda: execute_plan(plan), repeats)

    apply_mod.reset_allocation_log()
    execute_plan(plan)
    log = apply_mod.allocation_log()

    seed_state = _execute_plan_seed(plan)
    seed = _best_seconds(lambda: _execute_plan_seed(plan), repeats)
    agreement = float(abs(np.vdot(fast_state.data, seed_state)))

    return {
        "circuit": "qft",
        "num_qubits": num_qubits,
        "num_gates": len(circuit),
        "fast_seconds": fast,
        "ref_seconds": seed,
        "speedup": seed / fast,
        "state_fidelity_vs_seed": agreement**2,
        "warm_allocations_total": len(log),
        "warm_allocations_state_sized": sum(
            1 for size in log if size >= 1 << num_qubits
        ),
    }


# ---------------------------------------------------------------------------
# Shard-streaming (offload) runtime benchmark
# ---------------------------------------------------------------------------


def run_offload(
    num_qubits: int,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    batch_size: int = 4,
) -> dict:
    """Sequential vs parallel shard-streaming execution of a QFT plan.

    The machine splits the state into ``2^4 = 16`` DRAM shards streamed
    through 4 physical GPUs, so the parallel scheduler runs its full
    multi-pass pipeline.  Each parallel measurement reuses one warm
    :class:`ParallelRuntime`; the ``batch`` entry compares
    :meth:`ParallelRuntime.run_batch` (pool, buffers and segmentation
    shared across problems) against one-shot runs of the same problems.
    """
    circuit = qft(num_qubits)
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=4, local_qubits=num_qubits - 4
    )
    plan, _ = partition(circuit, machine)

    sequential_state, _ = execute_plan_offloaded(plan, machine)  # warm caches
    sequential = _best_seconds(
        lambda: execute_plan_offloaded(plan, machine), repeats
    )

    result = {
        "circuit": "qft",
        "num_qubits": num_qubits,
        "local_qubits": machine.local_qubits,
        "num_shards": machine.num_shards,
        "physical_gpus": machine.physical_gpus,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential,
        "parallel": {},
    }
    for workers in worker_counts:
        with ParallelRuntime(machine, num_workers=workers) as runtime:
            state, _ = runtime.execute(plan)  # warm pool + worker buffers
            seconds = _best_seconds(lambda: runtime.execute(plan), repeats)
        result["parallel"][str(workers)] = {
            "seconds": seconds,
            "speedup_vs_sequential": sequential / seconds,
            "bit_exact": bool(np.array_equal(state.data, sequential_state.data)),
        }

    states = [
        StateVector.random_state(num_qubits, seed=seed)
        for seed in range(batch_size)
    ]
    batch_repeats = max(2, repeats - 1)
    with ParallelRuntime(machine) as runtime:
        runtime.run_batch(plan, initial_states=states)  # warm
        batch_per_item = (
            _best_seconds(
                lambda: runtime.run_batch(plan, initial_states=states),
                batch_repeats,
            )
            / batch_size
        )
    oneshot_per_item = (
        _best_seconds(
            lambda: [
                execute_plan_parallel(plan, machine, initial_state=state)
                for state in states
            ],
            batch_repeats,
        )
        / batch_size
    )
    result["batch"] = {
        "batch_size": batch_size,
        "batch_seconds_per_item": batch_per_item,
        "oneshot_seconds_per_item": oneshot_per_item,
        "amortization_speedup": oneshot_per_item / batch_per_item,
    }

    # The performance-model view of the same data parallelism (the layer
    # that reproduces Figures 5-8): the modelled wall time with the
    # machine's 4 physical GPUs vs the same machine throttled to one.
    # Unlike the thread-pool timings above, this is independent of how
    # many cores the benchmarking host happens to have.
    one_gpu = dataclasses.replace(machine, gpus_per_node=1)
    modelled_parallel = model_simulation_time(plan, machine).total_seconds
    modelled_serial = model_simulation_time(plan, one_gpu).total_seconds
    result["modelled"] = {
        "total_seconds_4gpu": modelled_parallel,
        "total_seconds_1gpu": modelled_serial,
        "speedup_4gpu_vs_1gpu": modelled_serial / modelled_parallel,
    }
    return result


# ---------------------------------------------------------------------------
# Session plan-cache amortisation benchmark
# ---------------------------------------------------------------------------


def run_session_bench(
    num_qubits: int,
    sweep_size: int = 50,
    pruning_threshold: int = 16,
) -> dict:
    """Cold vs warm execution of a structurally identical VQC sweep.

    *Cold*: ``sweep_size`` independent :func:`repro.simulate` calls — every
    one re-runs ILP staging and DP kernelization from scratch.  *Warm*: one
    ``Session.run`` over the same circuits — the structural plan cache
    partitions once and re-binds the plan for the remaining circuits.  The
    warm states are checked against the cold ones, and the cache stats
    (hits must equal ``sweep_size - 1``) are recorded for the gate.
    """
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=4, local_qubits=num_qubits - 2
    )
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    circuits = [vqc(num_qubits, seed=seed) for seed in range(sweep_size)]

    start = time.perf_counter()
    cold_states = [
        simulate(circuit, machine, kernelize_config=config).state
        for circuit in circuits
    ]
    cold_seconds = time.perf_counter() - start

    with Session(machine, backend="incore", kernelize_config=config) as session:
        start = time.perf_counter()
        job = session.run(circuits)
        warm_seconds = time.perf_counter() - start
        stats = session.stats

    matches = sum(
        1 for cold, result in zip(cold_states, job) if cold.allclose(result.state)
    )
    return {
        "circuit": "vqc",
        "num_qubits": num_qubits,
        "num_gates": len(circuits[0]),
        "sweep_size": sweep_size,
        "backend": job.backend,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "plans_built": stats.plans_built,
        "cache_hits": stats.cache_hits,
        "plan_seconds_warm": stats.plan_seconds,
        "execute_seconds_warm": stats.execute_seconds,
        "states_match_cold": matches,
    }


# ---------------------------------------------------------------------------
# Compiled-program benchmark
# ---------------------------------------------------------------------------


def run_compile_bench(
    num_qubits: int,
    repeats: int = 5,
    batch_size: int = 16,
    pruning_threshold: int = 16,
) -> dict:
    """Compile-once-run-N amortisation and batched (B, 2^n) execution.

    Uses the same VQC family as the session scenario so the compiled
    re-execution time is directly comparable with the session baseline's
    warm per-circuit execution cost.  All speedups are measured within this
    run (host-independent); bit-exactness is checked against the per-gate
    interpreter, the offload executor, and the parallel runtime.
    """
    machine = MachineConfig.for_circuit(
        num_qubits, num_shards=4, local_qubits=num_qubits - 2
    )
    config = KernelizeConfig(pruning_threshold=pruning_threshold)
    circuit = vqc(num_qubits, seed=0)
    plan, _ = partition(circuit, machine, kernelize_config=config)

    interp_state, _ = execute_plan(plan, machine=machine, compiled=False)  # warm
    interpreted = _best_seconds(
        lambda: execute_plan(plan, machine=machine, compiled=False), repeats
    )

    start = time.perf_counter()
    program = compile_plan(plan, machine)
    compile_seconds = time.perf_counter() - start
    compiled_state = program.run()  # warm (allocates the workspace)
    compiled = _best_seconds(lambda: program.run_view(), repeats)

    # Rebind: a structurally identical circuit with new angles recompiles
    # only angle-dependent ops (constant-structure ops reuse verbatim).
    other = vqc(num_qubits, seed=1)
    rebound_plan = rebind_plan(plan, other)
    start = time.perf_counter()
    rebound = compile_plan(rebound_plan, machine, reuse=program)
    rebind_seconds = time.perf_counter() - start

    # Batched (B, 2^n) execution vs a B-loop of single-state runs.
    states = [
        StateVector.random_state(num_qubits, seed=seed) for seed in range(batch_size)
    ]
    batched_states = program.run_batched(states)
    looped_states = [program.run(state) for state in states]
    # The folded (B-wide) GEMM shapes can change BLAS summation order, so
    # batched-vs-looped agreement is gated at tight tolerance, not bit
    # equality; the observed maximum deviation is recorded.
    batched_max_diff = max(
        float(np.max(np.abs(b.data - l.data)))
        for b, l in zip(batched_states, looped_states)
    )
    batched_states_match = batched_max_diff <= 1e-10
    _best_seconds(lambda: program.run_batched_view(states), 1)  # warm batch pair
    looped_seconds = _best_seconds(
        lambda: [program.run_view(state) for state in states], repeats
    )
    batched_seconds = _best_seconds(
        lambda: program.run_batched_view(states), repeats
    )

    # Bit-exactness gates across the execution paths.
    offload_state, _ = execute_plan_offloaded(plan, machine)
    parallel_exact = {}
    for workers in (1, 2, 4):
        with ParallelRuntime(machine, num_workers=workers) as runtime:
            par_state, _ = runtime.execute(plan)
        parallel_exact[str(workers)] = bool(
            np.array_equal(par_state.data, offload_state.data)
        )

    return {
        "circuit": "vqc",
        "num_qubits": num_qubits,
        "num_gates": len(circuit),
        "num_ops": len(program.ops),
        "op_counts": program.op_counts(),
        "compile_seconds": compile_seconds,
        "rebind_seconds": rebind_seconds,
        "rebind_ops_reused": rebound.ops_reused,
        "interpreted_seconds_per_run": interpreted,
        "compiled_seconds_per_run": compiled,
        "speedup_vs_interpreted": interpreted / compiled,
        "bit_exact_incore": bool(
            np.array_equal(compiled_state.data, interp_state.data)
        ),
        "offload_state_matches": bool(
            np.allclose(offload_state.data, compiled_state.data, atol=1e-10)
        ),
        "parallel_bit_exact": parallel_exact,
        "batched": {
            "batch_size": batch_size,
            "looped_seconds": looped_seconds,
            "batched_seconds": batched_seconds,
            "speedup_vs_loop": looped_seconds / batched_seconds,
            "states_match": batched_states_match,
            "max_abs_diff": batched_max_diff,
        },
    }


# ---------------------------------------------------------------------------
# Planning-pipeline benchmark (cold path)
# ---------------------------------------------------------------------------

#: Circuit families of the planning sweep, by name.
PLAN_FAMILIES = {
    "qft": qft,
    "ghz": ghz,
    "vqc": vqc,
    "ising": ising,
    "graphstate": graphstate,
    "wstate": wstate,
}

#: (family, qubits) entries: quick subset first, full run adds the rest.
PLAN_SWEEP_QUICK = [("qft", 10), ("ghz", 10), ("vqc", 8)]
PLAN_SWEEP_FULL = PLAN_SWEEP_QUICK + [
    ("qft", 12),
    ("ising", 12),
    ("graphstate", 12),
    ("wstate", 12),
    ("vqc", 10),
]

PLAN_PRESETS = ("fast", "balanced", "quality")


def _seed_planner() -> PassManager:
    """The seed planner as a pipeline: full ILP iteration (no shortcuts)
    plus the reference beam DP — the pre-pipeline ``partition()`` code
    path, pass for pass."""
    return PassManager(
        [
            ("analyze", {}),
            (
                "stage",
                {
                    "stager": "ilp",
                    "single_stage_shortcut": False,
                    "lower_bound_start": False,
                    "ilp_time_limit": 120.0,
                },
            ),
            ("kernelize", {"kernelizer": "atlas-ref"}),
            ("finalize", {}),
        ],
        preset="seed",
    )


def run_plan_pipeline_bench(sweep: list[tuple[str, int]], repeats: int = 2) -> dict:
    """Cold-plan latency and plan quality per preset vs the seed planner.

    Every (family, qubits) entry is planned on two machine shapes — a
    4-shard split (staging required) and a single-shard machine (the
    fits-locally shortcut territory) — by the seed planner and by each
    preset.  Median fast-vs-seed speedup across all entries is the
    headline; per-entry kernel costs feed the no-worse-than-seed gate.
    """
    entries: dict[str, dict] = {}
    speedups: list[float] = []
    for family_name, n in sweep:
        circuit = PLAN_FAMILIES[family_name](n)
        for shape, machine in (
            ("sharded", MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)),
            ("local", MachineConfig.for_circuit(n, num_shards=1)),
        ):
            seed_manager = _seed_planner()
            seed_seconds = _best_seconds(
                lambda: seed_manager.run(circuit, machine), repeats
            )
            _plan, seed_report = seed_manager.run(circuit, machine)
            entry = {
                "family": family_name,
                "num_qubits": n,
                "num_gates": len(circuit),
                "shape": shape,
                "seed_seconds": seed_seconds,
                "seed_kernel_cost": seed_report.total_kernel_cost,
                "seed_stages": seed_report.num_stages,
                "presets": {},
            }
            for preset in PLAN_PRESETS:
                manager = resolve_planner(preset)
                preset_seconds = _best_seconds(
                    lambda: manager.run(circuit, machine), repeats
                )
                plan, report = manager.run(circuit, machine)
                plan.validate(circuit)
                entry["presets"][preset] = {
                    "seconds": preset_seconds,
                    "speedup_vs_seed": seed_seconds / preset_seconds,
                    "kernel_cost": report.total_kernel_cost,
                    "num_stages": report.num_stages,
                    "num_kernels": report.num_kernels,
                    "passes_skipped": dict(report.passes_skipped),
                }
            speedups.append(entry["presets"]["fast"]["speedup_vs_seed"])
            entries[f"{family_name}-{n}/{shape}"] = entry
    return {
        "entries": entries,
        "fast_median_speedup_vs_seed": float(np.median(speedups)),
        "fast_min_speedup_vs_seed": float(np.min(speedups)),
    }


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def check_regression(
    current: dict, baseline: dict, threshold: float = 2.0
) -> list[str]:
    """Return human-readable regressions of *current* vs *baseline*.

    A regression is any throughput metric (``fast_gates_per_s``) or plan
    wall time that is worse than the baseline by more than *threshold*.
    Benchmarks at different sizes are not compared.
    """
    problems: list[str] = []
    # Planning-pipeline invariants are current-run properties: the fast
    # preset must beat the seed planner >= 2x at the median while never
    # producing a costlier plan, and the preset quality ladder must be
    # monotone (quality <= balanced <= fast kernel cost).
    planner = current.get("plan") or {}
    if planner:
        if planner["fast_median_speedup_vs_seed"] < 2.0:
            problems.append(
                f"plan: fast preset median speedup "
                f"{planner['fast_median_speedup_vs_seed']:.2f}x vs the seed "
                f"planner (< 2x)"
            )
        for key, entry in planner["entries"].items():
            presets = entry["presets"]
            if presets["fast"]["kernel_cost"] > entry["seed_kernel_cost"] + 1e-9:
                problems.append(
                    f"plan[{key}]: fast preset kernel cost "
                    f"{presets['fast']['kernel_cost']:.4f} worse than seed "
                    f"{entry['seed_kernel_cost']:.4f}"
                )
            if (
                presets["balanced"]["kernel_cost"]
                > presets["fast"]["kernel_cost"] + 1e-9
                or presets["quality"]["kernel_cost"]
                > presets["balanced"]["kernel_cost"] + 1e-9
            ):
                problems.append(
                    f"plan[{key}]: preset quality ladder not monotone "
                    f"(fast {presets['fast']['kernel_cost']:.4f}, balanced "
                    f"{presets['balanced']['kernel_cost']:.4f}, quality "
                    f"{presets['quality']['kernel_cost']:.4f})"
                )
    base_planner = baseline.get("plan") or {}
    for key, old_entry in base_planner.get("entries", {}).items():
        new_entry = (planner.get("entries") or {}).get(key)
        if new_entry is None:
            continue
        old_fast = old_entry["presets"]["fast"]["seconds"]
        new_fast = new_entry["presets"]["fast"]["seconds"]
        if new_fast > threshold * old_fast:
            problems.append(
                f"plan[{key}]: fast preset {new_fast*1e3:.1f} ms vs baseline "
                f"{old_fast*1e3:.1f} ms (>{threshold}x regression)"
            )
    # Bit-exactness is a property of the current run alone — flag a
    # divergent parallel result even when the baseline has no matching
    # offload entry to compare wall times against.
    for size, new_offload in current.get("offload", {}).items():
        for workers, new_par in new_offload.get("parallel", {}).items():
            if not new_par.get("bit_exact", True):
                problems.append(
                    f"offload[{size}].parallel[{workers}]: result is not "
                    f"bit-exact with the sequential executor"
                )
    # Compiled-program invariants are current-run properties (measured
    # within one run, so host speed cancels): compiled re-execution must
    # beat the per-gate interpreter >= 2x, batched (B, 2^n) execution must
    # beat the B-loop >= 1.5x, and every path must stay bit-exact.
    for size, comp in current.get("compile", {}).items():
        if comp["speedup_vs_interpreted"] < 2.0:
            problems.append(
                f"compile[{size}]: compiled re-execution only "
                f"{comp['speedup_vs_interpreted']:.2f}x over the interpreter "
                f"(< 2x)"
            )
        if comp["batched"]["speedup_vs_loop"] < 1.5:
            problems.append(
                f"compile[{size}]: batched B={comp['batched']['batch_size']} "
                f"only {comp['batched']['speedup_vs_loop']:.2f}x over the "
                f"single-state loop (< 1.5x)"
            )
        if not comp["bit_exact_incore"]:
            problems.append(
                f"compile[{size}]: compiled state diverges from the "
                f"interpreted incore state"
            )
        if not comp["batched"]["states_match"]:
            problems.append(
                f"compile[{size}]: batched states diverge from looped runs "
                f"(max |diff| = {comp['batched']['max_abs_diff']:.2e})"
            )
        if not comp["offload_state_matches"]:
            problems.append(
                f"compile[{size}]: offload executor state diverges from the "
                f"compiled incore state"
            )
        for workers, exact in comp["parallel_bit_exact"].items():
            if not exact:
                problems.append(
                    f"compile[{size}]: parallel W={workers} diverges from the "
                    f"sequential offload executor"
                )
        # Cross-check against the committed session baseline: compiled
        # re-execution of the same VQC family must never fall behind the
        # committed sweep's warm per-circuit execution cost.  (The >= 2x
        # claim is carried by the interpreter comparison above: the
        # interpreter *is* the session execution path before the compile
        # layer, measured in this same run; once the committed baseline is
        # itself compiled-backed, per-circuit parity is the invariant.)
        base_sess = baseline.get("session", {}).get(size)
        if base_sess is not None and base_sess["num_qubits"] == comp["num_qubits"]:
            per_circuit = base_sess["execute_seconds_warm"] / base_sess["sweep_size"]
            if comp["compiled_seconds_per_run"] > per_circuit * threshold:
                problems.append(
                    f"compile[{size}]: compiled re-execution "
                    f"{comp['compiled_seconds_per_run']*1e3:.2f} ms/run is "
                    f"slower than the committed session baseline's "
                    f"{per_circuit*1e3:.2f} ms/circuit warm execution "
                    f"(>{threshold}x)"
                )
    for size, old_comp in baseline.get("compile", {}).items():
        new_comp = current.get("compile", {}).get(size)
        if new_comp is None:
            continue
        if (
            new_comp["compiled_seconds_per_run"]
            > threshold * old_comp["compiled_seconds_per_run"]
        ):
            problems.append(
                f"compile[{size}]: {new_comp['compiled_seconds_per_run']*1e3:.2f} "
                f"ms/run vs baseline "
                f"{old_comp['compiled_seconds_per_run']*1e3:.2f} ms/run "
                f"(>{threshold}x regression)"
            )
    # Wide-kernel micro pin: fused 3q matrices route through single-GEMM
    # dense plans and must stay comfortably ahead of the tensordot
    # reference (they were ~1.2x before the routing, ~4x after).
    for size, classes in current.get("micro", {}).items():
        fused = classes.get("fused_3q")
        if isinstance(fused, dict) and fused["speedup"] < 1.5:
            problems.append(
                f"micro[{size}][fused_3q]: only {fused['speedup']:.2f}x over "
                f"the tensordot reference (< 1.5x — wide-gemm routing "
                f"regressed)"
            )
    # Session amortisation invariants are also current-run properties: the
    # sweep must hit the plan cache for every circuit after the first, match
    # the cold states, and beat the cold path by at least 5x end-to-end.
    for size, sess in current.get("session", {}).items():
        expected_hits = sess["sweep_size"] - 1
        if sess["cache_hits"] < expected_hits or sess["plans_built"] != 1:
            problems.append(
                f"session[{size}]: {sess['cache_hits']} cache hits / "
                f"{sess['plans_built']} plans built on a {sess['sweep_size']}-"
                f"circuit sweep (expected {expected_hits} hits, 1 plan)"
            )
        if sess["states_match_cold"] != sess["sweep_size"]:
            problems.append(
                f"session[{size}]: only {sess['states_match_cold']}/"
                f"{sess['sweep_size']} warm states match the cold runs"
            )
        # The 5x amortisation floor assumes the single solve is spread over
        # enough circuits; tiny sweeps (used by unit tests) are exempt.
        if sess["sweep_size"] >= 10 and sess["speedup"] < 5.0:
            problems.append(
                f"session[{size}]: warm sweep only {sess['speedup']:.2f}x "
                f"faster than cold (< 5x amortisation)"
            )
    for size, old_sess in baseline.get("session", {}).items():
        new_sess = current.get("session", {}).get(size)
        if new_sess is None:
            continue
        # Quick runs use a smaller sweep than the committed full-run
        # baseline, so sweep totals (and even warm_seconds / sweep_size,
        # which amortises the one solve differently) are not comparable.
        # Compare the two size-independent components instead: the one-time
        # planning cost and the per-circuit execution cost.
        old_exec = old_sess["execute_seconds_warm"] / old_sess["sweep_size"]
        new_exec = new_sess["execute_seconds_warm"] / new_sess["sweep_size"]
        if new_exec > threshold * old_exec:
            problems.append(
                f"session[{size}]: warm execution {new_exec:.4f}s/circuit vs "
                f"baseline {old_exec:.4f}s/circuit (>{threshold}x regression)"
            )
        if new_sess["plan_seconds_warm"] > threshold * old_sess["plan_seconds_warm"]:
            problems.append(
                f"session[{size}]: planning {new_sess['plan_seconds_warm']:.3f}s "
                f"vs baseline {old_sess['plan_seconds_warm']:.3f}s "
                f"(>{threshold}x regression)"
            )
    for size, classes in baseline.get("micro", {}).items():
        now = current.get("micro", {}).get(size)
        if now is None:
            continue
        for label, metrics in classes.items():
            if not isinstance(metrics, dict) or label not in now:
                continue
            old_rate, new_rate = metrics["fast_gates_per_s"], now[label]["fast_gates_per_s"]
            if new_rate * threshold < old_rate:
                problems.append(
                    f"micro[{size}][{label}]: {new_rate:.1f} gates/s vs "
                    f"baseline {old_rate:.1f} (>{threshold}x regression)"
                )
    for size, old_plan in baseline.get("plans", {}).items():
        new_plan = current.get("plans", {}).get(size)
        if new_plan and new_plan["fast_seconds"] > threshold * old_plan["fast_seconds"]:
            problems.append(
                f"plans[{size}]: {new_plan['fast_seconds']:.3f}s vs baseline "
                f"{old_plan['fast_seconds']:.3f}s (>{threshold}x regression)"
            )
    for size, old_offload in baseline.get("offload", {}).items():
        new_offload = current.get("offload", {}).get(size)
        if new_offload is None:
            continue
        if (
            new_offload["sequential_seconds"]
            > threshold * old_offload["sequential_seconds"]
        ):
            problems.append(
                f"offload[{size}].sequential: "
                f"{new_offload['sequential_seconds']:.3f}s vs baseline "
                f"{old_offload['sequential_seconds']:.3f}s "
                f"(>{threshold}x regression)"
            )
        for workers, old_par in old_offload.get("parallel", {}).items():
            new_par = new_offload.get("parallel", {}).get(workers)
            if new_par is None:
                continue
            if new_par["seconds"] > threshold * old_par["seconds"]:
                problems.append(
                    f"offload[{size}].parallel[{workers}]: "
                    f"{new_par['seconds']:.3f}s vs baseline "
                    f"{old_par['seconds']:.3f}s (>{threshold}x regression)"
                )
        old_batch = old_offload.get("batch")
        new_batch = new_offload.get("batch")
        if (
            old_batch
            and new_batch
            and new_batch["batch_seconds_per_item"]
            > threshold * old_batch["batch_seconds_per_item"]
        ):
            problems.append(
                f"offload[{size}].batch: "
                f"{new_batch['batch_seconds_per_item']:.3f}s/item vs baseline "
                f"{old_batch['batch_seconds_per_item']:.3f}s/item "
                f"(>{threshold}x regression)"
            )
    return problems


def run_suite(
    micro_sizes: list[int],
    plan_sizes: list[int],
    repeats: int,
    offload_sizes: list[int] | None = None,
    session_sizes: list[int] | None = None,
    session_sweep: int = 50,
    compile_sizes: list[int] | None = None,
    compile_batch: int = 16,
    planner_sweep: list[tuple[str, int]] | None = None,
) -> dict:
    offload_sizes = offload_sizes or []
    session_sizes = session_sizes or []
    compile_sizes = compile_sizes or []
    planner_sweep = planner_sweep if planner_sweep is not None else []
    # The planning sweep runs first: its seed-vs-preset latency ratios are
    # the most allocation-sensitive measurement in the suite, so it should
    # not inherit a heap fragmented by the state-vector scenarios.
    planner_results = (
        run_plan_pipeline_bench(planner_sweep, min(3, repeats))
        if planner_sweep
        else {}
    )
    return {
        "schema": 5,
        "config": {
            "micro_qubits": micro_sizes,
            "plan_qubits": plan_sizes,
            "offload_qubits": offload_sizes,
            "session_qubits": session_sizes,
            "session_sweep": session_sweep,
            "compile_qubits": compile_sizes,
            "compile_batch": compile_batch,
            "planner_sweep": [list(e) for e in planner_sweep],
            "repeats": repeats,
        },
        "micro": {str(n): run_micro(n, repeats) for n in micro_sizes},
        "plans": {str(n): run_plan(n, max(2, repeats - 2)) for n in plan_sizes},
        "offload": {
            str(n): run_offload(n, max(2, repeats - 2)) for n in offload_sizes
        },
        "session": {
            str(n): run_session_bench(n, sweep_size=session_sweep)
            for n in session_sizes
        },
        "compile": {
            str(n): run_compile_bench(n, repeats, batch_size=compile_batch)
            for n in compile_sizes
        },
        "plan": planner_results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--micro-qubits", type=int, default=20)
    parser.add_argument("--plan-qubits", type=int, default=20)
    parser.add_argument("--offload-qubits", type=int, default=20)
    parser.add_argument("--session-qubits", type=int, default=10)
    parser.add_argument(
        "--session-sweep",
        type=int,
        default=50,
        help="circuits in the session plan-cache sweep (10 with --quick)",
    )
    parser.add_argument("--compile-qubits", type=int, default=10)
    parser.add_argument(
        "--compile-batch",
        type=int,
        default=16,
        help="batch width B of the compiled (B, 2^n) execution scenario",
    )
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, fewer repeats, and regression-check vs the baseline",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help="where to write results (ignored with --quick unless --write)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="with --quick: overwrite the baseline instead of only checking",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression factor that fails the --quick check",
    )
    parser.add_argument(
        "--dump",
        type=Path,
        default=None,
        help="also write this run's results JSON here (works with --quick; "
        "does not touch the committed baseline)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        micro_sizes = [min(args.micro_qubits, 16)]
        plan_sizes = [min(args.plan_qubits, 14)]
        offload_sizes = [min(args.offload_qubits, 12)]
        session_sizes = [min(args.session_qubits, 10)]
        session_sweep = min(args.session_sweep, 10)
        compile_sizes = [min(args.compile_qubits, 10)]
        planner_sweep = PLAN_SWEEP_QUICK
        args.repeats = min(args.repeats, 3)
    else:
        # The full run also measures the quick sizes so `--quick` always has
        # matching baseline entries to regression-check against.
        micro_sizes = sorted({16, args.micro_qubits})
        plan_sizes = sorted({14, args.plan_qubits})
        offload_sizes = sorted({12, args.offload_qubits})
        session_sizes = sorted({10, args.session_qubits})
        session_sweep = args.session_sweep
        compile_sizes = sorted({10, args.compile_qubits})
        planner_sweep = PLAN_SWEEP_FULL

    results = run_suite(
        micro_sizes,
        plan_sizes,
        args.repeats,
        offload_sizes,
        session_sizes,
        session_sweep,
        compile_sizes,
        args.compile_batch,
        planner_sweep,
    )

    for size in micro_sizes:
        micro = results["micro"][str(size)]
        print(f"micro ({size} qubits):")
        for label, metrics in micro.items():
            if isinstance(metrics, dict):
                print(
                    f"  {label:12s} {metrics['fast_gates_per_s']:10.1f} gates/s "
                    f"(seed {metrics['ref_gates_per_s']:10.1f}; "
                    f"{metrics['speedup']:.1f}x)"
                )
        print(f"  1q/2q mix speedup: {micro['mix_1q2q_speedup']:.1f}x")
    for size in plan_sizes:
        plan = results["plans"][str(size)]
        print(
            f"plan (qft-{plan['num_qubits']}, {plan['num_gates']} gates): "
            f"{plan['fast_seconds']*1e3:.1f} ms vs seed {plan['ref_seconds']*1e3:.1f} ms "
            f"({plan['speedup']:.1f}x), {plan['warm_allocations_state_sized']} "
            f"state-sized allocations warm"
        )
    for size in offload_sizes:
        offload = results["offload"][str(size)]
        print(
            f"offload (qft-{offload['num_qubits']}, "
            f"{offload['num_shards']} shards, {offload['cpu_count']} cpus): "
            f"sequential {offload['sequential_seconds']*1e3:.1f} ms"
        )
        for workers, par in offload["parallel"].items():
            exact = "bit-exact" if par["bit_exact"] else "MISMATCH"
            print(
                f"  parallel W={workers}: {par['seconds']*1e3:.1f} ms "
                f"({par['speedup_vs_sequential']:.2f}x vs sequential, {exact})"
            )
        batch = offload["batch"]
        print(
            f"  run_batch x{batch['batch_size']}: "
            f"{batch['batch_seconds_per_item']*1e3:.1f} ms/item vs "
            f"{batch['oneshot_seconds_per_item']*1e3:.1f} ms one-shot "
            f"({batch['amortization_speedup']:.2f}x)"
        )
        modelled = offload["modelled"]
        print(
            f"  modelled 4-GPU vs 1-GPU: "
            f"{modelled['speedup_4gpu_vs_1gpu']:.2f}x"
        )
    for size in session_sizes:
        sess = results["session"][str(size)]
        print(
            f"session (vqc-{sess['num_qubits']} x{sess['sweep_size']}, "
            f"{sess['num_gates']} gates each): warm {sess['warm_seconds']:.2f}s "
            f"vs cold {sess['cold_seconds']:.2f}s ({sess['speedup']:.1f}x), "
            f"{sess['plans_built']} plan built, {sess['cache_hits']} cache hits, "
            f"{sess['states_match_cold']}/{sess['sweep_size']} states match"
        )
    for size in compile_sizes:
        comp = results["compile"][str(size)]
        batched = comp["batched"]
        par = ", ".join(
            f"W={w}:{'ok' if ok else 'MISMATCH'}"
            for w, ok in comp["parallel_bit_exact"].items()
        )
        print(
            f"compile (vqc-{comp['num_qubits']}, {comp['num_gates']} gates -> "
            f"{comp['num_ops']} ops): compile {comp['compile_seconds']*1e3:.1f} ms, "
            f"rebind {comp['rebind_seconds']*1e3:.1f} ms "
            f"({comp['rebind_ops_reused']} ops reused); re-exec "
            f"{comp['compiled_seconds_per_run']*1e3:.2f} ms vs interpreter "
            f"{comp['interpreted_seconds_per_run']*1e3:.2f} ms "
            f"({comp['speedup_vs_interpreted']:.2f}x, "
            f"{'bit-exact' if comp['bit_exact_incore'] else 'MISMATCH'})"
        )
        print(
            f"  batched B={batched['batch_size']}: "
            f"{batched['batched_seconds']*1e3:.2f} ms vs loop "
            f"{batched['looped_seconds']*1e3:.2f} ms "
            f"({batched['speedup_vs_loop']:.2f}x, "
            f"{'match' if batched['states_match'] else 'MISMATCH'} "
            f"max|d|={batched['max_abs_diff']:.1e}); "
            f"offload {'ok' if comp['offload_state_matches'] else 'MISMATCH'}; "
            f"parallel {par}"
        )

    planner = results.get("plan") or {}
    if planner:
        print(
            f"plan (pipeline, {len(planner['entries'])} entries): fast preset "
            f"median {planner['fast_median_speedup_vs_seed']:.2f}x / min "
            f"{planner['fast_min_speedup_vs_seed']:.2f}x vs seed planner"
        )
        for key, entry in planner["entries"].items():
            fast = entry["presets"]["fast"]
            quality = entry["presets"]["quality"]
            cost_flag = (
                "cost=" if fast["kernel_cost"] <= entry["seed_kernel_cost"] + 1e-9
                else "COST-WORSE"
            )
            print(
                f"  {key:22s} seed {entry['seed_seconds']*1e3:7.1f} ms | fast "
                f"{fast['seconds']*1e3:7.1f} ms ({fast['speedup_vs_seed']:5.2f}x, "
                f"{cost_flag}{fast['kernel_cost']:.2f} vs seed "
                f"{entry['seed_kernel_cost']:.2f}) | quality cost "
                f"{quality['kernel_cost']:.2f}"
            )

    if args.dump is not None:
        args.dump.write_text(json.dumps(results, indent=2) + "\n")
        print(f"dumped results to {args.dump}")

    if args.quick and not args.write:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; skipping regression check")
            return 0
        baseline = json.loads(args.baseline.read_text())
        problems = check_regression(results, baseline, args.threshold)
        if problems:
            print("REGRESSIONS:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"no >{args.threshold}x regressions vs {args.baseline}")
        return 0

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

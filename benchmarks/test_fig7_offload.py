"""Figure 7 — DRAM offloading: Atlas vs QDAO on a single GPU.

The paper simulates qft circuits of 28–32 qubits on one GPU whose memory
holds only a 28-qubit state; the larger circuits spill to host DRAM.  Atlas
streams every shard through the GPU once per *stage*, whereas QDAO sweeps
the full state once per gate *group*, so Atlas ends up one to two orders of
magnitude faster (61× on average in the paper).  The benchmark reproduces
the sweep with the performance model; the qualitative expectations are that
both systems are comparable while the state still fits and that Atlas's
speedup grows with the circuit size once offloading starts.
"""

from repro.analysis import figure7_offloading, format_table


def test_fig7_offload(benchmark, paper_scale, local_qubits):
    if paper_scale:
        qubit_range = (28, 29, 30, 31, 32)
    else:
        qubit_range = tuple(range(local_qubits, local_qubits + 5))
    rows = benchmark.pedantic(
        figure7_offloading,
        kwargs=dict(qubit_range=qubit_range, local_qubits=local_qubits,
                    pruning_threshold=16),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(rows, title="Figure 7 — DRAM offloading, qft (modelled seconds)"))

    # Once the circuit exceeds the on-GPU qubit count, Atlas must win, and
    # the advantage must grow with the circuit size.
    offloaded = [row for row in rows if row["qubits"] > local_qubits]
    assert offloaded, "sweep must include circuits larger than GPU memory"
    assert all(row["speedup"] > 1.0 for row in offloaded)
    speedups = [row["speedup"] for row in offloaded]
    assert speedups[-1] >= speedups[0]

"""Table I — benchmark circuits and their gate counts.

Regenerates the paper's Table I: the number of gates of every circuit
family at every evaluated qubit count.  The benchmark times circuit
construction itself (the generators are part of the substrate we built);
the printed table is the artefact to compare against the paper.
"""

from repro.analysis import format_table, table1_circuit_sizes


def test_table1_gate_counts(benchmark, families, qubit_range):
    rows = benchmark(table1_circuit_sizes, families=families, qubit_range=qubit_range)
    print()
    print(format_table(rows, title="Table I — circuit sizes (number of gates)"))
    assert len(rows) == len(families)
    for row in rows:
        counts = [row[str(n)] for n in qubit_range]
        assert counts == sorted(counts)

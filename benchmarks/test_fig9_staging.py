"""Figures 9 and 12 — circuit staging: ILP (Atlas) vs SnuQS-style greedy.

The paper sweeps the number of local qubits for 31-qubit (Figure 9) and
42-qubit (Figure 12) circuits and reports the geometric-mean number of
stages over the 11 benchmark families.  Two claims must hold:

* the ILP staging never needs more stages than the greedy heuristic
  (Theorem 1 — it is provably minimal), and
* the ILP stage count is monotonically non-increasing as L grows, whereas
  the greedy heuristic can get *worse* with more local qubits (the paper
  points out the SnuQS regression from L=23 to L=24).
"""

import pytest

from repro.analysis import figure9_staging, format_table


def _run(benchmark, num_qubits, local_range, families):
    rows = benchmark.pedantic(
        figure9_staging,
        kwargs=dict(
            num_qubits=num_qubits,
            local_qubit_range=local_range,
            families=families,
            ilp_time_limit=60.0,
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_table(
        rows,
        title=f"Figure {'9' if num_qubits < 40 else '12'} — geomean #stages at "
        f"{num_qubits} qubits",
    ))
    for row in rows:
        assert row["atlas_geomean_stages"] <= row["snuqs_geomean_stages"] + 1e-9
    atlas_series = [row["atlas_geomean_stages"] for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(atlas_series, atlas_series[1:]))
    return rows


def test_fig9_staging_31_qubits(benchmark, paper_scale, families):
    if paper_scale:
        num_qubits, local_range = 31, list(range(15, 32, 2))
    else:
        num_qubits, local_range = 16, [8, 10, 12, 14, 16]
    # The quadratic-size families make the ILP large at the smallest L; the
    # reduced-scale run keeps the structurally diverse subset from conftest.
    _run(benchmark, num_qubits, local_range, families)


@pytest.mark.paper_scale_only
def test_fig12_staging_42_qubits(benchmark, paper_scale):
    if not paper_scale:
        pytest.skip("42-qubit staging sweep only runs with REPRO_PAPER_SCALE=1")
    _run(benchmark, 42, list(range(18, 43, 3)),
         ("ae", "dj", "ghz", "graphstate", "ising", "qft", "qpeexact", "qsvm",
          "su2random", "vqc", "wstate"))

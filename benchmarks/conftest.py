"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's per-experiment index).  Two scales are supported:

* the default scale keeps total runtime to a few minutes by shrinking the
  circuit sizes / sweep ranges while preserving every qualitative claim
  (who wins, by roughly what factor, where crossovers fall);
* setting the environment variable ``REPRO_PAPER_SCALE=1`` runs the paper's
  full configuration (28–36 qubit circuits, 1–256 GPUs, all 11 families),
  which takes considerably longer because the ILP and DP preprocessing run
  on thousands of gates.

Benchmarks print their result tables to stdout (use ``pytest -s``) and the
same tables are summarised in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

PAPER_SCALE = bool(int(os.environ.get("REPRO_PAPER_SCALE", "0")))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench: wall-clock performance benchmarks (opt-in; run with -m bench)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip ``bench``-marked tests unless explicitly selected with ``-m``.

    The tier-1 suite (`pytest -x -q`) must stay deterministic; wall-clock
    speedup assertions only run when the user opts in via ``-m bench``.
    """
    markexpr = config.getoption("-m") or ""
    if "bench" in markexpr:
        return
    skip_bench = pytest.mark.skip(reason="bench is opt-in: run with -m bench")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip_bench)

#: Circuit families used at the reduced scale (a structurally diverse subset).
FAST_FAMILIES = ("ghz", "qft", "ising", "wstate", "qsvm", "dj", "graphstate")

#: All 11 families of Table I.
ALL_FAMILIES = (
    "ae", "dj", "ghz", "graphstate", "ising", "qft",
    "qpeexact", "qsvm", "su2random", "vqc", "wstate",
)


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def families() -> tuple[str, ...]:
    return ALL_FAMILIES if PAPER_SCALE else FAST_FAMILIES


@pytest.fixture(scope="session")
def local_qubits() -> int:
    """Shard size L: 28 at paper scale, 16 at the reduced scale."""
    return 28 if PAPER_SCALE else 16


@pytest.fixture(scope="session")
def qubit_range(local_qubits) -> tuple[int, ...]:
    """Circuit sizes for the kernelization sweeps (paper: 28–36)."""
    if PAPER_SCALE:
        return tuple(range(28, 37))
    return tuple(range(local_qubits, local_qubits + 5, 2))


@pytest.fixture(scope="session")
def gpu_counts() -> tuple[int, ...]:
    return (1, 2, 4, 8, 16, 32, 64, 128, 256) if PAPER_SCALE else (1, 4, 16, 64)

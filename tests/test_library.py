"""Tests for the benchmark circuit library (Table I families + hhl)."""

import math

import numpy as np
import pytest

from repro.circuits.library import (
    CIRCUIT_FAMILIES,
    PAPER_FAMILIES,
    ae,
    brickwork_circuit,
    dj,
    get_circuit,
    ghz,
    graphstate,
    hhl,
    hhl_padded,
    inverse_qft,
    ising,
    qft,
    qpeexact,
    qsvm,
    random_circuit,
    su2random,
    vqc,
    wstate,
)
from repro.sim import simulate_reference


class TestRegistry:
    def test_paper_families_present(self):
        assert len(PAPER_FAMILIES) == 11
        for family in PAPER_FAMILIES:
            assert family in CIRCUIT_FAMILIES

    def test_get_circuit(self):
        c = get_circuit("ghz", 12)
        assert c.num_qubits == 12

    def test_get_circuit_unknown(self):
        with pytest.raises(ValueError, match="unknown circuit family"):
            get_circuit("nope", 10)

    @pytest.mark.parametrize("family", PAPER_FAMILIES)
    def test_families_scale_with_qubits(self, family):
        small = get_circuit(family, 10)
        large = get_circuit(family, 14)
        assert large.num_qubits == 14
        assert len(large) >= len(small)

    @pytest.mark.parametrize("family", PAPER_FAMILIES)
    def test_families_are_deterministic(self, family):
        a = get_circuit(family, 12)
        b = get_circuit(family, 12)
        assert a == b


class TestGateCounts:
    """Gate-count formulas match the constructions documented in DESIGN.md."""

    def test_ghz_count(self):
        assert len(ghz(28)) == 28

    def test_graphstate_count(self):
        assert len(graphstate(28)) == 56

    def test_dj_count(self):
        assert len(dj(28)) == 3 * 28 - 2 + 1  # x + h(anc) + n-1 h + n-1 cx + n-1 h

    def test_wstate_count(self):
        assert len(wstate(28)) == 4 * 27 + 1

    def test_qft_count_matches_paper(self):
        # Table I: 406 gates at 28 qubits.
        assert len(qft(28)) == 28 * 29 // 2 == 406

    def test_qsvm_count_matches_paper(self):
        # Table I: 274 gates at 28 qubits.
        assert len(qsvm(28)) == 274

    def test_qpeexact_count_close_to_paper(self):
        assert abs(len(qpeexact(28)) - 432) <= 5

    def test_su2random_scales_quadratically(self):
        assert len(su2random(20)) > len(su2random(10)) * 2

    def test_hhl_counts_grow_superlinearly(self):
        counts = [len(hhl(n)) for n in (4, 6, 8, 10)]
        assert counts == sorted(counts)
        # Roughly exponential growth in the clock register size.
        assert counts[-1] > 10 * counts[0]


class TestCorrectness:
    def test_ghz_state(self):
        state = simulate_reference(ghz(4))
        probs = state.probabilities()
        assert probs[0] == pytest.approx(0.5, abs=1e-9)
        assert probs[-1] == pytest.approx(0.5, abs=1e-9)
        assert np.sum(probs) == pytest.approx(1.0)

    def test_wstate_probabilities(self):
        n = 5
        state = simulate_reference(wstate(n))
        probs = state.probabilities()
        one_hot = [1 << k for k in range(n)]
        for idx in one_hot:
            assert probs[idx] == pytest.approx(1.0 / n, abs=1e-9)
        assert sum(probs[i] for i in one_hot) == pytest.approx(1.0, abs=1e-9)

    def test_qft_of_zero_state_is_uniform(self):
        state = simulate_reference(qft(5))
        assert np.allclose(np.abs(state.data), 1 / math.sqrt(32), atol=1e-9)

    def test_qft_inverse_qft_is_identity(self):
        circuit = qft(5).compose(inverse_qft(5))
        state = simulate_reference(circuit)
        assert abs(state.amplitude(0)) == pytest.approx(1.0, abs=1e-9)

    def test_qpeexact_is_exact(self):
        for n in (4, 5, 6):
            state = simulate_reference(qpeexact(n))
            marginal = state.marginal_probabilities(list(range(n - 1)))
            assert np.max(marginal) == pytest.approx(1.0, abs=1e-6)

    def test_dj_balanced_oracle_never_returns_zero(self):
        # For a balanced oracle the all-zeros outcome on the input register
        # has probability 0.
        n = 5
        state = simulate_reference(dj(n))
        marginal = state.marginal_probabilities(list(range(n - 1)))
        assert marginal[0] == pytest.approx(0.0, abs=1e-9)

    def test_graphstate_is_stabilizer_uniform(self):
        state = simulate_reference(graphstate(4))
        # Graph states have uniform amplitude magnitudes.
        assert np.allclose(np.abs(state.data), 0.25, atol=1e-9)

    def test_all_families_produce_normalized_states(self):
        for family in PAPER_FAMILIES:
            circuit = get_circuit(family, 8)
            state = simulate_reference(circuit)
            assert state.is_normalized(), family

    def test_hhl_is_normalized(self):
        state = simulate_reference(hhl(5))
        assert state.is_normalized()

    def test_ae_is_normalized_and_entangled(self):
        state = simulate_reference(ae(6))
        assert state.is_normalized()

    def test_ising_and_vqc_normalized(self):
        assert simulate_reference(ising(7)).is_normalized()
        assert simulate_reference(vqc(6)).is_normalized()


class TestParameterValidation:
    def test_minimum_sizes(self):
        with pytest.raises(ValueError):
            ghz(0)
        with pytest.raises(ValueError):
            dj(1)
        with pytest.raises(ValueError):
            wstate(1)
        with pytest.raises(ValueError):
            graphstate(2)
        with pytest.raises(ValueError):
            hhl(3)

    def test_ae_probability_bounds(self):
        with pytest.raises(ValueError):
            ae(6, probability=1.5)

    def test_su2random_entanglement_option(self):
        linear = su2random(8, entanglement="linear")
        full = su2random(8, entanglement="full")
        assert len(linear) < len(full)
        with pytest.raises(ValueError):
            su2random(8, entanglement="ring")

    def test_graphstate_degree_option(self):
        dense = graphstate(10, degree=4, seed=1)
        ring = graphstate(10)
        assert len(dense) > len(ring)

    def test_hhl_padded(self):
        padded = hhl_padded(5, 12)
        assert padded.num_qubits == 12
        assert len(padded) == len(hhl(5))
        with pytest.raises(ValueError):
            hhl_padded(6, 4)


class TestRandomCircuits:
    def test_random_circuit_size(self):
        c = random_circuit(6, 40, seed=2)
        assert len(c) == 40
        assert c.num_qubits == 6

    def test_random_circuit_deterministic(self):
        assert random_circuit(6, 40, seed=2) == random_circuit(6, 40, seed=2)
        assert random_circuit(6, 40, seed=2) != random_circuit(6, 40, seed=3)

    def test_random_circuit_gate_set_restriction(self):
        c = random_circuit(5, 30, seed=1, gate_set=("h", "cx"))
        assert set(g.name for g in c) <= {"h", "cx"}

    def test_brickwork_structure(self):
        c = brickwork_circuit(6, depth=4, seed=0)
        names = {g.name for g in c}
        assert names == {"u3", "cz"}
        assert simulate_reference(c).is_normalized()

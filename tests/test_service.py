"""Tests for the multi-tenant simulation service.

Covers the full subsystem: admission control (typed rejections at the
call site), priority + weighted fair-share scheduling (DRR ratios,
no-starvation regression), the deferred future-backed Job lifecycle
(exactly-once lazy execution, cancellation), structural dedup fan-out,
the cross-tenant shared plan store (relabel-invariant hits, disk
persistence round-trip, checksum-corruption eviction via both the
``cache_rebind`` fault site and on-disk tampering), and the 3-tenant ×
30-job soak acceptance test: bit-exact vs solo ``Session.run``, exactly
one cold plan per structure across tenants, zero replans after a restart
from the persisted cache.
"""

from __future__ import annotations

import json
import threading
from collections import Counter

import numpy as np
import pytest

from repro import (
    AdmissionError,
    JobCancelledError,
    JobStatus,
    MachineConfig,
    QueueFullError,
    ServiceClosedError,
    Session,
    TenantQuotaError,
)
from repro.circuits.library import ghz, qft, vqc
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    FairShareScheduler,
    SharedPlanStore,
    SimulationService,
)
from repro.session import Job, plan_skeleton, skeleton_fingerprint

N = 8


@pytest.fixture()
def machine() -> MachineConfig:
    # In-core regime: the planner is relabel-equivariant here, so shared
    # plans bound across relabeled tenants are bit-exact with solo runs.
    return MachineConfig.for_circuit(N)


def _state(result) -> np.ndarray:
    return np.asarray(result.state.data)


def _relabeled(circuit, shift: int):
    n = circuit.num_qubits
    return circuit.remap_qubits({q: (q + shift) % n for q in range(n)})


# ---------------------------------------------------------------------------
# Fair-share scheduling
# ---------------------------------------------------------------------------


class TestFairShareScheduler:
    def test_weighted_ratio_ten_to_one(self):
        sched = FairShareScheduler()
        for i in range(200):
            sched.enqueue("heavy", i, weight=10.0)
            sched.enqueue("light", i, weight=1.0)
        counts = Counter(sched.next_job()[0] for _ in range(110))
        assert counts["heavy"] == 100
        assert counts["light"] == 10

    def test_no_starvation_under_flood(self):
        # Regression: a tenant flooding the queue before another tenant's
        # single job must not delay it beyond one DRR round.
        sched = FairShareScheduler()
        for i in range(100):
            sched.enqueue("flood", i)
        sched.enqueue("victim", "v")
        first_four = [sched.next_job()[0] for _ in range(4)]
        assert "victim" in first_four

    def test_priority_orders_within_tenant_only(self):
        sched = FairShareScheduler()
        sched.enqueue("a", "a-low", priority=0)
        sched.enqueue("a", "a-high", priority=9)
        sched.enqueue("b", "b-job", priority=-5)
        order = [sched.next_job()[1].payload for _ in range(3)]
        # High priority first within tenant a; tenant b is not starved by
        # a's higher priorities (priorities never compare across tenants).
        assert order.index("a-high") < order.index("a-low")
        assert "b-job" in order[:2]

    def test_costed_jobs_draw_proportional_budget(self):
        sched = FairShareScheduler()
        for i in range(10):
            sched.enqueue("singles", i, cost=1)
        sched.enqueue("batcher", "B", cost=5)
        order = [sched.next_job()[0] for _ in range(11)]
        # The cost-5 batch waits ~5 rounds for its deficit to accumulate.
        assert order.index("batcher") >= 4
        assert Counter(order) == Counter(singles=10, batcher=1)

    def test_drains_and_terminates(self):
        sched = FairShareScheduler()
        sched.enqueue("t", "x", cost=7)
        assert sched.next_job()[1].payload == "x"
        assert sched.next_job() is None
        assert sched.pending() == 0


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_full_is_typed_with_context(self, machine):
        controller = AdmissionController(
            AdmissionPolicy(max_pending_jobs=2), session=None
        )
        with pytest.raises(QueueFullError) as err:
            controller.admit(
                [qft(N)], tenant="t", pending_total=2, pending_tenant=0
            )
        assert err.value.context["depth"] == 2
        assert err.value.context["limit"] == 2

    def test_tenant_quota_is_per_tenant(self, machine):
        controller = AdmissionController(
            AdmissionPolicy(max_pending_per_tenant=1, max_pending_jobs=100),
            session=None,
        )
        with pytest.raises(TenantQuotaError):
            controller.admit(
                [qft(N)], tenant="greedy", pending_total=1, pending_tenant=1
            )
        # Another tenant with an empty queue is unaffected.
        controller.admit([qft(N)], tenant="ok", pending_total=1, pending_tenant=0)

    def test_oversized_job_rejected_synchronously(self, machine):
        svc = SimulationService(
            machine, policy=AdmissionPolicy(max_circuits_per_job=1)
        )
        try:
            with pytest.raises(AdmissionError):
                svc.submit([qft(N), qft(N)], tenant="t")
            assert svc.stats()["rejected"] == 1
            assert svc.tenant_stats("t").rejected == 1
        finally:
            svc.close()

    def test_memory_budget_uses_modelled_cost(self, machine):
        with Session(machine) as session:
            controller = AdmissionController(
                AdmissionPolicy(memory_budget_bytes=1), session
            )
            with pytest.raises(AdmissionError):
                controller.admit(
                    [qft(N)], tenant="t", pending_total=0, pending_tenant=0
                )
            generous = AdmissionController(
                AdmissionPolicy(memory_budget_bytes=1 << 40), session
            )
            generous.admit(
                [qft(N)], tenant="t", pending_total=0, pending_tenant=0
            )

    def test_modelled_time_ceiling(self, machine):
        svc = SimulationService(
            machine, policy=AdmissionPolicy(max_modelled_seconds=1e-30)
        )
        try:
            with pytest.raises(AdmissionError):
                svc.submit(qft(N), tenant="t")
        finally:
            svc.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_pending_jobs=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_modelled_seconds=0.0)


# ---------------------------------------------------------------------------
# Deferred jobs (Session.run(execute=False))
# ---------------------------------------------------------------------------


class TestDeferredJob:
    def test_lazy_exactly_once_under_concurrency(self, machine):
        with Session(machine) as session:
            calls = []
            original = session._run_locked

            def counting(*args, **kwargs):
                if kwargs.get("execute", True):
                    calls.append(1)
                return original(*args, **kwargs)

            session._run_locked = counting
            job = session.run(qft(N), execute=False)
            assert job.status is JobStatus.PENDING
            assert not calls  # modelling never executes

            outputs = [None] * 8
            def resolve(i):
                outputs[i] = job.result()
            threads = [
                threading.Thread(target=resolve, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(calls) == 1  # the thunk ran exactly once
            states = [_state(r) for r in outputs]
            for s in states[1:]:
                assert np.array_equal(states[0], s)
            assert job.status is JobStatus.DONE

    def test_modelled_view_is_immediate_and_passive(self, machine):
        with Session(machine) as session:
            job = session.run(qft(N), execute=False)
            modelled = job.modelled()
            assert modelled.state is None
            assert modelled.timing.total_seconds > 0
            assert job.status is JobStatus.PENDING

    def test_deferred_matches_eager(self, machine):
        with Session(machine) as session:
            eager = session.run(vqc(N, seed=1)).result()
        with Session(machine) as session:
            lazy = session.run(vqc(N, seed=1), execute=False).result()
        assert np.array_equal(_state(eager), _state(lazy))

    def test_cancel_before_resolve(self, machine):
        with Session(machine) as session:
            job = session.run(qft(N), execute=False)
            assert job.cancel()
            assert job.cancelled()
            with pytest.raises(JobCancelledError):
                job.result()
            assert not job.cancel()  # terminal: second cancel is a no-op

    def test_result_timeout_raises_deadline(self):
        from repro import DeadlineExceeded

        job = Job.pending(1)
        with pytest.raises(DeadlineExceeded):
            job.results(timeout=0.01)


# ---------------------------------------------------------------------------
# Service: submission, dedup, files, cancellation
# ---------------------------------------------------------------------------


class TestService:
    def test_submit_returns_live_future(self, machine):
        with SimulationService(machine) as svc:
            job = svc.submit(qft(N), tenant="alice")
            result = job.result(timeout=60)
            assert job.done()
            assert result.circuit_name == f"qft_{N}"
        # close() drains, so post-close counters are final.
        assert svc.stats()["completed"] == 1

    def test_closed_service_rejects(self, machine):
        svc = SimulationService(machine)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(qft(N), tenant="t")
        svc.close()  # idempotent

    def test_cancel_queued_job(self, machine):
        with SimulationService(machine) as svc:
            jobs = [svc.submit(vqc(N, seed=i), tenant="t") for i in range(40)]
            victim = jobs[-1]
            cancelled = victim.cancel()
            if cancelled:  # scheduler almost certainly hasn't reached it
                assert victim.cancelled()
                with pytest.raises(JobCancelledError):
                    victim.result(timeout=60)
            for job in jobs[:-1]:
                job.result(timeout=120)
        stats = svc.stats()
        assert stats["completed"] == 39 + (0 if cancelled else 1)
        assert stats["cancelled"] == (1 if cancelled else 0)

    def test_submit_many_dedups_structurally(self, machine):
        with SimulationService(machine) as svc:
            a = vqc(N, seed=3)
            twin = vqc(N, seed=3)     # same content -> dedup
            other = vqc(N, seed=4)    # same structure, different params
            jobs = svc.submit_many([a, twin, other], tenant="t")
            assert len(jobs) == 3
            results = [j.result(timeout=60) for j in jobs]
            assert np.array_equal(_state(results[0]), _state(results[1]))
            assert not np.array_equal(_state(results[0]), _state(results[2]))
        stats = svc.stats()
        assert stats["deduplicated"] == 1
        assert stats["submitted"] == 3
        assert stats["dispatched"] == 2  # the twin never re-executed

    def test_submit_file(self, machine, tmp_path):
        listing = tmp_path / "batch.txt"
        listing.write_text(
            f"vqc:{N}\n"
            "# a comment line\n"
            "\n"
            f"qft:{N}\n"
            f"vqc:{N}\n"
        )
        with SimulationService(machine) as svc:
            jobs = svc.submit_file(listing, tenant="files", concurrency=2)
            assert len(jobs) == 3
            for job in jobs:
                job.result(timeout=60)
            assert svc.stats()["deduplicated"] == 1

    def test_submit_many_malformed_spec_fails_only_its_job(self, machine):
        from repro.errors import SpecParseError

        with SimulationService(machine) as svc:
            jobs = svc.submit_many(
                [f"vqc:{N}", "no_such_family:5", vqc(N, seed=9)], tenant="t"
            )
            assert len(jobs) == 3
            with pytest.raises(SpecParseError):
                jobs[1].result(timeout=60)
            assert jobs[0].result(timeout=60).state is not None
            assert jobs[2].result(timeout=60).state is not None
        stats = svc.stats()
        assert stats["rejected"] == 1
        assert stats["tenants"]["t"]["rejected"] == 1

    def test_late_tenant_not_starved_by_flood(self, machine):
        with SimulationService(machine) as svc:
            flood = [svc.submit(vqc(N, seed=i), tenant="flood") for i in range(30)]
            late = svc.submit(qft(N), tenant="late")
            late.result(timeout=60)
            # The late tenant finished while the flood still queues work.
            assert svc.queue_depth > 0 or all(j.done() for j in flood)
            for job in flood:
                job.result(timeout=120)

    def test_per_tenant_accounting(self, machine):
        with SimulationService(machine) as svc:
            svc.submit(vqc(N, seed=0), tenant="a").result(timeout=60)
            svc.submit(vqc(N, seed=1), tenant="b").result(timeout=60)
        stats = svc.stats()
        assert stats["tenants"]["a"]["completed"] == 1
        assert stats["tenants"]["b"]["completed"] == 1
        # b's structurally identical circuit hit a's cached plan.
        assert stats["tenants"]["b"]["cache_hit_rate"] == 1.0
        assert stats["tenants"]["a"]["mean_turnaround_seconds"] >= (
            stats["tenants"]["a"]["mean_wait_seconds"]
        )


# ---------------------------------------------------------------------------
# Shared plan store: persistence + corruption
# ---------------------------------------------------------------------------


class TestSharedPlanStore:
    def _skeleton(self, machine):
        with Session(machine) as session:
            plan, *_ = session.plan_for(qft(N), machine, "incore")
        return plan_skeleton(plan)

    def test_round_trip_through_disk(self, machine, tmp_path):
        skeleton = self._skeleton(machine)
        store = SharedPlanStore(persist_dir=tmp_path)
        store.put(("k",), skeleton)
        assert store.stats.saved == 1
        reborn = SharedPlanStore(persist_dir=tmp_path)
        assert reborn.stats.loaded == 1
        loaded = reborn.get(("k",))
        assert loaded == skeleton
        assert skeleton_fingerprint(loaded) == loaded["fingerprint"]

    def test_on_disk_tampering_evicted_at_load(self, machine, tmp_path):
        store = SharedPlanStore(persist_dir=tmp_path)
        store.put(("k",), self._skeleton(machine))
        [path] = list(tmp_path.glob("*.json"))
        payload = json.loads(path.read_text())
        payload["skeleton"]["stages"][0]["gate_indices"][0] = 999
        path.write_text(json.dumps(payload))
        reborn = SharedPlanStore(persist_dir=tmp_path)
        assert reborn.stats.loaded == 0
        assert reborn.stats.load_rejected == 1
        assert reborn.get(("k",)) is None  # never trusted, fully evicted
        assert not list(tmp_path.glob("*.json"))

    def test_in_memory_corruption_detected_on_get(self, machine):
        from repro import CacheCorruptionError

        store = SharedPlanStore()
        skeleton = self._skeleton(machine)
        store.put(("k",), skeleton)
        skeleton["num_qubits"] += 1  # bit-rot the live entry
        with pytest.raises(CacheCorruptionError):
            store.get(("k",))
        assert store.stats.corruptions == 1
        assert store.get(("k",)) is None

    def test_truncated_file_rejected(self, machine, tmp_path):
        store = SharedPlanStore(persist_dir=tmp_path)
        store.put(("k",), self._skeleton(machine))
        [path] = list(tmp_path.glob("*.json"))
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        reborn = SharedPlanStore(persist_dir=tmp_path)
        assert reborn.stats.load_rejected == 1
        assert len(reborn) == 0

    def test_injected_rebind_fault_evicts_and_replans(self, machine, tmp_path):
        # Warm the persistent store, then restart with the cache_rebind
        # fault armed: the shared-store bind fails once, the session falls
        # back to a cold replan, and the answer is still correct.
        store = SharedPlanStore(persist_dir=tmp_path)
        with SimulationService(machine, store=store) as svc:
            clean = _state(svc.submit(qft(N), tenant="warm").result(timeout=60))
        svc2 = SimulationService(
            machine,
            store=SharedPlanStore(persist_dir=tmp_path),
            faults="cache_rebind:transient:1",
        )
        try:
            result = svc2.submit(qft(N), tenant="cold").result(timeout=60)
            assert np.array_equal(_state(result), clean)
            stats = svc2.stats()["session"]
            assert stats["cache_corruptions"] == 1
            assert stats["plans_built"] == 1  # the fallback replan
        finally:
            svc2.close()


# ---------------------------------------------------------------------------
# Chaos slice: run by CI with REPRO_FAULTS armed during concurrent
# submissions (e.g. cache_rebind transients).  Every assertion here must
# hold with and without injected faults: transient corruption is recovered
# by evict-and-replan, so results stay bit-exact and nothing fails.
# ---------------------------------------------------------------------------


class TestServiceChaos:
    def test_concurrent_submissions_bit_exact_under_faults(
        self, machine, tmp_path
    ):
        circuits = [vqc(N, seed=s) for s in range(4)] + [qft(N), ghz(N)]
        with Session(machine) as solo:
            expected = [_state(solo.run(c).result()) for c in circuits]

        jobs = {}
        jobs_lock = threading.Lock()
        submit_errors = []

        with SimulationService(machine, persist_dir=tmp_path) as svc:
            def submit_all(tenant):
                try:
                    for i, circuit in enumerate(circuits):
                        job = svc.submit(circuit, tenant=tenant)
                        with jobs_lock:
                            jobs[(tenant, i)] = job
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    submit_errors.append(exc)

            threads = [
                threading.Thread(target=submit_all, args=(f"tenant{k}",))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not submit_errors
            for (tenant, i), job in sorted(jobs.items()):
                result = job.result(timeout=120)
                assert np.array_equal(_state(result), expected[i]), (
                    f"{tenant} circuit #{i} diverged"
                )
        stats = svc.stats()
        assert stats["failed"] == 0
        assert stats["submitted"] == stats["completed"] + stats["cancelled"]


# ---------------------------------------------------------------------------
# Soak: the acceptance scenario
# ---------------------------------------------------------------------------


class TestSoak:
    def test_three_tenants_thirty_jobs_bit_exact_one_cold_plan(
        self, machine, tmp_path
    ):
        families = [
            lambda seed: vqc(N, seed=seed),
            lambda seed: qft(N),
            lambda seed: ghz(N),
        ]
        tenants = ["alice", "bob", "carol"]
        # Each tenant submits the same three structures under its own
        # qubit labelling; parameters vary per job.
        submissions = []  # (tenant, circuit)
        for t_index, tenant in enumerate(tenants):
            for j in range(30):
                circuit = families[j % 3](seed=j)
                submissions.append((tenant, _relabeled(circuit, t_index)))

        weights = {"alice": 1.0, "bob": 2.0, "carol": 3.0}
        svc = SimulationService(machine, persist_dir=tmp_path)
        jobs = [
            svc.submit(circuit, tenant=tenant, weight=weights[tenant])
            for tenant, circuit in submissions
        ]
        results = [job.result(timeout=300) for job in jobs]
        session_stats = svc.stats()["session"]
        svc.close()

        # Bit-exactness: every service result equals a solo Session run of
        # the identical circuit on the identical machine.
        with Session(machine) as solo:
            for (tenant, circuit), result in zip(submissions, results):
                expected = solo.run(circuit).result()
                assert np.array_equal(_state(expected), _state(result)), (
                    f"tenant {tenant} circuit {circuit.name} diverged"
                )

        # Exactly one cold plan per distinct structure across all three
        # tenants: vqc/qft/ghz = 3 structures; every relabeled twin bound
        # from the shared store, every parameter twin from the local cache.
        assert session_stats["plans_built"] == 3
        assert session_stats["shared_cache_hits"] >= 6  # 3 structs x 2 relabels
        assert session_stats["cache_corruptions"] == 0

        # Restart from the persisted cache: zero replans.
        svc2 = SimulationService(machine, persist_dir=tmp_path)
        try:
            # The store is keyed canonically, so the 3 tenants' relabeled
            # twins share entries: 3 structures -> 3 persisted plans.
            assert svc2.store.stats.loaded == 3
            redo = [
                svc2.submit(circuit, tenant=tenant)
                for tenant, circuit in submissions[:9]
            ]
            for (tenant, circuit), job in zip(submissions[:9], redo):
                fresh = job.result(timeout=300)
                with Session(machine) as solo:
                    expected = solo.run(circuit).result()
                assert np.array_equal(_state(expected), _state(fresh))
            assert svc2.stats()["session"]["plans_built"] == 0
        finally:
            svc2.close()

"""Tests for the three kernelization algorithms (KERNELIZE, ORDERED-KERNELIZE, greedy)."""

import pytest

from repro.circuits import Circuit
from repro.circuits.library import ghz, ising, qft, qsvm, random_circuit, wstate
from repro.cluster import CostModel
from repro.core import (
    Kernel,
    KernelizeConfig,
    KernelType,
    greedy_kernelize,
    kernelize,
    ordered_kernelize,
)
from repro.sim import StateVector, fused_unitary, simulate_reference


def _functional_check(circuit, kernels) -> bool:
    """Executing the kernels in order must reproduce the circuit's state."""
    state = StateVector.zero_state(circuit.num_qubits)
    for kernel in kernels:
        matrix, qubits = fused_unitary(list(kernel.gates))
        state.apply_matrix(matrix, qubits)
    return simulate_reference(circuit).allclose(state)


def _coverage_check(circuit, kernels) -> None:
    indices = sorted(kernels.all_gate_indices())
    assert indices == list(range(len(circuit)))


ALL_KERNELIZERS = [
    ("atlas", lambda c: kernelize(c, config=KernelizeConfig(pruning_threshold=32))),
    ("naive", ordered_kernelize),
    ("greedy", greedy_kernelize),
]


class TestKernelDataTypes:
    def test_kernel_from_gates_picks_strategy(self):
        cm = CostModel()
        gates = Circuit(2).h(0).cx(0, 1).gates
        k = Kernel.from_gates(gates, cm, gate_indices=[0, 1])
        assert k.num_gates == 2
        assert k.qubits == (0, 1)
        assert k.kernel_type in (KernelType.FUSION, KernelType.SHM)
        assert k.cost > 0
        assert len(k) == 2

    def test_kernel_sequence_aggregates(self):
        circuit = qft(6)
        ks = greedy_kernelize(circuit)
        assert ks.num_gates == len(circuit)
        assert ks.total_cost == pytest.approx(sum(k.cost for k in ks))
        assert len(ks.widths()) == len(ks)


class TestKernelizeCorrectness:
    @pytest.mark.parametrize("name,fn", ALL_KERNELIZERS)
    def test_empty_circuit(self, name, fn):
        ks = fn(Circuit(3))
        assert len(ks) == 0
        assert ks.total_cost == 0.0

    @pytest.mark.parametrize("name,fn", ALL_KERNELIZERS)
    def test_single_gate(self, name, fn):
        ks = fn(Circuit(3).h(1))
        assert len(ks) == 1
        assert ks.kernels[0].qubits == (1,)

    @pytest.mark.parametrize("name,fn", ALL_KERNELIZERS)
    @pytest.mark.parametrize("builder", [qft, ising, wstate, qsvm, ghz])
    def test_families_covered_and_functional(self, name, fn, builder):
        circuit = builder(8)
        ks = fn(circuit)
        _coverage_check(circuit, ks)
        assert _functional_check(circuit, ks)

    @pytest.mark.parametrize("name,fn", ALL_KERNELIZERS)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits_functional(self, name, fn, seed):
        circuit = random_circuit(7, 50, seed=seed)
        ks = fn(circuit)
        _coverage_check(circuit, ks)
        assert _functional_check(circuit, ks)

    def test_kernelize_order_is_topologically_valid(self):
        # The concatenated gate order of the returned kernels must respect
        # the circuit's dependencies (Theorem 2).
        for seed in range(4):
            circuit = random_circuit(8, 60, seed=seed)
            ks = kernelize(circuit, config=KernelizeConfig(pruning_threshold=16))
            assert circuit.is_topologically_equivalent(ks.all_gate_indices())

    def test_accepts_plain_gate_lists(self):
        gates = list(qft(6).gates)
        assert kernelize(gates).num_gates == len(gates)
        assert ordered_kernelize(gates).num_gates == len(gates)
        assert greedy_kernelize(gates).num_gates == len(gates)


class TestKernelizeQuality:
    def test_kernelize_beats_or_matches_naive_and_greedy(self):
        # Theorem 6 (vs ORDERED-KERNELIZE) and the Figure 10 comparison
        # (vs greedy packing), checked on representative circuits.
        for builder in (qft, qsvm, ising, wstate):
            circuit = builder(12)
            atlas = kernelize(circuit, config=KernelizeConfig(pruning_threshold=64)).total_cost
            naive = ordered_kernelize(circuit).total_cost
            greedy = greedy_kernelize(circuit).total_cost
            assert atlas <= naive * 1.01, builder.__name__
            assert atlas <= greedy * 1.01, builder.__name__

    def test_higher_pruning_threshold_does_not_hurt(self):
        circuit = qft(12)
        small = kernelize(circuit, config=KernelizeConfig(pruning_threshold=4)).total_cost
        large = kernelize(circuit, config=KernelizeConfig(pruning_threshold=128)).total_cost
        assert large <= small * 1.01

    def test_width_cap_respected(self):
        circuit = random_circuit(10, 80, seed=1)
        config = KernelizeConfig(pruning_threshold=16, max_kernel_width=4)
        ks = kernelize(circuit, config=config)
        # Only single gates may exceed the cap (a 3-qubit gate is still one kernel).
        for kernel in ks:
            assert kernel.num_qubits <= 4 or kernel.num_gates == 1

    def test_greedy_width_bound(self):
        circuit = qft(12)
        ks = greedy_kernelize(circuit, max_width=5)
        for kernel in ks:
            assert kernel.num_qubits <= 5
            assert kernel.kernel_type is KernelType.FUSION

    def test_ordered_kernels_are_contiguous(self):
        circuit = ising(10)
        ks = ordered_kernelize(circuit)
        for kernel in ks:
            indices = list(kernel.gate_indices)
            assert indices == list(range(indices[0], indices[-1] + 1))

    def test_ordered_kernelize_optimal_on_tiny_circuit(self):
        # Brute-force check of the contiguous-segment DP on a 5-gate circuit.
        cm = CostModel()
        circuit = Circuit(4).h(0).cx(0, 1).h(2).cx(2, 3).cz(1, 2)
        ks = ordered_kernelize(circuit, cm)

        def brute(best=float("inf")):
            gates = circuit.gates
            n = len(gates)

            def rec(i):
                if i == n:
                    return 0.0
                best_cost = float("inf")
                for j in range(i + 1, n + 1):
                    seg = gates[i:j]
                    best_cost = min(best_cost, cm.cost(seg) + rec(j))
                return best_cost

            return rec(0)

        assert ks.total_cost == pytest.approx(brute(), rel=1e-9)

    def test_kernelize_no_worse_than_one_kernel_per_gate(self):
        circuit = qsvm(10)
        cm = CostModel()
        per_gate_cost = sum(cm.cost([g]) for g in circuit)
        assert kernelize(circuit).total_cost <= per_gate_cost

    def test_subsumption_shortcut_preserves_quality(self):
        circuit = qft(10)
        with_sub = kernelize(circuit, config=KernelizeConfig(pruning_threshold=32, subsume=True))
        without_sub = kernelize(circuit, config=KernelizeConfig(pruning_threshold=32, subsume=False))
        # Both must remain valid; costs should be in the same ballpark.
        assert _functional_check(circuit, with_sub)
        assert _functional_check(circuit, without_sub)
        assert with_sub.total_cost <= without_sub.total_cost * 1.5

"""Tests for the cost-model calibration harness (repro.analysis.calibration)."""

import pytest

from repro.analysis.calibration import (
    CalibrationResult,
    calibrate_cost_model,
    measure_fusion_times,
    measure_gate_times,
)
from repro.circuits.library import qft
from repro.core import kernelize, greedy_kernelize


class TestMeasurements:
    def test_fusion_times_positive_and_cover_widths(self):
        timings = measure_fusion_times(state_qubits=10, widths=range(1, 5), repeats=1)
        assert set(timings) == {1, 2, 3, 4}
        assert all(t > 0 for t in timings.values())

    def test_gate_times_cover_defaults(self):
        timings = measure_gate_times(state_qubits=10, repeats=1)
        assert {"h", "rz", "cx"} <= set(timings)
        assert all(t > 0 for t in timings.values())


class TestCalibratedModel:
    @pytest.fixture(scope="class")
    def calibration(self) -> CalibrationResult:
        return calibrate_cost_model(state_qubits=10, max_fusion_qubits=6, repeats=1)

    def test_result_structure(self, calibration):
        assert calibration.cost_model is not None
        assert calibration.state_qubits == 10
        rows = calibration.summary()
        assert any(r["quantity"].startswith("fusion width") for r in rows)
        assert any(r["quantity"] == "shm load" for r in rows)

    def test_model_normalisation(self, calibration):
        cm = calibration.cost_model
        assert cm.fusion_cost(1) == pytest.approx(1.0)
        assert cm.shm_load_cost == pytest.approx(1.0)
        assert cm.max_fusion_qubits == 6

    def test_model_usable_by_kernelizers(self, calibration):
        cm = calibration.cost_model
        circuit = qft(10)
        atlas = kernelize(circuit, cm)
        greedy = greedy_kernelize(circuit, cm)
        assert atlas.num_gates == len(circuit)
        assert atlas.total_cost <= greedy.total_cost * 1.05

    def test_best_fusion_width_reasonable(self, calibration):
        width = calibration.cost_model.best_fusion_width()
        assert 1 <= width <= 6

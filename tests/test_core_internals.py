"""Focused tests of core-module internals not covered by the end-to-end suites."""

import pytest

from repro.circuits import Circuit
from repro.circuits.library import ising, qft
from repro.cluster import CostModel, MachineConfig
from repro.core import (
    ExecutionPlan,
    KernelSequence,
    KernelizeConfig,
    QubitPartition,
    Stage,
    partition,
)
from repro.core.kernel import Kernel, KernelType
from repro.core.stage import _ilp_dependencies, _ilp_gates, build_staging_ilp
from repro.ilp import solve


class TestIlpGateReduction:
    def test_fully_insular_gates_dropped(self):
        circuit = Circuit(4).h(0).cz(0, 1).cp(0.3, 1, 2).rz(0.2, 3).cx(2, 3)
        gates = _ilp_gates(circuit)
        # Only h(0) and cx(2,3) have non-insular qubits.
        assert [g.original_index for g in gates] == [0, 4]
        assert gates[0].non_insular == (0,)
        assert gates[1].non_insular == (3,)

    def test_dependency_projection_through_insular_gates(self):
        # h(0) -> cz(0,1) -> h(1): the two h gates must be ordered even though
        # the cz connecting them never appears in the ILP.
        circuit = Circuit(2).h(0).cz(0, 1).h(1)
        gates = _ilp_gates(circuit)
        deps = _ilp_dependencies(circuit, gates)
        assert (0, 1) in deps

    def test_direct_dependencies_still_present(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(1)
        gates = _ilp_gates(circuit)
        deps = _ilp_dependencies(circuit, gates)
        assert (0, 1) in deps and (1, 2) in deps

    def test_independent_gates_have_no_edge(self):
        circuit = Circuit(4).h(0).h(1).cz(2, 3)
        gates = _ilp_gates(circuit)
        assert _ilp_dependencies(circuit, gates) == []

    def test_long_insular_chain_projection(self):
        circuit = Circuit(4).h(0)
        circuit.cz(0, 1).cz(1, 2).cz(2, 3)
        circuit.h(3)
        gates = _ilp_gates(circuit)
        deps = _ilp_dependencies(circuit, gates)
        assert (0, 1) in deps  # h(0) reaches h(3) through the cz chain


class TestStagingModelStructure:
    def test_variable_and_constraint_counts(self):
        circuit = qft(5)
        s, local, regional, global_ = 2, 3, 1, 1
        model, variables = build_staging_ilp(circuit, s, local, regional, global_)
        n = circuit.num_qubits
        num_ilp_gates = len(variables["gates"])
        expected_vars = 2 * n * s + num_ilp_gates * s + 2 * n * (s - 1)
        assert model.num_variables == expected_vars
        # Feasibility: the model should be solvable for two stages.
        assert solve(model).status.is_feasible

    def test_objective_counts_transitions_only(self):
        circuit = qft(5)
        model, variables = build_staging_ilp(circuit, 1, 5, 0, 0)
        # With a single stage there are no transition variables to pay for.
        assert model.objective.coeffs == {}

    def test_inter_node_cost_factor_scales_objective(self):
        circuit = ising(6)
        model, variables = build_staging_ilp(circuit, 2, 4, 1, 1, inter_node_cost_factor=7.0)
        t_indices = {v.index for row in variables["T"] for v in row}
        coeffs = {model.objective.coeffs.get(i) for i in t_indices}
        assert coeffs == {7.0}


class TestPlanDataTypes:
    def _tiny_plan(self):
        circuit = Circuit(3).h(0).cx(0, 1).cz(1, 2)
        machine = MachineConfig.for_circuit(3, num_gpus=1, local_qubits=3)
        plan, report = partition(circuit, machine,
                                 kernelize_config=KernelizeConfig(pruning_threshold=4))
        return circuit, plan, report

    def test_plan_summary_fields(self):
        circuit, plan, report = self._tiny_plan()
        summary = plan.summary()
        assert summary["num_stages"] == plan.num_stages
        assert summary["gates_per_stage"] == [s.num_gates for s in plan.stages]
        assert plan.gate_count() == len(circuit)
        assert len(plan.all_gates()) == len(circuit)

    def test_partition_report_fields(self):
        _, plan, report = self._tiny_plan()
        assert report.num_stages == plan.num_stages
        assert report.num_kernels == plan.num_kernels
        assert report.preprocessing_seconds == pytest.approx(
            report.staging_seconds + report.kernelization_seconds
        )

    def test_plan_validate_detects_missing_gates(self):
        circuit, plan, _ = self._tiny_plan()
        plan.stages[0].gates.pop()
        plan.stages[0].gate_indices.pop()
        with pytest.raises(ValueError):
            plan.validate(circuit)

    def test_plan_validate_detects_duplicate_gates(self):
        circuit, plan, _ = self._tiny_plan()
        plan.stages[0].gates.append(circuit[0])
        plan.stages[0].gate_indices.append(0)
        with pytest.raises(ValueError):
            plan.validate(circuit)

    def test_stage_subcircuit_and_cost(self):
        circuit, plan, _ = self._tiny_plan()
        stage = plan.stages[0]
        sub = stage.subcircuit(circuit.num_qubits)
        assert len(sub) == stage.num_gates
        assert stage.kernel_cost() == pytest.approx(stage.kernels.total_cost)

    def test_kernel_sequence_empty(self):
        ks = KernelSequence(kernels=[])
        assert ks.total_cost == 0.0
        assert ks.num_gates == 0
        assert ks.widths() == []

    def test_kernel_dataclass_direct_construction(self):
        gates = tuple(Circuit(2).h(0).cx(0, 1).gates)
        kernel = Kernel(gates=gates, qubits=(0, 1), kernel_type=KernelType.SHM,
                        cost=1.5, gate_indices=(0, 1))
        assert kernel.num_qubits == 2
        assert kernel.num_gates == 2


class TestPartitionConfiguration:
    def test_unknown_stager_and_kernelizer(self):
        circuit = Circuit(3).h(0)
        machine = MachineConfig.for_circuit(3, num_gpus=1, local_qubits=3)
        with pytest.raises(ValueError, match="unknown stager"):
            partition(circuit, machine, stager="magic")
        with pytest.raises(ValueError, match="unknown kernelizer"):
            partition(circuit, machine, kernelizer="magic")

    def test_machine_circuit_mismatch(self):
        circuit = Circuit(4).h(0)
        machine = MachineConfig.for_circuit(3, num_gpus=1, local_qubits=3)
        with pytest.raises(ValueError):
            partition(circuit, machine)

    def test_custom_cost_model_flows_through(self):
        # A cost model that makes wide fusion kernels free should produce
        # fewer, wider kernels than the default model.
        circuit = qft(8)
        machine = MachineConfig.for_circuit(8, num_gpus=1, local_qubits=8)
        cheap_wide = CostModel(
            fusion_cost_per_qubits={k: 1.0 for k in range(0, 11)},
            max_fusion_qubits=10,
        )
        plan_default, _ = partition(circuit, machine,
                                    kernelize_config=KernelizeConfig(pruning_threshold=8))
        plan_cheap, _ = partition(circuit, machine, cost_model=cheap_wide,
                                  kernelize_config=KernelizeConfig(pruning_threshold=8))
        assert plan_cheap.num_kernels <= plan_default.num_kernels

    def test_snuqs_stager_with_greedy_kernelizer(self):
        circuit = ising(9)
        machine = MachineConfig.for_circuit(9, num_gpus=4, local_qubits=6)
        plan, report = partition(circuit, machine, stager="snuqs", kernelizer="greedy")
        assert plan.num_stages >= 1
        assert report.communication_cost >= 0.0
        plan.validate(circuit)


class TestQubitPartitionEdgeCases:
    def test_empty_regional_and_global(self):
        p = QubitPartition.from_sets({0, 1, 2}, set(), set())
        assert p.num_qubits == 3
        assert p.logical_to_physical() == {0: 0, 1: 1, 2: 2}

    def test_stage_without_kernels_costs_zero(self):
        stage = Stage(gates=[], partition=QubitPartition.from_sets({0}, set(), set()))
        assert stage.kernel_cost() == 0.0
        assert stage.is_local()

    def test_execution_plan_counts_without_kernels(self):
        stage = Stage(gates=list(Circuit(2).h(0).gates),
                      partition=QubitPartition.from_sets({0, 1}, set(), set()),
                      gate_indices=[0])
        plan = ExecutionPlan(num_qubits=2, stages=[stage])
        assert plan.num_kernels == 0
        assert plan.total_kernel_cost == 0.0

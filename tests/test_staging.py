"""Tests for circuit staging: the ILP formulation, Algorithm 2, and the heuristics."""

import pytest

from repro.circuits import Circuit
from repro.circuits.library import ghz, ising, qft, random_circuit, wstate
from repro.core import (
    build_staging_ilp,
    greedy_stage_circuit,
    snuqs_stage_circuit,
    solve_staging,
    stage_circuit,
)
from repro.core.plan import QubitPartition
from repro.ilp import solve


def _check_staging(circuit, result, local, regional, global_):
    """Invariants every staging (ILP or heuristic) must satisfy."""
    # Every gate appears exactly once.
    indices = []
    for stage in result.stages:
        indices.extend(stage.gate_indices)
    assert sorted(indices) == list(range(len(circuit)))
    # Dependencies respected by the stage order.
    assert circuit.is_topologically_equivalent(indices)
    for stage in result.stages:
        partition = stage.partition
        assert partition.num_local == local
        assert partition.num_regional == regional
        assert partition.num_global == global_
        # Locality invariant: non-insular qubits are local.
        assert stage.is_local()


class TestQubitPartition:
    def test_logical_to_physical_layout(self):
        p = QubitPartition.from_sets({3, 1}, {5}, {0})
        mapping = p.logical_to_physical()
        # Local qubits occupy physical 0..L-1 in ascending logical order.
        assert mapping[1] == 0 and mapping[3] == 1
        assert mapping[5] == 2
        assert mapping[0] == 3
        assert p.physical_to_logical()[0] == 1

    def test_classify(self):
        p = QubitPartition.from_sets({0}, {1}, {2})
        assert p.classify(0) == "local"
        assert p.classify(1) == "regional"
        assert p.classify(2) == "global"
        with pytest.raises(ValueError):
            p.classify(3)

    def test_overlapping_sets_rejected(self):
        with pytest.raises(ValueError):
            QubitPartition.from_sets({0, 1}, {1}, set())


class TestStagingIlpFormulation:
    def test_single_stage_when_everything_fits(self):
        circuit = ghz(6)
        result = stage_circuit(circuit, 6, 0, 0)
        assert result.num_stages == 1
        assert result.communication_cost == 0.0

    def test_model_is_infeasible_with_one_stage_when_it_must_split(self):
        # A circuit touching all 6 qubits non-insularly cannot run in one
        # stage with only 3 local qubits.
        circuit = Circuit(6)
        for q in range(5):
            circuit.h(q)
            circuit.cx(q, q + 1)
        model, _ = build_staging_ilp(circuit, 1, 3, 2, 1)
        assert not solve(model).status.is_feasible
        assert solve_staging(circuit, 1, 3, 2, 1) is None

    def test_lrg_must_cover_circuit(self):
        with pytest.raises(ValueError, match="must equal"):
            stage_circuit(ghz(6), 3, 1, 1)

    def test_insular_gates_do_not_force_locality(self):
        # A chain of cz gates is fully insular: one stage suffices even with
        # a single local qubit.
        circuit = Circuit(6)
        for q in range(5):
            circuit.cz(q, q + 1)
        result = stage_circuit(circuit, 1, 2, 3)
        assert result.num_stages == 1

    @pytest.mark.parametrize("family,builder", [("qft", qft), ("ising", ising), ("wstate", wstate)])
    def test_staging_invariants_per_family(self, family, builder):
        circuit = builder(10)
        result = stage_circuit(circuit, 6, 2, 2)
        _check_staging(circuit, result, 6, 2, 2)

    def test_staging_invariants_random_circuits(self):
        for seed in range(3):
            circuit = random_circuit(9, 50, seed=seed)
            result = stage_circuit(circuit, 5, 2, 2)
            _check_staging(circuit, result, 5, 2, 2)

    def test_minimum_stage_count_is_minimal(self):
        # Algorithm 2 returns the smallest feasible s: for this circuit a
        # 2-stage solution exists but a 1-stage solution does not.
        circuit = Circuit(4)
        circuit.h(0).h(1).cx(0, 1)
        circuit.h(2).h(3).cx(2, 3)
        result = stage_circuit(circuit, 2, 1, 1)
        assert result.num_stages == 2
        assert solve_staging(circuit, 1, 2, 1, 1) is None

    def test_communication_cost_counts_new_local_and_global(self):
        circuit = Circuit(4)
        circuit.h(0).h(1).cx(0, 1)
        circuit.h(2).h(3).cx(2, 3)
        result = stage_circuit(circuit, 2, 1, 1, inter_node_cost_factor=3.0)
        # Going from {0,1} local to {2,3} local: 2 new local qubits; one new
        # global qubit may also rotate in, costing 3 each.
        assert result.communication_cost >= 2.0

    def test_branch_and_bound_backend_agrees_on_stage_count(self):
        circuit = ising(6)
        a = stage_circuit(circuit, 4, 1, 1, backend="scipy")
        b = stage_circuit(circuit, 4, 1, 1, backend="branch-and-bound", time_limit=30)
        assert a.num_stages == b.num_stages

    def test_single_qubit_machine_edge_case(self):
        circuit = Circuit(2).h(0).h(1)
        result = stage_circuit(circuit, 1, 1, 0)
        assert result.num_stages == 2

    def test_infeasible_architecture_raises(self):
        # A swap gate needs 2 local qubits; L=1 can never host it.
        circuit = Circuit(3).swap(0, 1)
        with pytest.raises(RuntimeError, match="no feasible staging"):
            stage_circuit(circuit, 1, 1, 1, max_stages=3)


class TestHeuristicStaging:
    @pytest.mark.parametrize(
        "stager", [snuqs_stage_circuit, greedy_stage_circuit]
    )
    def test_heuristic_invariants(self, stager):
        for builder in (qft, ising, wstate):
            circuit = builder(10)
            result = stager(circuit, 6, 2, 2)
            _check_staging(circuit, result, 6, 2, 2)

    def test_heuristics_handle_random_circuits(self):
        for seed in range(3):
            circuit = random_circuit(9, 60, seed=seed)
            result = snuqs_stage_circuit(circuit, 5, 2, 2)
            _check_staging(circuit, result, 5, 2, 2)

    def test_ilp_never_needs_more_stages_than_heuristics(self):
        # Theorem 1: the ILP stage count is minimal.
        for builder in (qft, ising, wstate, ghz):
            circuit = builder(9)
            ilp = stage_circuit(circuit, 5, 2, 2)
            snuqs = snuqs_stage_circuit(circuit, 5, 2, 2)
            greedy = greedy_stage_circuit(circuit, 5, 2, 2)
            assert ilp.num_stages <= snuqs.num_stages
            assert ilp.num_stages <= greedy.num_stages

    def test_heuristic_lrg_validation(self):
        with pytest.raises(ValueError):
            snuqs_stage_circuit(ghz(6), 3, 1, 1)
        with pytest.raises(ValueError):
            greedy_stage_circuit(ghz(6), 3, 1, 1)

    def test_snuqs_marks_itself_heuristic(self):
        result = snuqs_stage_circuit(ghz(6), 4, 1, 1)
        assert result.solver_status == "heuristic"
        assert not result.ilp_feasible

"""Static verification layer: seeded-defect mutations, clean sweeps,
differential tests against the executors, Session wiring and the project
lint gate.

The heart of this file is the mutation table: every entry plants one
defect in a freshly-built plan / compiled program / shard schedule that a
*dynamic* test might miss (or catch only probabilistically) and asserts
the static verifier rejects it with the documented rule.  A handful of
the mutations are additionally executed to demonstrate they really do
misexecute — the checks are not style opinions, they gate real bugs.
"""

from __future__ import annotations

import dataclasses
import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.check import (
    CheckReport,
    Violation,
    expected_op_stream,
    round_robin_assignment,
    shard_write_map,
    verify_plan,
    verify_program,
    verify_schedule,
)
from repro.circuits import make_gate
from repro.circuits.library import CIRCUIT_FAMILIES, get_circuit, qft
from repro.cluster import MachineConfig
from repro.core import partition
from repro.core.plan import QubitPartition
from repro.errors import PlanValidationError, StaticCheckError
from repro.planner import build_plan
from repro.runtime import compile_plan
from repro.runtime.offload import _gate_on_shard
from repro.session import Session
from repro.sim import simulate_reference

REPO = Path(__file__).resolve().parent.parent

N = 6
LOCAL = 4
NUM_SHARDS = 1 << (N - LOCAL)


def fresh_machine() -> MachineConfig:
    return MachineConfig.for_circuit(N, local_qubits=LOCAL, num_shards=4)


def fresh_plan():
    machine = fresh_machine()
    plan, _report = partition(qft(N), machine)
    return plan, machine


def fresh_program():
    plan, machine = fresh_plan()
    return compile_plan(plan, machine), plan, machine


def first_gate_op_index(program) -> int:
    return next(
        i for i, op in enumerate(program.ops)
        if op.source and op.source[0] in ("gate", "sm", "kernel")
    )


# ---------------------------------------------------------------------------
# Seeded-defect mutations: every planted bug must be rejected statically
# with its documented rule.
# ---------------------------------------------------------------------------


def mutate_plan_oob_qubit(plan):
    plan.stages[0].gates[0] = make_gate("x", [plan.num_qubits + 5])


def mutate_plan_locality(plan):
    for stage in plan.stages:
        for gate in stage.gates:
            non_insular = set(gate.non_insular_qubits())
            if non_insular:
                q = sorted(non_insular)[0]
                part = stage.partition
                stage.partition = QubitPartition.from_sets(
                    set(part.local) - {q},
                    set(part.regional),
                    set(part.global_) | {q},
                )
                return
    raise AssertionError("no stage holds a gate with non-insular qubits")


def mutate_plan_gate_dropped(plan):
    del plan.stages[0].gates[0]
    del plan.stages[0].gate_indices[0]


def mutate_plan_gate_duplicated(plan):
    stage = plan.stages[0]
    stage.gates.append(stage.gates[0])
    stage.gate_indices.append(stage.gate_indices[0])


def mutate_plan_dependency_reorder(plan, circuit):
    first, last = plan.stages[0], plan.stages[-1]
    for a, i in enumerate(first.gate_indices):
        for b, j in enumerate(last.gate_indices):
            if i < j and set(circuit.gates[i].qubits) & set(circuit.gates[j].qubits):
                first.gate_indices[a], last.gate_indices[b] = j, i
                return
    raise AssertionError("no dependent gate pair spans the first/last stages")


def mutate_plan_partition_gap(plan):
    stage = plan.stages[0]
    part = stage.partition
    q = part.local[0]
    stage.partition = QubitPartition.from_sets(
        set(part.local) - {q}, set(part.regional), set(part.global_)
    )


def mutate_plan_kernel_gate_dropped(plan):
    for stage in plan.stages:
        if stage.kernels is not None and stage.kernels.kernels:
            kernel = stage.kernels.kernels[0]
            stage.kernels.kernels[0] = dataclasses.replace(
                kernel,
                gates=kernel.gates[1:],
                gate_indices=kernel.gate_indices[1:],
            )
            return
    raise AssertionError("no kernelized stage to mutate")


PLAN_MUTATIONS = [
    ("oob-qubit", mutate_plan_oob_qubit, "plan.qubit-bounds"),
    ("locality", mutate_plan_locality, "plan.locality"),
    ("gate-dropped", mutate_plan_gate_dropped, "plan.coverage"),
    ("gate-duplicated", mutate_plan_gate_duplicated, "plan.coverage"),
    ("dependency-reorder", mutate_plan_dependency_reorder, "plan.dependencies"),
    ("partition-gap", mutate_plan_partition_gap, "plan.partition"),
    ("kernel-gate-dropped", mutate_plan_kernel_gate_dropped, "plan.kernel-consistency"),
]


def mutate_program_op_dropped(program):
    del program.ops[first_gate_op_index(program)]


def mutate_program_op_duplicated(program):
    idx = first_gate_op_index(program)
    program.ops.insert(idx, program.ops[idx])


def mutate_program_op_reordered(program):
    gate_ops = [
        i for i, op in enumerate(program.ops)
        if op.source and op.source[0] in ("gate", "sm", "kernel")
    ]
    a, b = gate_ops[0], gate_ops[-1]
    program.ops[a], program.ops[b] = program.ops[b], program.ops[a]


def mutate_program_mode_swapped(program):
    for op in program.ops:
        if op.mode == "inplace":
            op.mode = "stream"
            return
    raise AssertionError("no in-place op to mutate")


def mutate_program_tmp_alias(program):
    program.ops[first_gate_op_index(program)].tmp_slots = (1, 1)


def mutate_program_oob_qubits(program):
    op = program.ops[first_gate_op_index(program)]
    op.qubits = (program.num_qubits + 4,)


PROGRAM_MUTATIONS = [
    ("op-dropped", mutate_program_op_dropped, "program.stream"),
    ("op-duplicated", mutate_program_op_duplicated, "program.stream"),
    ("op-reordered", mutate_program_op_reordered, "program.stream"),
    ("mode-swapped", mutate_program_mode_swapped, "program.parity"),
    ("tmp-alias", mutate_program_tmp_alias, "program.tmp-alias"),
    ("oob-qubits", mutate_program_oob_qubits, "program.qubit-bounds"),
]

SCHEDULE_MUTATIONS = [
    (
        "shared-shard",
        {0: [0, 1, 2], 1: [2, 3]},
        "schedule.duplicate-assignment",
    ),
    (
        "double-assignment",
        {0: [0, 0, 1], 1: [2, 3]},
        "schedule.duplicate-assignment",
    ),
    ("orphan-shard", {0: [0], 1: [1]}, "schedule.orphan-shard"),
    ("out-of-range", {0: [0, 1, 2, 3, 7]}, "schedule.out-of-range"),
]


def rules_of(report: CheckReport) -> set[str]:
    return {v.rule for v in report.violations}


class TestSeededDefects:
    @pytest.mark.parametrize(
        "name,mutate,rule", PLAN_MUTATIONS, ids=[m[0] for m in PLAN_MUTATIONS]
    )
    def test_plan_mutation_rejected(self, name, mutate, rule):
        circuit = qft(N)
        machine = fresh_machine()
        plan, _ = partition(circuit, machine)
        assert verify_plan(plan, machine=machine, circuit=circuit).ok
        if name == "dependency-reorder":
            mutate(plan, circuit)
        else:
            mutate(plan)
        report = verify_plan(plan, machine=machine, circuit=circuit)
        assert not report.ok
        assert rule in rules_of(report), report.summary()
        with pytest.raises(StaticCheckError) as exc_info:
            report.raise_if_failed()
        assert exc_info.value.report is report
        assert exc_info.value.context["target"] == "plan"

    @pytest.mark.parametrize(
        "name,mutate,rule", PROGRAM_MUTATIONS, ids=[m[0] for m in PROGRAM_MUTATIONS]
    )
    def test_program_mutation_rejected(self, name, mutate, rule):
        program, plan, machine = fresh_program()
        assert verify_program(program, plan=plan, machine=machine).ok
        mutate(program)
        report = verify_program(program, plan=plan, machine=machine)
        assert not report.ok
        assert rule in rules_of(report), report.summary()

    @pytest.mark.parametrize(
        "name,assignment,rule",
        SCHEDULE_MUTATIONS,
        ids=[m[0] for m in SCHEDULE_MUTATIONS],
    )
    def test_schedule_mutation_rejected(self, name, assignment, rule):
        plan, machine = fresh_plan()
        assert verify_schedule(plan, machine, num_workers=2).ok
        report = verify_schedule(plan, machine, assignments=assignment)
        assert not report.ok
        assert rule in rules_of(report), report.summary()

    def test_mode_swap_reports_stale_read(self):
        program, plan, machine = fresh_program()
        mutate_program_mode_swapped(program)
        report = verify_program(program)
        assert "program.parity" in rules_of(report)
        assert "program.uninitialized-read" in rules_of(report)


class TestMisexecutionDemos:
    """A sample of the planted program defects, actually executed: the
    mutated stream produces a state the reference oracle rejects — the
    static rule gates a real misexecution, not a formality."""

    @pytest.mark.parametrize(
        "mutate",
        [mutate_program_op_dropped, mutate_program_op_duplicated],
        ids=["op-dropped", "op-duplicated"],
    )
    def test_stream_mutation_misexecutes(self, mutate):
        program, plan, machine = fresh_program()
        mutate(program)
        assert not verify_program(program, plan=plan, machine=machine).ok
        assert not simulate_reference(qft(N)).allclose(program.run())

    def test_reorder_misexecutes(self):
        reference = simulate_reference(qft(N))
        program, plan, machine = fresh_program()
        gate_ops = [
            i for i, op in enumerate(program.ops)
            if op.source and op.source[0] in ("gate", "sm", "kernel")
        ]
        for a in gate_ops:
            for b in gate_ops:
                if b <= a:
                    continue
                qa = {q for g in (program.ops[a].gates or ()) for q in g.qubits}
                qb = {q for g in (program.ops[b].gates or ()) for q in g.qubits}
                if not qa & qb:
                    continue
                program.ops[a], program.ops[b] = program.ops[b], program.ops[a]
                assert not verify_program(program, plan=plan, machine=machine).ok
                if not reference.allclose(program.run()):
                    return
                program.ops[a], program.ops[b] = program.ops[b], program.ops[a]
        raise AssertionError("no op swap misexecuted")


# ---------------------------------------------------------------------------
# Clean sweep: every library circuit x preset verifies clean end to end.
# ---------------------------------------------------------------------------


class TestCleanSweep:
    @pytest.mark.parametrize("family", sorted(CIRCUIT_FAMILIES))
    @pytest.mark.parametrize("preset", ["fast", "balanced", "quality"])
    def test_library_circuit_verifies_clean(self, family, preset):
        circuit = get_circuit(family, N)
        machine = fresh_machine()
        plan, _report = build_plan(circuit, machine, planner=preset)
        program = compile_plan(plan, machine)
        assert verify_plan(plan, machine=machine, circuit=circuit).ok
        assert verify_program(program, plan=plan, machine=machine).ok
        assert verify_schedule(plan, machine, num_workers=2).ok

    def test_expected_stream_matches_compiler(self):
        plan, machine = fresh_plan()
        program = compile_plan(plan, machine)
        expected = expected_op_stream(plan, machine)
        assert len(expected) == len(program.ops)
        for op, (source, gates) in zip(program.ops, expected):
            assert op.source == source
            if gates is not None:
                assert tuple(op.gates or ()) == gates


# ---------------------------------------------------------------------------
# Differential tests: the race detector's symbolic index arithmetic must
# agree with the executor's real index arithmetic, shard for shard.
# ---------------------------------------------------------------------------


class TestWriteMapDifferential:
    @pytest.mark.parametrize(
        "gate",
        [
            make_gate("x", [N - 1]),
            make_gate("z", [N - 1]),
            make_gate("cx", [0, N - 1]),
            make_gate("cz", [N - 2, N - 1]),
            make_gate("cp", [N - 1, 1], [0.3]),
        ],
        ids=["x", "z", "cx-nonlocal-control", "cz", "cp"],
    )
    def test_write_map_matches_gate_on_shard(self, gate):
        l2p = {q: q for q in range(N)}
        write_map, mixing = shard_write_map([gate], l2p, LOCAL, NUM_SHARDS)
        assert not mixing
        shard = np.zeros(1 << LOCAL, dtype=np.complex128)
        scratch = np.zeros_like(shard)
        for shard_index in range(NUM_SHARDS):
            _, _, out_index = _gate_on_shard(
                shard, scratch, gate, l2p, LOCAL, shard_index
            )
            assert write_map[shard_index] == out_index

    def test_gate_sequence_threads_indices(self):
        # Two anti-diagonal flips on distinct non-local qubits compose.
        gates = [make_gate("x", [N - 1]), make_gate("x", [N - 2])]
        l2p = {q: q for q in range(N)}
        write_map, mixing = shard_write_map(gates, l2p, LOCAL, NUM_SHARDS)
        assert not mixing
        assert write_map == [s ^ 0b11 for s in range(NUM_SHARDS)]

    def test_mixing_gate_is_flagged(self):
        write_map, mixing = shard_write_map(
            [make_gate("h", [N - 1])], {q: q for q in range(N)}, LOCAL, NUM_SHARDS
        )
        assert mixing

    def test_round_robin_is_a_partition(self):
        for workers in (1, 2, 3, 4, 7):
            assignment = round_robin_assignment(NUM_SHARDS, workers)
            shards = sorted(s for lst in assignment.values() for s in lst)
            assert shards == list(range(NUM_SHARDS))


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


class TestReport:
    def test_merge_and_summary(self):
        a = CheckReport(target="plan", checks_run=["locality"])
        b = CheckReport(target="program", checks_run=["parity", "locality"])
        b.add("program.parity", "boom", site="program.parity", op_index=3)
        a.merge(b)
        assert a.checks_run == ["locality", "parity"]
        assert not a.ok
        summary = a.summary()
        assert summary["ok"] is False
        assert "program.parity" in summary["violations"][0]

    def test_violation_str_localizes(self):
        v = Violation("plan.locality", "bad", site="plan.locality", stage=2)
        assert "stage 2" in str(v)
        assert "plan.locality" in str(v)

    def test_raise_if_failed_passes_through_clean(self):
        report = CheckReport(target="plan")
        assert report.raise_if_failed() is report

    def test_static_check_error_is_permanent_value_error(self):
        report = CheckReport(target="plan")
        report.add("plan.coverage", "gate missing", site="plan.coverage")
        with pytest.raises(ValueError):
            report.raise_if_failed()
        with pytest.raises(StaticCheckError) as exc_info:
            report.raise_if_failed()
        assert exc_info.value.context["violations"]


# ---------------------------------------------------------------------------
# Session wiring
# ---------------------------------------------------------------------------


class TestSessionIntegration:
    def test_unknown_check_mode_rejected(self):
        with pytest.raises(ValueError, match="check mode"):
            Session(fresh_machine(), check="paranoid")

    def test_check_off_runs_no_checks(self):
        with Session(fresh_machine(), backend="offload", planner="fast") as s:
            job = s.run(qft(N))
            assert job.results()[0].state.allclose(simulate_reference(qft(N)))
            assert s.stats.static_checks == 0

    @pytest.mark.parametrize("backend", ["incore", "offload", "parallel"])
    @pytest.mark.parametrize("mode", ["plans", "full"])
    def test_checked_run_matches_reference(self, mode, backend):
        with Session(
            fresh_machine(), backend=backend, planner="fast", check=mode
        ) as s:
            job = s.run(qft(N))
            assert job.results()[0].state.allclose(simulate_reference(qft(N)))
            assert s.stats.static_checks >= 1
            assert s.stats.as_dict()["static_checks"] >= 1

    def test_cache_hit_path_is_checked(self):
        with Session(
            fresh_machine(), backend="offload", planner="fast", check="full"
        ) as s:
            s.run(qft(N))
            before = s.stats.static_checks
            s.run(qft(N))  # rebind/cache-hit path
            assert s.stats.static_checks > before

    def test_full_check_composes_with_fault_injection(self):
        # Chaos + static checks together: transient shard-load faults are
        # retried away while every plan/program/schedule verifies clean.
        with Session(
            fresh_machine(),
            backend="offload",
            planner="fast",
            check="full",
            faults="shard_load:transient:2",
        ) as s:
            job = s.run(qft(N))
            assert job.results()[0].state.allclose(simulate_reference(qft(N)))
            assert s.stats.static_checks >= 1

    def test_quality_preset_includes_verify_pass(self):
        circuit = qft(N)
        _, report = build_plan(circuit, fresh_machine(), planner="quality")
        assert report.pipeline[-1] == "verify"
        assert report.pass_metrics["verify"]["violations"] == 0


# ---------------------------------------------------------------------------
# Satellite: typed locality validation on Stage
# ---------------------------------------------------------------------------


class TestStageLocalityAPI:
    def test_validate_locality_raises_typed_error(self):
        plan, machine = fresh_plan()
        mutate_plan_locality(plan)
        for stage_index, stage in enumerate(plan.stages):
            if stage.is_local():
                continue
            with pytest.raises(PlanValidationError) as exc_info:
                stage.validate_locality(stage_index=stage_index)
            assert exc_info.value.context["stage"] == stage_index
            return
        raise AssertionError("mutation left every stage local")

    def test_is_local_predicate_survives(self):
        plan, _ = fresh_plan()
        assert all(stage.is_local() for stage in plan.stages)


# ---------------------------------------------------------------------------
# Project lint gate
# ---------------------------------------------------------------------------


def load_lint_module():
    spec = importlib.util.spec_from_file_location(
        "lint_repro", REPO / "tools" / "lint_repro.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLintRepro:
    @pytest.fixture()
    def lint(self, tmp_path, monkeypatch):
        module = load_lint_module()
        monkeypatch.setattr(module, "REPO", tmp_path)
        monkeypatch.setattr(module, "SRC", tmp_path / "src" / "repro")
        return module

    def write(self, lint, rel, source):
        path = lint.SRC / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return path

    def test_bare_raise_flagged_in_execution_layer(self, lint):
        path = self.write(
            lint, "runtime/bad.py", "def f():\n    raise ValueError('boom')\n"
        )
        findings = lint.check_file(path)
        assert [f.rule for f in findings] == ["bare-raise"]

    def test_pragma_suppresses_config_errors(self, lint):
        path = self.write(
            lint,
            "runtime/ok.py",
            "def f():\n    raise ValueError('boom')  # lint: config-error\n",
        )
        assert lint.check_file(path) == []

    def test_bare_raise_out_of_scope_ignored(self, lint):
        path = self.write(
            lint, "planner/free.py", "def f():\n    raise ValueError('boom')\n"
        )
        assert lint.check_file(path) == []

    def test_hot_alloc_flagged_only_in_closures(self, lint):
        source = (
            "import numpy as np\n"
            "class CompiledProgram:\n"
            "    def run(self):\n"
            "        return np.zeros(4)\n"
            "def build():\n"
            "    def run(state, scratch, ws):\n"
            "        return np.zeros(4)\n"
            "    return run\n"
        )
        path = self.write(lint, "sim/program.py", source)
        findings = lint.check_file(path)
        assert [f.rule for f in findings] == ["hot-alloc"]
        assert findings[0].line == 7

    def test_wall_clock_time_flagged(self, lint):
        path = self.write(
            lint, "cluster/timing.py", "import time\nnow = time.time()\n"
        )
        findings = lint.check_file(path)
        assert [f.rule for f in findings] == ["monotonic-time"]

    def test_baseline_suppresses_known_findings(self, lint, tmp_path):
        self.write(lint, "runtime/bad.py", "def f():\n    raise ValueError('x')\n")
        baseline = tmp_path / "baseline.json"
        assert lint.main(["--baseline", str(baseline), "--write-baseline"]) == 0
        assert lint.main(["--baseline", str(baseline)]) == 0
        self.write(lint, "runtime/worse.py", "def g():\n    raise RuntimeError('y')\n")
        assert lint.main(["--baseline", str(baseline)]) == 1

    def test_repo_tree_is_clean_against_committed_baseline(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_repro.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_committed_baseline_is_empty(self):
        import json

        assert json.loads((REPO / "tools" / "lint_baseline.json").read_text()) == []


# ---------------------------------------------------------------------------
# Optional external gates (CI installs these; the test image may not).
# ---------------------------------------------------------------------------


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_gate_passes():
    result = subprocess.run(
        ["ruff", "check", "src", "tools", "tests"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_gate_passes():
    result = subprocess.run(
        ["mypy", "--config-file", "mypy.ini", "src/repro"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr

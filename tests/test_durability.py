"""Durable execution suite: checkpoint/resume, integrity monitors, the
write-ahead job journal, and whole-process crash recovery.

The contract under test, end to end:

* A run killed after stage *k* resumes from its last completed stage and
  finishes **bit-exact** with an uninterrupted run — per backend, per
  worker count, including relabel-heavy plans.
* Tampered durable artifacts (checkpoints, journal records) are detected,
  evicted and never trusted; a resume against the wrong plan (or the
  wrong *parameters*) is refused.
* A SIGKILLed service restarted on the same journal directory re-admits
  every orphaned job and completes it bit-exact.

The subprocess tests in :class:`TestCrashRecovery` are the ones CI's
``crash-recovery`` job runs under ``pytest-timeout``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import MachineConfig, Session
from repro.circuits.library import qft, vqc
from repro.errors import (
    CacheCorruptionError,
    IntegrityError,
    PlanValidationError,
    SpecParseError,
)
from repro.runtime.checkpoint import (
    CheckpointConfig,
    checkpoint_fingerprint,
    find_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.faults import CRASH_EXIT_CODE
from repro.runtime.integrity import IntegrityConfig, IntegrityMonitor
from repro.runtime.sharding import QubitLayout
from repro.service import JobJournal, SimulationService, replay_journal
from repro.sim.statevector import StateVector

N = 7
LOCAL = 4

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def machine():
    return MachineConfig.for_circuit(N, num_gpus=4, local_qubits=LOCAL)


@pytest.fixture(scope="module")
def plan(machine):
    with Session(machine, backend="offload", planner="fast") as session:
        plan, *_ = session.plan_for(vqc(N, seed=0), machine, "offload")
    return plan


def run_state(machine, circuit, backend, workers=None, **kwargs):
    with Session(machine, backend=backend, planner="fast") as session:
        if workers is not None:
            session.backend_instance(backend).num_workers = workers
        job = session.run(circuit, execute=True, **kwargs)
        return np.asarray(job.results()[0].state.data).copy(), session.stats


# ---------------------------------------------------------------------------
# Checkpoint format
# ---------------------------------------------------------------------------


class TestCheckpointFormat:
    def test_write_load_round_trip(self, tmp_path, plan):
        config = CheckpointConfig(tmp_path, keep=99)
        fingerprint = checkpoint_fingerprint(plan)
        state = np.asarray(
            StateVector.random_state(N, seed=1).data, dtype=np.complex128
        )
        layout = QubitLayout(N)
        path = write_checkpoint(
            config,
            fingerprint=fingerprint,
            num_qubits=N,
            stage_index=3,
            layout=layout.logical_to_physical(),
            state=state,
        )
        ck = load_checkpoint(path)
        assert ck.stage_index == 3
        assert ck.plan_fingerprint == fingerprint
        assert np.array_equal(ck.state, state)
        assert ck.layout_mapping() == layout.logical_to_physical()

    def test_tampered_payload_is_rejected(self, tmp_path, plan):
        config = CheckpointConfig(tmp_path)
        state = np.asarray(StateVector.random_state(N, seed=2).data)
        path = write_checkpoint(
            config,
            fingerprint=checkpoint_fingerprint(plan),
            num_qubits=N,
            stage_index=0,
            layout=QubitLayout(N).logical_to_physical(),
            state=state,
        )
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # flip one state byte
        path.write_bytes(bytes(raw))
        with pytest.raises(CacheCorruptionError):
            load_checkpoint(path)

    def test_truncated_file_is_rejected(self, tmp_path, plan):
        config = CheckpointConfig(tmp_path)
        path = write_checkpoint(
            config,
            fingerprint=checkpoint_fingerprint(plan),
            num_qubits=N,
            stage_index=0,
            layout=QubitLayout(N).logical_to_physical(),
            state=np.asarray(StateVector.random_state(N, seed=3).data),
        )
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(CacheCorruptionError):
            load_checkpoint(path)

    def test_wrong_fingerprint_file_resume_is_refused(self, tmp_path, plan):
        path = write_checkpoint(
            CheckpointConfig(tmp_path),
            fingerprint=checkpoint_fingerprint(plan),
            num_qubits=N,
            stage_index=0,
            layout=QubitLayout(N).logical_to_physical(),
            state=np.asarray(StateVector.random_state(N, seed=4).data),
        )
        with pytest.raises(PlanValidationError):
            find_checkpoint(path, fingerprint="not-this-plan")

    def test_directory_resume_evicts_corrupt_and_uses_survivor(
        self, tmp_path, plan
    ):
        config = CheckpointConfig(tmp_path, keep=99)
        fingerprint = checkpoint_fingerprint(plan)
        paths = [
            write_checkpoint(
                config,
                fingerprint=fingerprint,
                num_qubits=N,
                stage_index=k,
                layout=QubitLayout(N).logical_to_physical(),
                state=np.asarray(StateVector.random_state(N, seed=k).data),
            )
            for k in range(3)
        ]
        # Corrupt the newest: the resume must fall back to stage 1 and
        # delete the corpse.
        paths[2].write_bytes(b"garbage")
        ck = find_checkpoint(tmp_path, fingerprint=fingerprint)
        assert ck is not None and ck.stage_index == 1
        assert not paths[2].exists()

    def test_prune_keeps_newest(self, tmp_path, plan):
        config = CheckpointConfig(tmp_path, keep=2)
        fingerprint = checkpoint_fingerprint(plan)
        for k in range(5):
            write_checkpoint(
                config,
                fingerprint=fingerprint,
                num_qubits=N,
                stage_index=k,
                layout=QubitLayout(N).logical_to_physical(),
                state=np.asarray(StateVector.random_state(N, seed=k).data),
            )
        kept = sorted(p.name for p in tmp_path.glob("*.ckpt"))
        assert kept == ["run-stage0003.ckpt", "run-stage0004.ckpt"]

    def test_fingerprint_is_parameter_sensitive(self, machine):
        # The plan cache's fingerprint is deliberately structural; the
        # checkpoint fingerprint must NOT be — resuming a parameter-sweep
        # sibling's state would silently compute garbage.
        with Session(machine, backend="offload", planner="fast") as session:
            plan_a, *_ = session.plan_for(vqc(N, seed=0), machine, "offload")
            plan_b, *_ = session.plan_for(vqc(N, seed=1), machine, "offload")
        assert checkpoint_fingerprint(plan_a) != checkpoint_fingerprint(plan_b)


# ---------------------------------------------------------------------------
# Resume correctness
# ---------------------------------------------------------------------------

RESUME_CONFIGS = [
    ("offload", None),
    ("parallel", 1),
    ("parallel", 2),
    ("parallel", 4),
]


class TestResume:
    @pytest.mark.parametrize(
        "backend,workers",
        RESUME_CONFIGS,
        ids=[f"{b}-w{w}" if w else b for b, w in RESUME_CONFIGS],
    )
    @pytest.mark.parametrize("circuit_factory", [vqc, qft], ids=["vqc", "qft"])
    def test_resume_every_stage_bit_exact(
        self, machine, tmp_path, backend, workers, circuit_factory
    ):
        # qft plans relabel-heavily (its stages permute the layout far
        # more than vqc's): resume must restore layout as well as state.
        circuit = (
            circuit_factory(N, seed=0)
            if circuit_factory is vqc
            else circuit_factory(N)
        )
        config = CheckpointConfig(tmp_path, keep=99)
        reference, stats = run_state(
            machine, circuit, backend, workers, checkpoint=config
        )
        snapshots = sorted(tmp_path.glob("*.ckpt"))
        assert len(snapshots) == stats.checkpoints_written >= 1
        for snapshot in snapshots:
            resumed, rstats = run_state(
                machine, circuit, backend, workers, resume_from=snapshot
            )
            assert np.array_equal(resumed, reference), (
                f"resume from {snapshot.name} not bit-exact"
            )
            assert rstats.checkpoints_written == 0

    def test_resume_directory_picks_newest(self, machine, tmp_path):
        circuit = vqc(N, seed=0)
        config = CheckpointConfig(tmp_path, keep=99)
        reference, stats = run_state(
            machine, circuit, "parallel", 2, checkpoint=config
        )
        resumed, _ = run_state(
            machine, circuit, "parallel", 2, resume_from=tmp_path
        )
        assert np.array_equal(resumed, reference)

    def test_resume_ignores_other_plans_checkpoints(self, machine, tmp_path):
        # A directory holding only another circuit's snapshots: the run
        # silently starts from scratch (fingerprint mismatch is skipped in
        # directory mode) and is still correct.
        config = CheckpointConfig(tmp_path, keep=99)
        run_state(machine, vqc(N, seed=0), "offload", checkpoint=config)
        reference, _ = run_state(machine, vqc(N, seed=1), "offload")
        resumed, _ = run_state(
            machine, vqc(N, seed=1), "offload", resume_from=tmp_path
        )
        assert np.array_equal(resumed, reference)

    def test_session_surfaces_durability_stats(self, machine, tmp_path):
        with Session(machine, backend="parallel", planner="fast", monitor=True) as s:
            job = s.run(vqc(N, seed=0), execute=True, checkpoint=str(tmp_path))
            job.results()
            assert s.stats.checkpoints_written >= 1
            assert s.stats.integrity_checks >= 1
            assert s.stats.max_norm_drift < 1e-9
            assert s.stats.exec_lock_acquisitions >= 1
            d = s.stats.as_dict()
            for key in (
                "checkpoints_written",
                "checkpoint_errors",
                "integrity_checks",
                "max_norm_drift",
                "exec_lock_acquisitions",
                "exec_lock_wait_seconds",
            ):
                assert key in d


# ---------------------------------------------------------------------------
# Integrity monitors
# ---------------------------------------------------------------------------


class TestIntegrityMonitor:
    def test_clean_run_records_and_passes(self):
        monitor = IntegrityMonitor(IntegrityConfig())
        state = np.asarray(StateVector.random_state(N, seed=0).data)
        monitor.stage_complete(state, 0)
        monitor.stage_begin(state, 1)
        monitor.stage_complete(state, 1)
        assert monitor.stages_checked == 2
        assert monitor.max_norm_drift == 0.0

    def test_norm_drift_raises(self):
        monitor = IntegrityMonitor(IntegrityConfig(norm_tolerance=1e-6))
        state = np.asarray(StateVector.random_state(N, seed=0).data).copy()
        monitor.stage_complete(state, 0)
        state *= 1.5  # silent amplitude corruption
        with pytest.raises(IntegrityError):
            monitor.stage_complete(state, 1)

    def test_checksum_mutation_between_stages_raises(self):
        monitor = IntegrityMonitor(IntegrityConfig())
        state = np.asarray(StateVector.random_state(N, seed=0).data).copy()
        monitor.stage_complete(state, 0)
        state[3] = -state[3]  # norm-preserving bit flip
        with pytest.raises(IntegrityError):
            monitor.stage_begin(state, 1)

    def test_coerce(self):
        assert IntegrityMonitor.coerce(None) is None
        assert IntegrityMonitor.coerce(False) is None
        assert isinstance(IntegrityMonitor.coerce(True), IntegrityMonitor)
        monitor = IntegrityMonitor(IntegrityConfig())
        assert IntegrityMonitor.coerce(monitor) is monitor
        assert isinstance(
            IntegrityMonitor.coerce(IntegrityConfig(norm_tolerance=1.0)),
            IntegrityMonitor,
        )


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        journal.append("submitted", 0, tenant="a", durable=False)
        journal.append("running", 0, tenant="a")
        journal.append("completed", 0, tenant="a", wall_seconds=0.5)
        journal.append("submitted", 1, tenant="b", durable=False)
        journal.close()
        replay = replay_journal(journal.path)
        assert replay.records_read == 4
        assert replay.last_job_id == 1
        assert replay.jobs[0]["type"] == "completed"
        assert [r["job"] for r in replay.orphans()] == [1]

    def test_sequence_continues_across_restart(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        journal.append("submitted", 0, tenant="a", durable=False)
        journal.close()
        journal2 = JobJournal(tmp_path, fsync=False)
        replay = journal2.replay()
        assert replay.last_seq == 0
        journal2.append("running", 0, tenant="a")
        journal2.close()
        assert [r["seq"] for r in map(json.loads, journal2.path.read_text().splitlines())] == [0, 1]

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        journal.append("submitted", 0, tenant="a", durable=False)
        journal.append("running", 0, tenant="a")
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'{"v":1,"seq":2,"type":"comp')  # crash mid-append
        replay = replay_journal(journal.path)
        assert replay.records_read == 2
        assert replay.torn_records == 1
        assert replay.corrupt_records == 0
        assert replay.jobs[0]["type"] == "running"

    def test_mid_file_tamper_is_counted_and_never_trusted(self, tmp_path):
        journal = JobJournal(tmp_path, fsync=False)
        journal.append("submitted", 0, tenant="a", durable=False)
        journal.append("completed", 0, tenant="a")
        journal.append("submitted", 1, tenant="a", durable=False)
        journal.close()
        lines = journal.path.read_bytes().splitlines(keepends=True)
        # Tamper with the completion record: job 0 must replay as an
        # orphan (its completion is no longer trustworthy).
        lines[1] = lines[1].replace(b'"completed"', b'"cancelled"')
        journal.path.write_bytes(b"".join(lines))
        replay = replay_journal(journal.path)
        assert replay.corrupt_records == 1
        assert replay.jobs[0]["type"] == "submitted"
        with pytest.raises(IntegrityError):
            replay_journal(journal.path, strict=True)


# ---------------------------------------------------------------------------
# Service-level recovery (in-process)
# ---------------------------------------------------------------------------


class TestServiceRecovery:
    def test_orphans_are_readmitted_and_complete_bit_exact(
        self, machine, tmp_path
    ):
        from repro.circuits import to_qasm

        # Forge a crashed service's journal: one finished job, one orphan.
        journal = JobJournal(tmp_path, fsync=False)
        circuit = vqc(N, seed=0)
        journal.append(
            "submitted", 0, tenant="acme", priority=0, weight=1.0,
            durable=True, circuits=[to_qasm(circuit)],
            run_kwargs={"backend": "parallel"},
        )
        journal.append("running", 0, tenant="acme")
        journal.append(
            "submitted", 1, tenant="acme", priority=0, weight=1.0,
            durable=False,
        )
        journal.close()

        reference, _ = run_state(machine, circuit, "parallel")
        service = SimulationService(
            machine, journal_dir=tmp_path, journal_fsync=False, planner="fast"
        )
        try:
            assert service.recovered == 1
            assert service.abandoned == 1
            job = service.recovered_jobs[0]
            state = np.asarray(job.results()[0].state.data)
            assert np.array_equal(state, reference)
            stats = service.stats()
            assert stats["journal"]["recovered"] == 1
            assert stats["journal"]["abandoned"] == 1
            # New submissions continue the journal's id sequence.
            service.submit(vqc(N, seed=1), backend="parallel").results()
        finally:
            service.close()
        replay = replay_journal(tmp_path / "journal.jsonl")
        assert replay.jobs[0]["type"] == "completed"
        assert replay.jobs[2]["type"] == "completed"

    def test_watchdog_flags_stuck_job(self, machine):
        service = SimulationService(
            machine,
            planner="fast",
            watchdog_interval=0.02,
            stuck_grace_seconds=0.0,
            stuck_slack=0.0,
        )
        try:
            # Forge an in-flight entry the scheduler will never clear.
            with service._cond:
                service._running_since[999] = (time.monotonic() - 10.0, None, "slow")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with service._cond:
                    if service.stuck_jobs:
                        break
                time.sleep(0.02)
            assert service.stuck_jobs == 1
            assert service.tenant_stats("slow").stuck_jobs == 1
            assert service.stats()["watchdog"]["stuck_jobs"] == 1
            with service._cond:
                del service._running_since[999]
        finally:
            service.close()

    def test_malformed_spec_fails_only_its_job(self, machine, tmp_path):
        spec_file = tmp_path / "batch.txt"
        spec_file.write_text(
            "vqc:7\n"
            "# comment\n"
            "definitely_not_a_family:3\n"
            "qft:7\n"
        )
        service = SimulationService(machine, planner="fast")
        try:
            jobs = service.submit_file(spec_file, backend="parallel")
            assert len(jobs) == 3
            with pytest.raises(SpecParseError):
                jobs[1].results()
            assert jobs[0].results()[0].state is not None
            assert jobs[2].results()[0].state is not None
            assert service.stats()["rejected"] == 1
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Whole-process crash recovery (subprocess; CI's crash-recovery job)
# ---------------------------------------------------------------------------

CRASH_CHILD = """
import sys
from repro import MachineConfig, Session
from repro.circuits.library import vqc
machine = MachineConfig.for_circuit({n}, num_gpus=4, local_qubits={local})
with Session(machine, backend={backend!r}, planner="fast") as session:
    session.run(vqc({n}, seed=0), execute=True, checkpoint={ckpt!r}).results()
"""

SERVICE_CHILD = """
from repro import MachineConfig
from repro.circuits.library import vqc
from repro.service import SimulationService
machine = MachineConfig.for_circuit({n}, num_gpus=4, local_qubits={local})
service = SimulationService(
    machine, journal_dir={journal!r}, journal_fsync=False, planner="fast"
)
for seed in range(3):
    service.submit(vqc({n}, seed=seed), backend="parallel", tenant="t%d" % seed)
service.close(drain=True)
"""


def spawn(code: str, **env):
    return subprocess.Popen(
        [sys.executable, "-c", code],
        env={**os.environ, "PYTHONPATH": REPO_SRC, **env},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


class TestCrashRecovery:
    @pytest.mark.parametrize("backend,workers", [("offload", None), ("parallel", 2)])
    def test_killed_after_stage_resumes_bit_exact(
        self, machine, tmp_path, backend, workers
    ):
        proc = spawn(
            CRASH_CHILD.format(
                n=N, local=LOCAL, backend=backend, ckpt=str(tmp_path)
            ),
            REPRO_CRASH="after_stage:3",
        )
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == CRASH_EXIT_CODE, stderr.decode()[-500:]
        snapshots = sorted(tmp_path.glob("*.ckpt"))
        assert snapshots, "crashed run left no checkpoints"

        reference, _ = run_state(machine, vqc(N, seed=0), backend, workers)
        resumed, stats = run_state(
            machine, vqc(N, seed=0), backend, workers, resume_from=tmp_path
        )
        assert np.array_equal(resumed, reference)
        assert stats.checkpoints_written == 0  # resume-only run

    def test_sigkilled_service_recovers_every_job_bit_exact(
        self, machine, tmp_path
    ):
        journal_path = tmp_path / "journal.jsonl"
        proc = spawn(SERVICE_CHILD.format(n=N, local=LOCAL, journal=str(tmp_path)))
        try:
            # Wait until the journal shows work in flight, then pull the rug.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal_path.exists() and b'"running"' in journal_path.read_bytes():
                    break
                time.sleep(0.01)
            else:
                pytest.fail("service child never started running a job")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        replay = replay_journal(journal_path)
        orphans = replay.orphans()
        assert orphans, "SIGKILL landed after all jobs finished; nothing to test"

        service = SimulationService(
            machine, journal_dir=tmp_path, journal_fsync=False, planner="fast"
        )
        try:
            assert service.recovered == len(orphans)
            assert service.abandoned == 0
            for payload in orphans:
                jid = payload["job"]
                seed = int(payload["tenant"].removeprefix("t"))
                reference, _ = run_state(machine, vqc(N, seed=seed), "parallel")
                state = np.asarray(
                    service.recovered_jobs[jid].results()[0].state.data
                )
                assert np.array_equal(state, reference), (
                    f"recovered job {jid} not bit-exact"
                )
        finally:
            service.close()
        final = replay_journal(journal_path)
        assert all(
            record["type"] == "completed"
            for jid, record in final.jobs.items()
            if jid in {p["job"] for p in orphans}
        )

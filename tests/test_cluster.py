"""Tests for the cluster performance model (machine, cost model, communication)."""

import pytest

from repro.circuits import make_gate
from repro.cluster import (
    AMPLITUDE_BYTES,
    CommModel,
    CostModel,
    MachineConfig,
    transition_time,
    transition_traffic,
)


class TestMachineConfig:
    def test_derived_counts(self):
        m = MachineConfig(local_qubits=28, regional_qubits=2, global_qubits=3)
        assert m.num_nodes == 8
        assert m.num_gpus == 32
        assert m.shard_amplitudes == 2**28
        assert m.shard_bytes == 2**28 * AMPLITUDE_BYTES
        assert m.total_qubits() == 33

    def test_shard_slots_vs_physical_gpus(self):
        # num_gpus (historical name) counts 2^(R+G) shard *slots*;
        # physical_gpus counts real devices.  They agree only while every
        # shard has a GPU of its own.
        m = MachineConfig(local_qubits=28, regional_qubits=2, global_qubits=3)
        assert m.num_shards == 32
        assert m.num_gpus == m.num_shards
        assert m.physical_gpus == m.num_nodes * m.gpus_per_node == 32

    def test_overflow_qubits_add_shards_not_gpus(self):
        # for_circuit folds qubits beyond GPU capacity into regional_qubits:
        # those shards live in DRAM, so the shard count grows but the
        # physical GPU count must not.
        m = MachineConfig.for_circuit(14, num_gpus=4, local_qubits=8)
        assert m.num_shards == 64
        assert m.num_gpus == 64  # shard slots, not devices
        assert m.physical_gpus == 4

    def test_for_circuit_single_gpu(self):
        m = MachineConfig.for_circuit(10, num_gpus=1, local_qubits=10)
        assert m.local_qubits == 10
        assert m.regional_qubits == 0
        assert m.global_qubits == 0

    def test_for_circuit_multi_node(self):
        m = MachineConfig.for_circuit(36, num_gpus=256, local_qubits=28)
        assert m.regional_qubits == 2  # 4 GPUs per node
        assert m.global_qubits == 6  # 64 nodes
        assert m.total_qubits() == 36

    def test_for_circuit_extra_qubits_become_regional(self):
        # 32-qubit circuit on a single GPU with 28 local qubits: 4 regional.
        m = MachineConfig.for_circuit(32, num_gpus=1, local_qubits=28)
        assert m.regional_qubits == 4
        assert m.global_qubits == 0

    def test_for_circuit_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            MachineConfig.for_circuit(30, num_gpus=3)

    def test_for_circuit_rejects_too_many_local(self):
        with pytest.raises(ValueError):
            MachineConfig.for_circuit(10, num_gpus=4, local_qubits=10)

    def test_validate(self):
        m = MachineConfig(local_qubits=6, regional_qubits=2, global_qubits=2)
        m.validate(10)
        with pytest.raises(ValueError):
            m.validate(11)

    def test_offload_detection(self):
        # 40 GB per GPU holds up to 2^31 amplitudes; a 33-qubit state on one
        # node (4 GPUs) fits, a 36-qubit state does not.
        m = MachineConfig(local_qubits=31, regional_qubits=2, global_qubits=0)
        assert not m.requires_offload(33)
        m_large = MachineConfig(local_qubits=28, regional_qubits=8, global_qubits=0)
        assert m_large.requires_offload(36)

    def test_dram_capacity_validation(self):
        tiny = MachineConfig(
            local_qubits=30, regional_qubits=10, global_qubits=0,
            dram_bytes_per_node=2**20,
        )
        with pytest.raises(ValueError, match="DRAM"):
            tiny.validate(40)


class TestCostModel:
    def test_fusion_cost_monotone_beyond_plateau(self):
        cm = CostModel()
        costs = [cm.fusion_cost(k) for k in range(1, 8)]
        assert costs == sorted(costs)

    def test_fusion_cost_extrapolates(self):
        cm = CostModel(max_fusion_qubits=12)
        assert cm.fusion_cost(11) > cm.fusion_cost(10)

    def test_fusion_cost_infinite_beyond_limit(self):
        cm = CostModel()
        assert cm.fusion_cost(cm.max_fusion_qubits + 1) == float("inf")

    def test_best_fusion_width_is_five(self):
        # The paper's greedy baseline packs up to 5 qubits because that is
        # the most cost-efficient width under the measured cost function.
        assert CostModel().best_fusion_width() == 5

    def test_gate_cost_categories(self):
        cm = CostModel()
        diag = make_gate("rz", [0], [0.5])
        ctrl = make_gate("cx", [0, 1])
        dense = make_gate("h", [0])
        assert cm.gate_cost(diag) < cm.gate_cost(ctrl) <= cm.gate_cost(dense)

    def test_shm_cost_includes_load(self):
        cm = CostModel()
        gates = [make_gate("h", [0])]
        assert cm.shm_cost(gates, 1) == pytest.approx(
            cm.shm_load_cost + cm.gate_cost(gates[0])
        )
        assert cm.shm_cost(gates, cm.max_shm_qubits + 1) == float("inf")

    def test_kernel_cost_picks_cheaper_strategy(self):
        cm = CostModel()
        # Many gates on few qubits: fusion wins.
        few_qubit_gates = [make_gate("h", [0]) for _ in range(100)]
        assert cm.kernel_cost(few_qubit_gates, [0]).kernel_type == "fusion"
        # A couple of gates on many qubits: shared-memory wins.
        wide_gates = [make_gate("cx", [i, i + 1]) for i in range(0, 8, 2)]
        kc = cm.kernel_cost(wide_gates)
        assert kc.kernel_type == "shm"

    def test_units_to_seconds_scales_with_shard_size(self):
        cm = CostModel()
        assert cm.units_to_seconds(1.0, 28) == pytest.approx(cm.seconds_per_unit)
        assert cm.units_to_seconds(1.0, 27) == pytest.approx(cm.seconds_per_unit / 2)

    def test_cost_shorthand(self):
        cm = CostModel()
        gates = [make_gate("h", [0]), make_gate("cx", [1, 0])]
        assert cm.cost(gates) == cm.kernel_cost(gates).cost


class TestCommunicationModel:
    def _machine(self) -> MachineConfig:
        return MachineConfig(local_qubits=6, regional_qubits=2, global_qubits=2)

    def test_noop_transition(self):
        m = self._machine()
        t = transition_traffic({0, 1}, {8, 9}, {0, 1}, {8, 9}, 10, m)
        assert t.is_noop
        assert transition_time(t, m) == 0.0

    def test_local_change_triggers_intra_node_traffic(self):
        m = self._machine()
        t = transition_traffic({0, 1, 2}, set(), {0, 1, 3}, set(), 10, m)
        assert t.changed_local_qubits == 1
        assert t.intra_node_bytes > 0
        assert t.inter_node_bytes == 0

    def test_global_change_triggers_inter_node_traffic(self):
        m = self._machine()
        t = transition_traffic({0, 1}, {8}, {0, 1}, {9}, 10, m)
        assert t.changed_global_qubits == 1
        assert t.inter_node_bytes > 0

    def test_more_changed_qubits_more_traffic(self):
        m = self._machine()
        one = transition_traffic({0, 1, 2, 3}, set(), {0, 1, 2, 9}, set(), 10, m)
        two = transition_traffic({0, 1, 2, 3}, set(), {0, 1, 8, 9}, set(), 10, m)
        assert two.total_bytes > one.total_bytes

    def test_inter_node_slower_than_intra_node(self):
        m = self._machine()
        intra = transition_traffic({0}, set(), {1}, set(), 10, m)
        inter = transition_traffic({0}, {8}, {1}, {9}, 10, m)
        assert transition_time(inter, m) > transition_time(intra, m)

    def test_comm_model_accumulates(self):
        m = self._machine()
        cm = CommModel(m, 10)
        s1 = cm.record_transition({0, 1}, set(), {0, 2}, set())
        s2 = cm.record_transition({0, 2}, set(), {0, 2}, set())  # no-op
        assert s1 > 0
        assert s2 == 0
        assert cm.num_transitions == 1
        summary = cm.summary()
        assert summary["communication_time"] == pytest.approx(s1)
        assert summary["intra_node_bytes"] > 0

"""Tests for the runtime: sharding, staged execution, DRAM offload, timing model."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.library import qft, random_circuit
from repro.cluster import CostModel, MachineConfig
from repro.core import KernelizeConfig, partition
from repro.core.plan import ExecutionPlan, QubitPartition, Stage
from repro.runtime import (
    QubitLayout,
    execute_plan,
    execute_plan_offloaded,
    model_simulation_time,
    permute_state,
    shard_slices,
)
from repro.sim import StateVector, simulate_reference


class TestQubitLayout:
    def test_identity_layout(self):
        layout = QubitLayout(4)
        assert layout.is_identity()
        assert layout.physical(2) == 2
        assert layout.logical(3) == 3

    def test_update_and_roundtrip(self):
        layout = QubitLayout(3)
        layout.update({0: 2, 1: 0, 2: 1})
        assert layout.physical(0) == 2
        assert layout.logical(2) == 0
        assert layout.physical_to_logical() == {2: 0, 0: 1, 1: 2}

    def test_invalid_mapping_rejected(self):
        layout = QubitLayout(3)
        with pytest.raises(ValueError):
            layout.update({0: 0, 1: 1})
        with pytest.raises(ValueError):
            layout.update({0: 0, 1: 1, 2: 1})

    def test_copy_and_equality(self):
        a = QubitLayout(3)
        b = a.copy()
        b.update({0: 1, 1: 0, 2: 2})
        assert a != b
        assert a == QubitLayout(3)


class TestPermuteState:
    def test_identity_permutation_returns_same_values(self):
        state = StateVector.random_state(4, seed=0).data
        layout = QubitLayout(4)
        out = permute_state(state, layout, layout.logical_to_physical())
        assert np.allclose(out, state)

    def test_swap_two_qubits(self):
        # |q1 q0> = |01> (qubit0=1).  Swapping the physical positions of
        # qubits 0 and 1 moves the amplitude from index 1 to index 2.
        state = np.zeros(4, dtype=complex)
        state[1] = 1.0
        layout = QubitLayout(2)
        out = permute_state(state, layout, {0: 1, 1: 0})
        assert out[2] == 1.0

    def test_permutation_is_reversible(self):
        state = StateVector.random_state(5, seed=1).data
        layout = QubitLayout(5)
        target = {0: 3, 1: 0, 2: 4, 3: 1, 4: 2}
        forward = permute_state(state, layout, target)
        layout2 = QubitLayout(5, target)
        back = permute_state(forward, layout2, {q: q for q in range(5)})
        assert np.allclose(back, state)

    def test_permutation_preserves_norm(self):
        state = StateVector.random_state(6, seed=2).data
        out = permute_state(state, QubitLayout(6), {q: (q + 1) % 6 for q in range(6)})
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            permute_state(np.zeros(7), QubitLayout(3), {0: 0, 1: 1, 2: 2})


class TestShardSlices:
    def test_shapes_and_views(self):
        state = np.arange(16, dtype=complex)
        shards = shard_slices(state, 2)
        assert len(shards) == 4
        assert all(s.size == 4 for s in shards)
        shards[1][0] = -1
        assert state[4] == -1  # views share memory

    def test_invalid_shard_size(self):
        with pytest.raises(ValueError):
            shard_slices(np.zeros(10), 2)


class TestExecutePlan:
    def test_matches_reference_for_all_families(self, family_circuit_10, small_machine):
        circuit = family_circuit_10
        plan, _ = partition(circuit, small_machine,
                            kernelize_config=KernelizeConfig(pruning_threshold=16))
        plan.validate(circuit)
        out, trace = execute_plan(plan, machine=small_machine)
        assert simulate_reference(circuit).allclose(out)
        assert trace.num_stages == plan.num_stages
        assert trace.num_kernels == plan.num_kernels

    def test_custom_initial_state(self, small_machine):
        circuit = qft(10)
        plan, _ = partition(circuit, small_machine)
        init = StateVector.random_state(10, seed=3)
        out, _ = execute_plan(plan, initial_state=init, machine=small_machine)
        assert simulate_reference(circuit, init).allclose(out)

    def test_initial_state_size_mismatch(self, small_machine):
        plan, _ = partition(qft(10), small_machine)
        with pytest.raises(ValueError):
            execute_plan(plan, initial_state=StateVector.zero_state(9))

    def test_locality_violation_detected(self):
        # Hand-build a broken plan: an h gate whose qubit is mapped globally.
        circuit = Circuit(4).h(3)
        partition_bad = QubitPartition.from_sets({0, 1}, {2}, {3})
        plan = ExecutionPlan(
            num_qubits=4,
            stages=[Stage(gates=list(circuit.gates), partition=partition_bad,
                          gate_indices=[0])],
        )
        with pytest.raises(ValueError, match="staging invariant"):
            execute_plan(plan)
        # With the check disabled it still executes correctly.
        out, _ = execute_plan(plan, check_locality=False)
        assert simulate_reference(circuit).allclose(out)

    def test_unkernelized_stage_executes_gates_directly(self):
        circuit = Circuit(3).h(0).cx(0, 1).cz(1, 2)
        stage = Stage(
            gates=list(circuit.gates),
            partition=QubitPartition.from_sets({0, 1, 2}, set(), set()),
            gate_indices=[0, 1, 2],
        )
        plan = ExecutionPlan(num_qubits=3, stages=[stage])
        out, trace = execute_plan(plan)
        assert simulate_reference(circuit).allclose(out)
        assert trace.num_kernels == 0


class TestOffloadExecutor:
    def test_matches_reference_for_all_families(self, family_circuit_10, small_machine):
        circuit = family_circuit_10
        plan, _ = partition(circuit, small_machine,
                            kernelize_config=KernelizeConfig(pruning_threshold=16))
        out, stats = execute_plan_offloaded(plan, small_machine)
        assert simulate_reference(circuit).allclose(out)
        assert stats.num_stages == plan.num_stages
        assert stats.num_shards == 1 << (10 - small_machine.local_qubits)

    def test_one_load_per_shard_per_stage_for_qft(self, small_machine):
        # The property behind the QDAO comparison: within a stage every shard
        # is loaded exactly once (qft has no cross-shard segments).
        circuit = qft(10)
        plan, _ = partition(circuit, small_machine)
        _, stats = execute_plan_offloaded(plan, small_machine)
        assert stats.per_stage_loads == [stats.num_shards] * plan.num_stages
        expected_bytes = plan.num_stages * (1 << 10) * 16 * 2
        assert stats.bytes_transferred == expected_bytes

    def test_offload_with_custom_initial_state(self, small_machine):
        circuit = qft(10)
        plan, _ = partition(circuit, small_machine)
        init = StateVector.random_state(10, seed=5)
        out, _ = execute_plan_offloaded(plan, small_machine, initial_state=init)
        assert simulate_reference(circuit, init).allclose(out)

    def test_offload_size_mismatch(self, small_machine):
        plan, _ = partition(qft(10), small_machine)
        with pytest.raises(ValueError):
            execute_plan_offloaded(plan, small_machine, initial_state=StateVector.zero_state(8))


class TestTimingModel:
    def _plan(self, circuit, machine):
        plan, _ = partition(circuit, machine,
                            kernelize_config=KernelizeConfig(pruning_threshold=16))
        return plan

    def test_breakdown_sums_to_total(self, small_machine):
        plan = self._plan(qft(10), small_machine)
        tb = model_simulation_time(plan, small_machine)
        assert tb.total_seconds == pytest.approx(
            tb.computation_seconds + tb.communication_seconds + tb.offload_seconds
        )
        assert 0.0 <= tb.communication_fraction <= 1.0
        assert tb.num_stages == plan.num_stages
        assert len(tb.per_stage_compute) == plan.num_stages
        assert len(tb.per_transition_comm) == plan.num_stages - 1

    def test_single_stage_has_no_communication(self):
        machine = MachineConfig.for_circuit(8, num_gpus=1, local_qubits=8)
        plan = self._plan(qft(8), machine)
        tb = model_simulation_time(plan, machine)
        assert plan.num_stages == 1
        assert tb.communication_seconds == 0.0

    def test_inter_node_machines_pay_more_communication(self):
        circuit = qft(10)
        intra = MachineConfig(local_qubits=8, regional_qubits=2, global_qubits=0)
        inter = MachineConfig(local_qubits=8, regional_qubits=0, global_qubits=2,
                              gpus_per_node=1)
        plan_intra = self._plan(circuit, intra)
        plan_inter = self._plan(circuit, inter)
        t_intra = model_simulation_time(plan_intra, intra)
        t_inter = model_simulation_time(plan_inter, inter)
        if plan_intra.num_stages > 1 and plan_inter.num_stages > 1:
            assert t_inter.communication_seconds > t_intra.communication_seconds

    def test_overhead_factors_scale_time(self, small_machine):
        plan = self._plan(qft(10), small_machine)
        base = model_simulation_time(plan, small_machine)
        slow = model_simulation_time(plan, small_machine,
                                     kernel_overhead_factor=2.0,
                                     comm_overhead_factor=3.0)
        assert slow.computation_seconds == pytest.approx(base.computation_seconds * 2.0)
        assert slow.communication_seconds == pytest.approx(base.communication_seconds * 3.0)

    def test_offload_adds_pcie_time(self):
        # More qubits than the GPUs can hold: shards swap through DRAM.
        machine = MachineConfig(local_qubits=8, regional_qubits=4, global_qubits=0,
                                gpu_memory_bytes=(1 << 8) * 16 * 2)
        plan = self._plan(qft(12), machine)
        tb = model_simulation_time(plan, machine)
        assert tb.shard_passes_per_stage > 1
        assert tb.offload_seconds > 0

    def test_machine_mismatch_rejected(self, small_machine):
        plan = self._plan(qft(10), small_machine)
        other = MachineConfig.for_circuit(12, num_gpus=4, local_qubits=8)
        with pytest.raises(ValueError):
            model_simulation_time(plan, other)

"""Tests for compiled plan programs (`sim/program.py` + `runtime/compile.py`).

The contract under test: lowering a plan to a :class:`CompiledProgram` and
executing the op stream is **bit-exact** with the gate-at-a-time
interpreter (`execute_plan(compiled=False)`) on staged and hand-built
plans; batched ``(B, 2^n)`` execution matches B looped single-state runs
to tight tolerance (the B-wide gemm fold can change BLAS summation order,
so exact bit equality is not guaranteed there); rebound (plan-cache-hit)
programs execute the new circuit's angles while reusing every
constant-structure op; and the offload/parallel runtimes, now replaying
compiled segment ops, keep their bit-exactness guarantees.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.library import ghz, qft, random_circuit, vqc
from repro.cluster import MachineConfig
from repro.core import KernelizeConfig, partition
from repro.core.plan import ExecutionPlan, QubitPartition, Stage
from repro.runtime import (
    ParallelRuntime,
    compile_plan,
    compiled_program_for,
    execute_plan,
    execute_plan_offloaded,
)
from repro.runtime.offload import compile_segment_ops, run_segment_ops, run_groups_on_shard, split_stage_segments
from repro.sim import StateVector, simulate_reference
from repro.sim.fusion import configure_fusion_cache, fusion_cache_stats
from repro.session import Session
from repro.session.cache import rebind_plan

FAST_CONFIG = KernelizeConfig(pruning_threshold=16)


def _staged_plan(circuit, machine):
    plan, _ = partition(circuit, machine, kernelize_config=FAST_CONFIG)
    return plan


def _machine(n, local_offset=2):
    return MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - local_offset)


CIRCUITS = [
    ("qft-10", lambda: qft(10)),
    ("vqc-10", lambda: vqc(10, seed=3)),
    ("ghz-9", lambda: ghz(9)),
    ("random-8", lambda: random_circuit(8, 80, seed=11)),
]


class TestCompiledVsInterpreted:
    @pytest.mark.parametrize("name,factory", CIRCUITS)
    def test_bit_exact_on_staged_plans(self, name, factory):
        circuit = factory()
        machine = _machine(circuit.num_qubits)
        plan = _staged_plan(circuit, machine)
        compiled_state, compiled_trace = execute_plan(plan, machine=machine)
        interp_state, interp_trace = execute_plan(
            plan, machine=machine, compiled=False
        )
        assert np.array_equal(compiled_state.data, interp_state.data)
        assert simulate_reference(circuit).allclose(compiled_state)
        # The compile-time trace metadata matches what the interpreter
        # counts while executing.
        assert compiled_trace.num_stages == interp_trace.num_stages
        assert compiled_trace.num_kernels == interp_trace.num_kernels
        assert compiled_trace.num_permutations == interp_trace.num_permutations
        assert compiled_trace.kernels_per_stage == interp_trace.kernels_per_stage

    @pytest.mark.parametrize("name,factory", CIRCUITS)
    def test_bit_exact_from_random_initial_state(self, name, factory):
        circuit = factory()
        n = circuit.num_qubits
        machine = _machine(n)
        plan = _staged_plan(circuit, machine)
        init = StateVector.random_state(n, seed=7)
        a, _ = execute_plan(plan, initial_state=init, machine=machine)
        b, _ = execute_plan(plan, initial_state=init, machine=machine, compiled=False)
        assert np.array_equal(a.data, b.data)

    def test_unkernelized_stage_plan(self):
        """Plans whose stages carry raw gates (kernels=None) compile too."""
        circuit = Circuit(5).h(0).cx(0, 1).rz(0.4, 1).cx(1, 2).h(3).cp(0.3, 3, 4)
        stage = Stage(
            gates=list(circuit.gates),
            partition=QubitPartition.from_sets({0, 1, 2, 3, 4}, set(), set()),
            gate_indices=list(range(len(circuit.gates))),
        )
        plan = ExecutionPlan(num_qubits=5, stages=[stage])
        a, _ = execute_plan(plan)
        b, _ = execute_plan(plan, compiled=False)
        assert np.array_equal(a.data, b.data)
        assert simulate_reference(circuit).allclose(a)

    def test_locality_check_happens_at_compile_time(self):
        circuit = Circuit(4).h(3)
        stage = Stage(
            gates=list(circuit.gates),
            partition=QubitPartition.from_sets({0, 1}, {2, 3}, set()),
            gate_indices=[0],
        )
        plan = ExecutionPlan(num_qubits=4, stages=[stage])
        with pytest.raises(ValueError, match="staging invariant"):
            compile_plan(plan)
        # Disabling the check compiles and runs.
        program = compile_plan(plan, check_locality=False)
        assert simulate_reference(circuit).allclose(program.run())

    def test_concurrent_execute_plan_is_safe(self):
        """Concurrent execute_plan calls on one plan share the memoized op
        stream but each thread runs on its own workspace — results must
        stay bit-exact under contention (regression: a shared ping-pong
        pair silently corrupted states)."""
        from concurrent.futures import ThreadPoolExecutor

        circuit = qft(10)
        machine = _machine(10)
        plan = _staged_plan(circuit, machine)
        want, _ = execute_plan(plan, machine=machine, compiled=False)

        def work(seed):
            state, _ = execute_plan(plan, machine=machine)
            return bool(np.array_equal(state.data, want.data))

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(work, range(24)))
        assert all(results), f"{results.count(False)}/24 corrupted states"

    def test_program_memo_reuses_compilation(self):
        circuit = qft(8)
        machine = _machine(8)
        plan = _staged_plan(circuit, machine)
        p1 = compiled_program_for(plan, machine)
        p2 = compiled_program_for(plan, machine)
        assert p1 is p2
        # A different plan object (even if equal) compiles separately.
        plan2 = _staged_plan(circuit, machine)
        assert compiled_program_for(plan2, machine) is not p1


class TestBatchedExecution:
    # Batched GEMMs hand BLAS differently-shaped operands than single-state
    # runs, which may reorder summations; agreement is therefore pinned at
    # a tolerance far below any circuit-level error, not at bit equality.
    ATOL = 1e-12

    @pytest.mark.parametrize("batch", [2, 7, 16])
    def test_batched_matches_looped(self, batch):
        circuit = vqc(9, seed=1)
        machine = _machine(9)
        program = compile_plan(_staged_plan(circuit, machine), machine)
        states = [StateVector.random_state(9, seed=s) for s in range(batch)]
        batched = program.run_batched(states)
        looped = [program.run(s) for s in states]
        assert len(batched) == batch
        for got, want in zip(batched, looped):
            assert np.max(np.abs(got.data - want.data)) <= self.ATOL

    def test_batched_default_initial_states(self):
        circuit = qft(8)
        machine = _machine(8)
        program = compile_plan(_staged_plan(circuit, machine), machine)
        batched = program.run_batched([None, None, None])
        single = program.run()
        for got in batched:
            assert np.max(np.abs(got.data - single.data)) <= self.ATOL

    def test_batched_results_do_not_alias_program_buffers(self):
        program = compile_plan(_staged_plan(qft(6), _machine(6)))
        states = [StateVector.random_state(6, seed=s) for s in range(3)]
        first = program.run_batched(states)
        snapshot = [r.data.copy() for r in first]
        program.run_batched([StateVector.random_state(6, seed=9)] * 3)
        for result, snap in zip(first, snapshot):
            assert np.array_equal(result.data, snap)

    def test_session_fans_one_circuit_into_one_batched_pass(self):
        n = 8
        machine = _machine(n)
        circuit = qft(n)
        states = [StateVector.random_state(n, seed=s) for s in range(4)]
        with Session(machine, backend="incore", kernelize_config=FAST_CONFIG) as s:
            job = s.run(circuit, initial_states=states)
            singles = [
                s.run(circuit, initial_state=state).results()[0] for state in states
            ]
        for fanned, single in zip(job.results(), singles):
            assert (
                np.max(np.abs(fanned.state.data - single.state.data)) <= self.ATOL
            )


class TestRebind:
    def test_rebound_program_uses_new_angles_and_reuses_constant_ops(self):
        machine = _machine(10)
        base, other = vqc(10, seed=0), vqc(10, seed=1)
        assert base.structural_key() == other.structural_key()
        base_plan = _staged_plan(base, machine)
        base_program = compile_plan(base_plan, machine)
        rebound_plan = rebind_plan(base_plan, other)
        rebound = compile_plan(rebound_plan, machine, reuse=base_program)
        # Constant-structure gates (the CX entangler layers) reuse their
        # compiled payload verbatim; angle-bearing ops recompile.
        assert 0 < rebound.ops_reused < len(rebound.ops)
        assert simulate_reference(other).allclose(rebound.run())
        # The base program is untouched and still computes the base circuit.
        assert simulate_reference(base).allclose(base_program.run())
        # Rebinding shares the base workspace (one buffer pair per family).
        assert rebound.workspace is base_program.workspace

    def test_session_cache_hit_runs_rebound_program(self):
        machine = _machine(10)
        sweep = [vqc(10, seed=s) for s in range(6)]
        with Session(machine, backend="incore", kernelize_config=FAST_CONFIG) as s:
            job = s.run(sweep)
            stats = s.stats
        assert stats.programs_compiled == 1
        assert stats.programs_rebound == len(sweep) - 1
        assert stats.program_ops_reused > 0
        for circuit, result in zip(sweep, job.results()):
            assert simulate_reference(circuit).allclose(result.state)

    def test_program_backfilled_when_entry_was_cached_by_other_backend(self):
        """The Atlas-pipeline backends share one plan-cache key; an entry
        first populated by a non-program backend (offload) must be upgraded
        with a compiled program when a program-running backend (incore)
        hits it — and vice versa a non-program backend must not pay for
        rebind compiles."""
        machine = _machine(8)
        sweep = [vqc(8, seed=s) for s in range(3)]
        with Session(machine, kernelize_config=FAST_CONFIG) as s:
            s.run(sweep[0], backend="offload")
            assert s.stats.programs_compiled == 0
            job = s.run(sweep, backend="incore")
            # One backfill compile on the first hit, then rebinds only.
            assert s.stats.programs_compiled == 1
            assert s.stats.programs_rebound == len(sweep)
            for circuit, result in zip(sweep, job.results()):
                assert simulate_reference(circuit).allclose(result.state)
            s.run(sweep[1], backend="offload")
            assert s.stats.programs_rebound == len(sweep)  # unchanged

    def test_rebound_cache_hit_is_bit_exact_with_cold_compile(self):
        machine = _machine(9)
        base, other = vqc(9, seed=4), vqc(9, seed=5)
        base_plan = _staged_plan(base, machine)
        base_program = compile_plan(base_plan, machine)
        rebound_plan = rebind_plan(base_plan, other)
        warm = compile_plan(rebound_plan, machine, reuse=base_program)
        cold = compile_plan(rebound_plan, machine)
        assert np.array_equal(warm.run().data, cold.run().data)


class TestOffloadAndParallelPaths:
    @pytest.mark.parametrize("name,factory", CIRCUITS)
    def test_offloaded_matches_compiled_incore(self, name, factory):
        circuit = factory()
        n = circuit.num_qubits
        machine = _machine(n)
        plan = _staged_plan(circuit, machine)
        incore, _ = execute_plan(plan, machine=machine)
        offloaded, _ = execute_plan_offloaded(plan, machine)
        assert incore.allclose(offloaded, atol=1e-10)
        assert simulate_reference(circuit).allclose(offloaded)

    def test_compiled_segment_ops_bit_exact_with_dynamic_groups(self):
        """`run_segment_ops` (compiled) and `run_groups_on_shard` (dynamic)
        must agree bit for bit on every shard, including non-local
        resolution paths and shard relabels."""
        circuit = (
            Circuit(6).h(0).h(1).x(4).y(5).cp(0.7, 3, 4).crz(0.5, 1, 5).cx(0, 1)
        )
        stage = Stage(
            gates=list(circuit.gates),
            partition=QubitPartition.from_sets({0, 1, 2}, {3, 4}, {5}),
            gate_indices=list(range(len(circuit.gates))),
        )
        logical_to_physical = stage.partition.logical_to_physical()
        local = 3
        segments = split_stage_segments(stage, logical_to_physical, local)
        rng = np.random.default_rng(0)
        for kind, groups in segments:
            assert kind == "shards"
            ops = compile_segment_ops(groups, logical_to_physical, local)
            for shard_index in range(8):
                shard = rng.normal(size=8) + 1j * rng.normal(size=8)
                a, b = shard.copy(), np.empty(8, dtype=complex)
                c, d = shard.copy(), np.empty(8, dtype=complex)
                a, b, idx_compiled = run_segment_ops(
                    a, b, ops, logical_to_physical, local, shard_index
                )
                c, d, idx_dynamic = run_groups_on_shard(
                    c, d, groups, logical_to_physical, local, shard_index
                )
                assert idx_compiled == idx_dynamic
                assert np.array_equal(a, c)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_bit_exact_with_offloaded(self, workers):
        circuit = qft(8)
        machine = MachineConfig.for_circuit(8, num_shards=4, local_qubits=4)
        plan = _staged_plan(circuit, machine)
        sequential, _ = execute_plan_offloaded(plan, machine)
        with ParallelRuntime(machine, num_workers=workers) as runtime:
            parallel, _ = runtime.execute(plan)
            again, _ = runtime.execute(plan)  # warm schedule cache
        assert np.array_equal(sequential.data, parallel.data)
        assert np.array_equal(sequential.data, again.data)


class TestMemoryControls:
    def test_execute_false_jobs_compile_no_programs(self):
        machine = _machine(10)
        with Session(machine, backend="incore", kernelize_config=FAST_CONFIG) as s:
            job = s.run([vqc(10, seed=i) for i in range(3)], execute=False)
            assert s.stats.programs_compiled == 0
            assert s.stats.programs_rebound == 0
            assert all(r.state is None for r in job.modelled_results())
            # A later executing run on the same structure backfills the
            # program and still produces correct states.
            res = s.run(vqc(10, seed=9)).results()[0]
            assert s.stats.programs_compiled == 1
            assert simulate_reference(vqc(10, seed=9)).allclose(res.state)

    def test_release_apis_drop_compiled_buffers(self):
        from repro.runtime import clear_program_cache
        from repro.sim import release_thread_workspace
        from repro.sim.program import thread_workspace

        plan = _staged_plan(qft(8), _machine(8))
        execute_plan(plan)
        ws = thread_workspace()
        assert ws._pairs  # the compiled path parked its ping-pong pair
        release_thread_workspace()
        clear_program_cache()
        assert not getattr(thread_workspace(), "_pairs")
        # The compiled path still works afterwards (recompiles/reallocates).
        state, _ = execute_plan(plan)
        assert simulate_reference(qft(8)).allclose(state)

    def test_workspace_view_memo_survives_many_buffers(self):
        """A workspace view memo entry is per (op, buffer); cycling more
        buffers than any fixed per-op bound must neither error nor corrupt
        results (regression: a shared 32-entry cache thrashed and could
        KeyError under concurrent eviction)."""
        program = compile_plan(_staged_plan(vqc(8, seed=0), _machine(8)))
        from repro.sim.program import Workspace

        want = program.run().data.copy()
        for _ in range(3):
            # Fresh workspaces simulate many workers' distinct buffers.
            got = program.run(workspace=Workspace())
            assert np.array_equal(got.data, want)


class TestBoundedFusionCache:
    def test_eviction_and_counters(self):
        stats0 = fusion_cache_stats()
        assert stats0["maxsize"] >= 1
        configure_fusion_cache(maxsize=4, clear=True)
        try:
            machine = _machine(6)
            # Distinct kernels from distinct angles: more structures than
            # the bound, so the cache must evict instead of growing.
            for seed in range(8):
                circuit = random_circuit(6, 30, seed=seed)
                plan = _staged_plan(circuit, machine)
                execute_plan(plan, machine=machine)
            stats = fusion_cache_stats()
            assert stats["size"] <= 4
            assert stats["evictions"] > 0
            assert stats["misses"] > 0
        finally:
            configure_fusion_cache(maxsize=stats0["maxsize"], clear=True)

    def test_session_surfaces_fusion_counters(self):
        machine = _machine(8)
        sweep = [vqc(8, seed=s) for s in range(3)]
        with Session(machine, backend="incore", kernelize_config=FAST_CONFIG) as s:
            s.run(sweep)
            stats = s.stats.as_dict()
        assert stats["fusion_cache_misses"] > 0
        assert stats["fusion_cache_hits"] >= 0
        assert "fusion_cache_evictions" in stats


class TestWideGemmRouting:
    """Satellite: k>=3 fused matrices route through single-GEMM dense plans."""

    @pytest.mark.parametrize(
        "qubits",
        [
            (0, 1, 2),        # low window (exact, gemm_right)
            (0, 2, 3),        # low window with a hole
            (4, 5, 6),        # contiguous mid run (stacked)
            (2, 1, 3),        # contiguous, scrambled order
            (7, 8, 9),        # high window (gemm_left / stacked)
            (6, 8, 9),        # high window with a hole
            (0, 4, 8),        # scattered: tensordot fallback
            (3, 4, 5, 6),     # contiguous 4q
            (9, 8, 7, 6),     # descending order, high run
        ],
    )
    def test_wide_apply_matches_reference(self, qubits):
        from repro.sim.apply import apply_matrix, apply_matrix_reference

        n = 10
        rng = np.random.default_rng(sum(qubits))
        raw = rng.normal(size=(1 << len(qubits),) * 2) + 1j * rng.normal(
            size=(1 << len(qubits),) * 2
        )
        matrix, _ = np.linalg.qr(raw)
        state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        state /= np.linalg.norm(state)
        want = apply_matrix_reference(state, matrix, list(qubits))
        got_pure = apply_matrix(state, matrix, list(qubits))
        out = np.empty_like(state)
        got_out = apply_matrix(state, matrix, list(qubits), out=out)
        inplace = state.copy()
        apply_matrix(inplace, matrix, list(qubits), out=inplace)
        assert np.allclose(want, got_pure, atol=1e-12)
        assert np.allclose(want, got_out, atol=1e-12)
        assert np.allclose(want, inplace, atol=1e-12)

    def test_contiguous_wide_run_is_gemm_planned(self):
        from repro.sim.apply import _single_gemm_plannable

        assert _single_gemm_plannable((4, 5, 6), 10)
        assert _single_gemm_plannable((0, 1, 2, 3), 10)
        assert not _single_gemm_plannable((0, 4, 8), 10)
        # Very wide contiguous runs stay on tensordot (measured slower as
        # stacked gemm), except at the register edges.
        assert not _single_gemm_plannable(tuple(range(5, 15)), 20)
        assert _single_gemm_plannable(tuple(range(10, 20)), 20)
        assert _single_gemm_plannable(tuple(range(0, 10)), 20)

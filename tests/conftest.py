"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.circuits.library import (
    dj,
    ghz,
    graphstate,
    ising,
    qft,
    qsvm,
    random_circuit,
    wstate,
)
from repro.cluster import CostModel, MachineConfig


@pytest.fixture
def small_machine() -> MachineConfig:
    """A 10-qubit machine with 4 GPU shards (L=6, R=2, G=2)."""
    return MachineConfig.for_circuit(10, num_gpus=4, local_qubits=6)


@pytest.fixture
def single_gpu_machine() -> MachineConfig:
    """An 8-qubit single-GPU machine (everything local)."""
    return MachineConfig.for_circuit(8, num_gpus=1, local_qubits=8)


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(
    params=["qft", "ghz", "ising", "dj", "wstate", "qsvm", "graphstate", "random"]
)
def family_circuit_10(request):
    """One 10-qubit circuit per benchmark family (plus a random circuit)."""
    builders = {
        "qft": lambda: qft(10),
        "ghz": lambda: ghz(10),
        "ising": lambda: ising(10),
        "dj": lambda: dj(10),
        "wstate": lambda: wstate(10),
        "qsvm": lambda: qsvm(10),
        "graphstate": lambda: graphstate(10),
        "random": lambda: random_circuit(10, 60, seed=11),
    }
    return builders[request.param]()

"""Tests for the parallel shard-scheduler runtime.

The contract under test: for any worker count, the parallel runtime is
**bit-exact** with the sequential offload executor (which in turn matches
``simulate_reference``), its shard accounting matches the sequential
executor's stage for stage, and the per-worker statistics sum to the run
totals.  The differential sweep covers staged planner output as well as
hand-built plans with cross-shard (full-state) segments, non-local
controls, shard-relabelling anti-diagonal gates, and pure-phase
reductions.
"""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.library import qft, random_circuit
from repro.cluster import MachineConfig
from repro.core import KernelizeConfig, partition
from repro.core.plan import ExecutionPlan, QubitPartition, Stage
from repro.runtime import (
    ParallelRuntime,
    execute_plan_offloaded,
    execute_plan_parallel,
    model_simulation_time,
)
from repro.sim import StateVector, simulate_reference

WORKER_COUNTS = [1, 2, 4]


def _staged_plan(circuit, machine):
    plan, _ = partition(
        circuit, machine, kernelize_config=KernelizeConfig(pruning_threshold=16)
    )
    return plan


def _hand_built_plan():
    """One stage exercising every per-shard resolution path at once.

    On a 6-qubit machine with L=3 (qubits 3, 4 regional and 5 global):

    * ``h(0)/h(1)/cx(0,1)`` — plain local gates,
    * ``x(4)`` — anti-diagonal on a regional qubit: shard relabel,
    * ``y(5)`` — anti-diagonal on the global qubit: relabel plus a
      per-transition phase,
    * ``cp(3, 4)`` — both qubits non-local: reduces to a pure per-shard
      phase,
    * ``crz(1, 5)`` — non-local *control*: the reduced gate applies only
      to shards whose control bit is set,
    * ``h(3)`` — genuinely mixes amplitude along a regional qubit: must be
      routed to the full-state path, splitting the stage in two shard
      passes.
    """
    circuit = (
        Circuit(6)
        .h(0)
        .h(1)
        .x(4)
        .y(5)
        .cp(0.7, 3, 4)
        .crz(0.5, 1, 5)
        .h(3)
        .cx(0, 1)
    )
    stage = Stage(
        gates=list(circuit.gates),
        partition=QubitPartition.from_sets({0, 1, 2}, {3, 4}, {5}),
        gate_indices=list(range(len(circuit.gates))),
    )
    return circuit, ExecutionPlan(num_qubits=6, stages=[stage])


@pytest.fixture
def offload_machine_6():
    """6 qubits, L=3: 8 DRAM shards streamed through 4 physical GPUs."""
    return MachineConfig.for_circuit(6, num_gpus=4, local_qubits=3)


class TestDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_exact_for_all_families(
        self, family_circuit_10, small_machine, workers
    ):
        circuit = family_circuit_10
        plan = _staged_plan(circuit, small_machine)
        sequential, seq_stats = execute_plan_offloaded(plan, small_machine)
        parallel, par_stats = execute_plan_parallel(
            plan, small_machine, num_workers=workers
        )
        # Bit-exact, not merely allclose: every shard runs the identical
        # kernel sequence on private buffers regardless of which worker
        # picks it up.
        assert np.array_equal(parallel.data, sequential.data)
        assert simulate_reference(circuit).allclose(parallel)
        assert par_stats.per_stage_loads == seq_stats.per_stage_loads
        assert par_stats.shard_loads == seq_stats.shard_loads
        assert par_stats.shard_stores == seq_stats.shard_stores
        assert par_stats.bytes_transferred == seq_stats.bytes_transferred

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hand_built_plan_all_resolution_paths(
        self, offload_machine_6, workers
    ):
        circuit, plan = _hand_built_plan()
        init = StateVector.random_state(6, seed=3)
        sequential, seq_stats = execute_plan_offloaded(
            plan, offload_machine_6, initial_state=init
        )
        assert simulate_reference(circuit, init).allclose(sequential)
        parallel, par_stats = execute_plan_parallel(
            plan, offload_machine_6, initial_state=init, num_workers=workers
        )
        assert np.array_equal(parallel.data, sequential.data)
        # The h(3) full-state segment splits the stage: two shard passes.
        assert par_stats.per_stage_loads == [2 * par_stats.num_shards]
        assert par_stats.per_stage_loads == seq_stats.per_stage_loads

    def test_workers_beyond_shards_are_clamped(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        sequential, _ = execute_plan_offloaded(plan, small_machine)
        parallel, stats = execute_plan_parallel(
            plan, small_machine, num_workers=64
        )
        assert stats.num_workers == stats.num_shards
        assert np.array_equal(parallel.data, sequential.data)

    def test_custom_initial_state(self, small_machine):
        circuit = random_circuit(10, 40, seed=7)
        plan = _staged_plan(circuit, small_machine)
        init = StateVector.random_state(10, seed=9)
        out, _ = execute_plan_parallel(
            plan, small_machine, initial_state=init, num_workers=2
        )
        assert simulate_reference(circuit, init).allclose(out)

    def test_initial_state_size_mismatch(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        with pytest.raises(ValueError):
            execute_plan_parallel(
                plan, small_machine, initial_state=StateVector.zero_state(8)
            )

    def test_invalid_worker_count(self, small_machine):
        with pytest.raises(ValueError):
            ParallelRuntime(small_machine, num_workers=0)

    def test_default_width_is_physical_gpus(self, small_machine):
        # small_machine has 16 DRAM shards but only 4 physical GPUs; the
        # default data-parallel width is the hardware's, not the shard
        # count.
        assert small_machine.num_shards == 16
        assert small_machine.physical_gpus == 4
        runtime = ParallelRuntime(small_machine)
        assert runtime.num_workers == 4
        runtime.close()


class TestShardPathRegression:
    """Pin the per-qubit insular classification (the `_is_cross_shard` fix).

    The old whole-gate ``is_diagonal()`` test routed any non-diagonal gate
    with a non-local qubit to the full-state path, splitting the stage and
    doubling (or tripling) the shard loads.  Anti-diagonal axes must stay
    on the shard path as index relabels, preserving the
    one-load-per-stage-per-shard property the module docstring promises.
    """

    def _run(self, circuit, machine, partition_sets):
        stage = Stage(
            gates=list(circuit.gates),
            partition=QubitPartition.from_sets(*partition_sets),
            gate_indices=list(range(len(circuit.gates))),
        )
        plan = ExecutionPlan(num_qubits=6, stages=[stage])
        init = StateVector.random_state(6, seed=17)
        out, stats = execute_plan_offloaded(plan, machine, initial_state=init)
        assert simulate_reference(circuit, init).allclose(out)
        return stats

    def test_antidiagonal_nonlocal_gate_keeps_one_load_per_shard(
        self, offload_machine_6
    ):
        # x/y on non-local qubits are per-axis anti-diagonal (insular) but
        # not globally diagonal — the case the old check got wrong.
        circuit = Circuit(6).h(0).x(4).y(5).cx(0, 1)
        stats = self._run(
            circuit, offload_machine_6, ({0, 1, 2}, {3, 4}, {5})
        )
        assert stats.per_stage_loads == [stats.num_shards]

    def test_nonlocal_control_keeps_one_load_per_shard(self, offload_machine_6):
        # crz's control is insular; cp is diagonal along both axes.
        circuit = Circuit(6).h(0).crz(0.5, 1, 5).cp(0.3, 3, 4).h(2)
        stats = self._run(
            circuit, offload_machine_6, ({0, 1, 2}, {3, 4}, {5})
        )
        assert stats.per_stage_loads == [stats.num_shards]

    def test_mixing_nonlocal_gate_still_splits_the_stage(
        self, offload_machine_6
    ):
        # h genuinely mixes its axis: the full-state path (and the extra
        # shard pass) is required, not a regression.
        circuit = Circuit(6).h(0).h(4).h(1)
        stats = self._run(
            circuit, offload_machine_6, ({0, 1, 2}, {3, 4}, {5})
        )
        assert stats.per_stage_loads == [2 * stats.num_shards]


class TestWorkerStats:
    def test_per_worker_accounting_sums_to_totals(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        _, stats = execute_plan_parallel(plan, small_machine, num_workers=4)
        assert stats.num_workers == 4
        assert len(stats.per_worker) == 4
        assert sum(w.shard_loads for w in stats.per_worker) == stats.shard_loads
        assert sum(w.shard_stores for w in stats.per_worker) == stats.shard_stores
        assert (
            sum(w.bytes_loaded + w.bytes_stored for w in stats.per_worker)
            == stats.bytes_transferred
        )
        assert all(w.shard_loads == w.shard_stores for w in stats.per_worker)

    def test_round_robin_balances_shards(self, small_machine):
        # 16 shards over 4 workers: every worker gets exactly 4 per pass.
        plan = _staged_plan(qft(10), small_machine)
        _, stats = execute_plan_parallel(plan, small_machine, num_workers=4)
        loads = [w.shard_loads for w in stats.per_worker]
        assert len(set(loads)) == 1

    def test_sequential_executor_reports_no_workers(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        _, stats = execute_plan_offloaded(plan, small_machine)
        assert stats.num_workers == 1
        assert stats.per_worker == []


class TestRunBatch:
    def test_one_plan_many_states(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        states = [StateVector.random_state(10, seed=s) for s in range(4)]
        with ParallelRuntime(small_machine) as runtime:
            results = runtime.run_batch(plan, initial_states=states)
        assert len(results) == 4
        for state, (out, _) in zip(states, results):
            expected, _ = execute_plan_offloaded(
                plan, small_machine, initial_state=state
            )
            assert np.array_equal(out.data, expected.data)

    def test_many_plans(self, small_machine):
        circuits = [qft(10), random_circuit(10, 30, seed=2)]
        plans = [_staged_plan(c, small_machine) for c in circuits]
        with ParallelRuntime(small_machine) as runtime:
            results = runtime.run_batch(plans)
        for circuit, (out, _) in zip(circuits, results):
            assert simulate_reference(circuit).allclose(out)

    def test_plan_state_pairs(self, small_machine):
        circuit = qft(10)
        plan = _staged_plan(circuit, small_machine)
        init = StateVector.random_state(10, seed=5)
        with ParallelRuntime(small_machine) as runtime:
            [(out_zero, _), (out_init, _)] = runtime.run_batch(
                [(plan, None), (plan, init)]
            )
        assert simulate_reference(circuit).allclose(out_zero)
        assert simulate_reference(circuit, init).allclose(out_init)

    def test_results_do_not_alias_runtime_buffers(self, small_machine):
        # A later execution must not overwrite an earlier returned state.
        plan = _staged_plan(qft(10), small_machine)
        with ParallelRuntime(small_machine) as runtime:
            first, _ = runtime.execute(plan)
            snapshot = first.data.copy()
            init = StateVector.random_state(10, seed=23)
            runtime.execute(plan, initial_state=init)
            runtime.execute(plan)
        assert np.array_equal(first.data, snapshot)

    def test_batch_length_mismatch(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        with ParallelRuntime(small_machine) as runtime:
            with pytest.raises(ValueError):
                runtime.run_batch([plan, plan], initial_states=[None])
            with pytest.raises(ValueError):
                runtime.run_batch(plan)

    def test_closed_runtime_rejects_work(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        runtime = ParallelRuntime(small_machine)
        runtime.close()
        with pytest.raises(RuntimeError):
            runtime.execute(plan)


class TestTimelineCrossCheck:
    """The modelled shard traffic must match the measured executor's."""

    def test_modelled_loads_match_measured(self, small_machine):
        plan = _staged_plan(qft(10), small_machine)
        breakdown = model_simulation_time(plan, small_machine)
        _, stats = execute_plan_parallel(plan, small_machine)
        assert breakdown.offload_shard_loads_per_stage == stats.num_shards
        assert stats.per_stage_loads == (
            [breakdown.offload_shard_loads_per_stage] * stats.num_stages
        )
        assert breakdown.parallel_workers == stats.num_workers

    def test_uneven_shard_division_accounts_exact_loads(self):
        # 8 shards over 3 physical GPUs: the old model streamed
        # ceil(8/3) * min(8, 3) = 9 shards per stage; exactly 8 move.
        machine = MachineConfig(
            local_qubits=7,
            regional_qubits=3,
            global_qubits=0,
            gpus_per_node=3,
            gpu_memory_bytes=(1 << 7) * 16,
        )
        assert machine.num_shards == 8
        assert machine.physical_gpus == 3
        plan = _staged_plan(qft(10), machine)
        breakdown = model_simulation_time(plan, machine)
        assert breakdown.offload_shard_loads_per_stage == 8
        expected_per_stage = (
            2.0 * machine.shard_bytes * 8
            / (machine.pcie_bandwidth * machine.physical_gpus)
        )
        assert breakdown.offload_seconds == pytest.approx(
            expected_per_stage * plan.num_stages
        )

    def test_in_memory_machine_models_no_streaming(self):
        machine = MachineConfig.for_circuit(8, num_gpus=1, local_qubits=8)
        plan = _staged_plan(qft(8), machine)
        breakdown = model_simulation_time(plan, machine)
        assert breakdown.offload_shard_loads_per_stage == 0
        assert breakdown.parallel_workers == 1

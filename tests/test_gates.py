"""Unit tests for the gate vocabulary (repro.circuits.gates)."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    GATE_SPECS,
    Gate,
    SUPPORTED_GATES,
    controlled_matrix,
    gate_matrix,
    is_antidiagonal,
    is_diagonal,
    make_gate,
)


def _example_params(spec):
    return tuple(0.3 + 0.1 * i for i in range(spec.num_params))


class TestGateMatrices:
    @pytest.mark.parametrize("name", SUPPORTED_GATES)
    def test_every_gate_matrix_is_unitary(self, name):
        spec = GATE_SPECS[name]
        matrix = gate_matrix(name, _example_params(spec))
        dim = 2 ** spec.num_qubits
        assert matrix.shape == (dim, dim)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)

    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_h_matrix(self):
        h = gate_matrix("h")
        s = 1 / math.sqrt(2)
        assert np.allclose(h, [[s, s], [s, -s]])

    def test_rz_diagonal_entries(self):
        theta = 0.7
        rz = gate_matrix("rz", [theta])
        assert np.allclose(np.diag(rz), [np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])

    def test_rx_pi_equals_minus_i_x(self):
        rx = gate_matrix("rx", [math.pi])
        assert np.allclose(rx, -1j * gate_matrix("x"), atol=1e-12)

    def test_u3_special_case_is_hadamard_like(self):
        u2 = gate_matrix("u2", [0.0, math.pi])
        assert np.allclose(np.abs(u2), np.abs(gate_matrix("h")), atol=1e-12)

    def test_cx_matrix_block_structure(self):
        cx = gate_matrix("cx")
        assert np.allclose(cx[:2, :2], np.eye(2))
        assert np.allclose(cx[2:, 2:], gate_matrix("x"))

    def test_cp_phase_location(self):
        theta = 1.1
        cp = gate_matrix("cp", [theta])
        expected = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert np.allclose(cp, expected)

    def test_ccx_flips_only_when_both_controls_set(self):
        ccx = gate_matrix("ccx")
        # States with control bits (bits 1 and 2) = 11 are indices 6 and 7.
        expected = np.eye(8)
        expected[6, 6] = expected[7, 7] = 0
        expected[6, 7] = expected[7, 6] = 1
        assert np.allclose(ccx, expected)

    def test_swap_matrix(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01> (qubit0=1)
        assert np.allclose(swap @ state, [0, 0, 1, 0])

    def test_rzz_is_diagonal(self):
        assert is_diagonal(gate_matrix("rzz", [0.4]))

    def test_unknown_gate_raises(self):
        with pytest.raises(ValueError, match="unsupported gate"):
            gate_matrix("not_a_gate")

    def test_wrong_param_count_raises(self):
        with pytest.raises(ValueError, match="parameters"):
            gate_matrix("rx", [])

    def test_matrix_cache_returns_readonly(self):
        m = gate_matrix("h")
        assert not m.flags.writeable

    def test_matrix_cache_reuses_instances(self):
        assert gate_matrix("rz", [0.25]) is gate_matrix("rz", [0.25])


class TestControlledMatrix:
    def test_single_control_dimensions(self):
        base = gate_matrix("h")
        c = controlled_matrix(base, 1)
        assert c.shape == (4, 4)
        assert np.allclose(c[:2, :2], np.eye(2))
        assert np.allclose(c[2:, 2:], base)

    def test_double_control(self):
        base = gate_matrix("z")
        c = controlled_matrix(base, 2)
        assert c.shape == (8, 8)
        assert np.allclose(c[:6, :6], np.eye(6))
        assert np.allclose(c[6:, 6:], base)

    def test_controlled_matrix_is_unitary(self):
        base = gate_matrix("u3", [0.3, 0.4, 0.5])
        c = controlled_matrix(base, 1)
        assert np.allclose(c @ c.conj().T, np.eye(4), atol=1e-12)


class TestDiagonalDetection:
    def test_diagonal_true(self):
        assert is_diagonal(np.diag([1, 1j]))

    def test_diagonal_false(self):
        assert not is_diagonal(gate_matrix("h"))

    def test_antidiagonal_true(self):
        assert is_antidiagonal(gate_matrix("x"))
        assert is_antidiagonal(gate_matrix("y"))

    def test_antidiagonal_false(self):
        assert not is_antidiagonal(gate_matrix("z"))
        assert not is_antidiagonal(gate_matrix("h"))


class TestGateInstance:
    def test_make_gate_coerces_types(self):
        g = make_gate("rx", [np.int64(2)], [np.float64(0.5)])
        assert g.qubits == (2,)
        assert g.params == (0.5,)

    def test_gate_validation_qubit_count(self):
        with pytest.raises(ValueError, match="acts on"):
            Gate("cx", (0,))

    def test_gate_validation_duplicate_qubits(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cx", (1, 1))

    def test_gate_validation_params(self):
        with pytest.raises(ValueError, match="parameters"):
            Gate("rz", (0,), ())

    def test_gate_validation_unknown_name(self):
        with pytest.raises(ValueError, match="unsupported"):
            Gate("bogus", (0,))

    def test_control_and_target_qubits(self):
        g = Gate("cx", (3, 7))  # target 3, control 7
        assert g.target_qubits == (3,)
        assert g.control_qubits == (7,)

    def test_ccx_controls(self):
        g = Gate("ccx", (1, 4, 6))
        assert g.target_qubits == (1,)
        assert set(g.control_qubits) == {4, 6}

    def test_remap(self):
        g = Gate("cx", (0, 1))
        mapped = g.remap({0: 5, 1: 2})
        assert mapped.qubits == (5, 2)
        assert mapped.name == "cx"

    def test_gates_are_hashable_and_comparable(self):
        a = Gate("rz", (0,), (0.5,))
        b = Gate("rz", (0,), (0.5,))
        assert a == b
        assert hash(a) == hash(b)


class TestInsularity:
    """Definition 2 of the paper."""

    @pytest.mark.parametrize("name", ["z", "s", "sdg", "t", "tdg", "rz", "p", "x", "y"])
    def test_single_qubit_diagonal_or_antidiagonal_is_insular(self, name):
        params = (0.3,) * GATE_SPECS[name].num_params
        g = Gate(name, (0,), params)
        assert g.insular_qubits() == (0,)
        assert g.non_insular_qubits() == ()

    @pytest.mark.parametrize("name", ["h", "sx", "rx", "ry", "u3"])
    def test_single_qubit_mixing_gate_is_not_insular(self, name):
        params = (0.3,) * GATE_SPECS[name].num_params
        g = Gate(name, (0,), params)
        assert g.insular_qubits() == ()
        assert g.non_insular_qubits() == (0,)

    def test_cx_control_is_insular_target_is_not(self):
        g = Gate("cx", (2, 5))
        assert g.insular_qubits() == (5,)
        assert g.non_insular_qubits() == (2,)

    def test_cz_is_fully_insular(self):
        g = Gate("cz", (2, 5))
        assert set(g.insular_qubits()) == {2, 5}

    def test_cp_is_fully_insular(self):
        g = Gate("cp", (0, 1), (0.7,))
        assert set(g.insular_qubits()) == {0, 1}

    def test_crz_is_fully_insular(self):
        g = Gate("crz", (0, 1), (0.7,))
        assert set(g.insular_qubits()) == {0, 1}

    def test_cry_only_control_is_insular(self):
        g = Gate("cry", (0, 1), (0.7,))
        assert g.insular_qubits() == (1,)
        assert g.non_insular_qubits() == (0,)

    def test_rzz_is_fully_insular(self):
        g = Gate("rzz", (0, 1), (0.7,))
        assert set(g.insular_qubits()) == {0, 1}

    def test_swap_is_not_insular(self):
        g = Gate("swap", (0, 1))
        assert g.insular_qubits() == ()
        assert set(g.non_insular_qubits()) == {0, 1}

    def test_ccx_controls_insular(self):
        g = Gate("ccx", (0, 1, 2))
        assert set(g.insular_qubits()) == {1, 2}
        assert g.non_insular_qubits() == (0,)

    def test_diagonal_flags(self):
        assert Gate("cz", (0, 1)).is_diagonal()
        assert not Gate("cx", (0, 1)).is_diagonal()
        assert Gate("x", (0,)).is_antidiagonal()

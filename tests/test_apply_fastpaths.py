"""Randomized equivalence suite for the specialized gate-application paths.

Every dispatch path of :mod:`repro.sim.apply` (diagonal, permutation,
controlled, dense-gemm variants, tensordot fallback, fused kernels) is
checked against the tensordot reference (:func:`apply_matrix_reference`)
on random states, under all three ``out`` modes of the buffer contract.
An allocation regression test pins the O(1)-state-sized-allocations
property of :func:`repro.runtime.execute_plan`.
"""

import itertools

import numpy as np
import pytest

from repro.circuits.gates import gate_matrix, make_gate
from repro.circuits.library import qft, random_circuit
from repro.cluster import MachineConfig
from repro.core import partition
from repro.runtime import execute_plan
from repro.sim import (
    StateVector,
    apply_gate_buffered,
    apply_matrix,
    apply_matrix_reference,
    expand_matrix,
    fused_unitary,
    fused_unitary_cached,
    simulate_reference,
)
from repro.sim import apply as apply_mod


def _random_state(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    state = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return state / np.linalg.norm(state)


def _random_unitary(dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    unitary, _ = np.linalg.qr(raw)
    return unitary


#: (gate name, params, expected dispatch kind) — one exemplar per path.
PATH_CASES = [
    ("rz", (0.7,), "diagonal"),
    ("cz", (), "diagonal"),
    ("cp", (1.1,), "diagonal"),
    ("ccz", (), "diagonal"),
    ("x", (), "permutation"),
    ("y", (), "permutation"),
    ("cx", (), "permutation"),
    ("swap", (), "permutation"),
    ("ccx", (), "permutation"),
    ("cswap", (), "permutation"),
    ("ch", (), "controlled"),
    ("crx", (0.8,), "controlled"),
    ("cry", (0.4,), "controlled"),
    ("h", (), "dense"),
    ("u3", (0.3, 0.9, 0.2), "dense"),
    ("rxx", (0.5,), "dense"),
    ("ryy", (0.6,), "dense"),
]


class TestDispatchClassification:
    @pytest.mark.parametrize("name,params,kind", PATH_CASES)
    def test_gate_matrices_hit_their_specialized_path(self, name, params, kind):
        info = apply_mod.analyze_matrix(gate_matrix(name, params))
        assert info.kind == kind

    def test_wide_dense_matrix_falls_back_to_tensordot(self):
        info = apply_mod.analyze_matrix(_random_unitary(8, seed=0))
        assert info.kind == "big"


class TestFastPathEquivalence:
    @pytest.mark.parametrize("name,params,kind", PATH_CASES)
    def test_matches_reference_in_all_out_modes(self, name, params, kind):
        matrix = gate_matrix(name, params)
        k = int(np.log2(matrix.shape[0]))
        n = 7
        rng = np.random.default_rng(hash(name) % 2**32)
        for trial in range(4):
            qubits = list(rng.choice(n, size=k, replace=False))
            state = _random_state(n, seed=trial)
            reference = apply_matrix_reference(state, matrix, qubits)

            before = state.copy()
            pure = apply_matrix(state, matrix, qubits)
            assert np.allclose(state, before), "out=None must not modify state"
            assert np.allclose(pure, reference)

            buffer = np.empty_like(state)
            returned = apply_matrix(state, matrix, qubits, out=buffer)
            assert returned is buffer
            assert np.allclose(buffer, reference)
            assert np.allclose(state, before), "out=buffer must not modify state"

            inplace = state.copy()
            returned = apply_matrix(inplace, matrix, qubits, out=inplace)
            assert returned is inplace
            assert np.allclose(inplace, reference)

    def test_dense_1q_all_positions(self):
        unitary = _random_unitary(2, seed=3)
        for n in (2, 5, 9):
            state = _random_state(n, seed=n)
            for q in range(n):
                reference = apply_matrix_reference(state, unitary, [q])
                assert np.allclose(apply_matrix(state, unitary, [q]), reference)

    def test_dense_2q_all_pairs(self):
        # n=12 reaches the split_stacked/split_gemm plans (they need a
        # non-adjacent pair with q0 below the gemm edge and q1 above it).
        unitary = _random_unitary(4, seed=4)
        for n in (3, 6, 9, 12):
            state = _random_state(n, seed=n)
            for qubits in itertools.permutations(range(n), 2):
                reference = apply_matrix_reference(state, unitary, list(qubits))
                got = apply_matrix(state, unitary, list(qubits))
                assert np.allclose(got, reference), (n, qubits)

    def test_controlled_all_pairs_wide_register(self):
        # n=13 exercises the gather-gemm controlled subspace path (target
        # below control, non-single-gemm positions) and the strided
        # structured fallback (target above control).
        matrix = gate_matrix("ch")
        n = 13
        state = _random_state(n, seed=0)
        for qubits in itertools.permutations(range(n), 2):
            reference = apply_matrix_reference(state, matrix, list(qubits))
            inplace = state.copy()
            apply_matrix(inplace, matrix, list(qubits), out=inplace)
            assert np.allclose(inplace, reference), qubits
            buffer = np.empty_like(state)
            apply_matrix(state, matrix, list(qubits), out=buffer)
            assert np.allclose(buffer, reference), qubits

    def test_out_size_mismatch_raises(self):
        state = _random_state(4, seed=0)
        with pytest.raises(ValueError):
            apply_matrix(state, gate_matrix("h"), [0], out=np.empty(8, complex))


class TestBufferedApplication:
    def test_random_circuit_matches_reference(self):
        circuit = random_circuit(7, 80, seed=11)
        state = _random_state(7, seed=42)
        buffered = state.copy()
        scratch = np.empty_like(state)
        reference = state.copy()
        for gate in circuit.gates:
            buffered, scratch = apply_gate_buffered(
                buffered, scratch, gate.matrix(), gate.qubits
            )
            reference = apply_matrix_reference(
                reference, gate.matrix(), gate.qubits
            )
        assert np.allclose(buffered, reference)

    def test_statevector_matches_reference_simulator(self):
        circuit = random_circuit(6, 60, seed=5)
        via_statevector = StateVector.zero_state(6).apply_circuit(circuit.gates)
        assert simulate_reference(circuit).allclose(via_statevector)


class TestFusedUnitary:
    def test_matches_expand_matrix_product(self):
        circuit = random_circuit(5, 30, seed=7)
        fused, qubits = fused_unitary(circuit.gates)
        seed_style = np.eye(1 << len(qubits), dtype=np.complex128)
        for gate in circuit.gates:
            seed_style = expand_matrix(gate.matrix(), gate.qubits, qubits) @ seed_style
        assert np.allclose(fused, seed_style)

    def test_cached_variant_shares_one_instance(self):
        gates = (make_gate("h", [0]), make_gate("cx", [1, 0]))
        m1, q1 = fused_unitary_cached(gates)
        m2, q2 = fused_unitary_cached(gates)
        assert m1 is m2 and q1 == q2
        assert not m1.flags.writeable
        fresh, _ = fused_unitary(list(gates))
        assert np.allclose(m1, fresh)


class TestAllocationRegression:
    def test_execute_plan_state_allocations_are_constant(self):
        """A warm plan execution allocates the ping-pong buffer pair plus
        one tensordot workspace per wide (k >= 3) fused-kernel application —
        never O(#gates)."""
        n = 10
        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_gpus=4, local_qubits=n - 2)
        plan, _ = partition(circuit, machine)

        # Warm run: populates the scratch pool and the fused-unitary cache.
        execute_plan(plan)

        # Kernel applications that go through the k>=3 tensordot fallback
        # each log one state-sized workspace allocation.
        big_applications = 0
        for stage in plan.stages:
            for kernel in stage.kernels or []:
                matrix, _ = fused_unitary_cached(kernel.gates)
                info = apply_mod.analyze_matrix(matrix)
                if info.kind == "big":
                    big_applications += 1

        apply_mod.reset_allocation_log()
        result, _ = execute_plan(plan)
        log = apply_mod.allocation_log()
        state_sized = [size for size in log if size >= 1 << n]
        budget = 2 + big_applications
        assert len(state_sized) <= budget, (
            f"expected ping-pong pair + {big_applications} tensordot "
            f"workspaces, got {len(state_sized)} state-sized allocations: "
            f"{state_sized}"
        )
        # The bound must not scale with the gate count (qft(10) has 55+
        # gates but only a handful of kernels).
        assert budget < len(circuit) // 2
        assert len(log) <= budget + 6, f"engine allocation count grew: {log}"
        assert simulate_reference(circuit).allclose(result)

    def test_gate_count_does_not_scale_allocations(self):
        n = 8
        logs = []
        for num_gates in (20, 200):
            circuit = random_circuit(n, num_gates, seed=1)
            state = _random_state(n, seed=2)
            buf = state.copy()
            scratch = np.empty_like(state)
            # Warm the analysis/scratch caches with one pass.
            for gate in circuit.gates:
                buf, scratch = apply_gate_buffered(
                    buf, scratch, gate.matrix(), gate.qubits
                )
            apply_mod.reset_allocation_log()
            for gate in circuit.gates:
                buf, scratch = apply_gate_buffered(
                    buf, scratch, gate.matrix(), gate.qubits
                )
            logs.append(len(apply_mod.allocation_log()))
        assert logs[1] == logs[0] == 0, logs


class TestCompiledProgramAllocations:
    """Compiled programs preallocate their whole workspace at compile/warmup
    time: steady-state re-execution performs **zero** engine allocations
    (the one exception is the tensordot fallback for genuinely scattered
    wide kernels, which logs its workspace per application — counted
    exactly below).  Note `reset_allocation_log` clears only the log, never
    the warm workspaces, so these counts are deterministic however many
    runs preceded them."""

    def _program(self, n=10):
        from repro.runtime.compile import compile_plan

        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_gpus=4, local_qubits=n - 2)
        plan, _ = partition(circuit, machine)
        return compile_plan(plan, machine), circuit

    def test_steady_state_reexecution_allocates_nothing(self):
        program, circuit = self._program()
        unplannable = sum(1 for op in program.ops if op.kind == "big")
        # qft at this size lowers entirely to gemm/diagonal/permutation
        # ops, so the pin below really is *zero*.
        assert unplannable == 0, program.op_counts()
        result = program.run_view()  # warm: buffers and tmps allocate here
        assert simulate_reference(circuit).allclose(
            StateVector(program.num_qubits, result.copy())
        )
        apply_mod.reset_allocation_log()
        program.run_view()
        program.run_view(StateVector.random_state(program.num_qubits, seed=3))
        assert apply_mod.allocation_log() == []

    def test_steady_state_batched_reexecution_allocates_nothing(self):
        program, _ = self._program()
        states = [
            StateVector.random_state(program.num_qubits, seed=s) for s in range(4)
        ]
        program.run_batched_view(states)  # warm
        apply_mod.reset_allocation_log()
        program.run_batched_view(states)
        assert apply_mod.allocation_log() == []

    def test_run_copy_costs_exactly_one_result_buffer(self):
        program, _ = self._program()
        n = program.num_qubits
        program.run()  # warm
        apply_mod.reset_allocation_log()
        program.run()
        log = apply_mod.allocation_log()
        assert log == [1 << n]

    def test_unplannable_big_ops_are_counted_exactly(self):
        """A hand-built plan with one scattered wide kernel logs exactly
        one tensordot workspace per re-execution — nothing else."""
        from repro.circuits import Circuit
        from repro.core.plan import ExecutionPlan, QubitPartition, Stage
        from repro.runtime.compile import compile_plan
        from repro.core.kernel import Kernel, KernelSequence, KernelType

        n = 9
        gates = [make_gate("h", [0]), make_gate("cx", [0, 4]), make_gate("cx", [4, 8])]
        circuit = Circuit(n, gates)
        kernels = KernelSequence(
            kernels=[
                Kernel(
                    gates=tuple(gates),
                    qubits=(0, 4, 8),
                    kernel_type=KernelType.FUSION,
                    cost=1.0,
                    gate_indices=(0, 1, 2),
                )
            ]
        )
        stage = Stage(
            gates=gates,
            partition=QubitPartition.from_sets(set(range(n)), set(), set()),
            kernels=kernels,
            gate_indices=[0, 1, 2],
        )
        plan = ExecutionPlan(num_qubits=n, stages=[stage])
        program = compile_plan(plan)
        assert program.op_counts().get("big") == 1
        program.run_view()  # warm
        apply_mod.reset_allocation_log()
        program.run_view()
        log = apply_mod.allocation_log()
        assert log == [1 << n]
        assert simulate_reference(circuit).allclose(
            StateVector(n, program.run_view().copy())
        )


class TestSampling:
    def test_sample_distribution_and_determinism(self):
        state = simulate_reference(qft(5))
        a = state.sample(2000, seed=3)
        b = state.sample(2000, seed=3)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 32
        # QFT of |0..0> is uniform; the empirical mean of uniform [0,32) is ~15.5.
        assert 13.0 < a.mean() < 18.0

    def test_sample_matches_probabilities(self):
        state = simulate_reference(qft(3))
        counts = np.bincount(state.sample(20000, seed=0), minlength=8) / 20000
        assert np.allclose(counts, state.probabilities(), atol=0.02)

"""Unit tests for the circuit IR (repro.circuits.circuit)."""

import numpy as np
import pytest

from repro.circuits import Circuit, make_gate
from repro.sim import simulate_reference


class TestBuilder:
    def test_empty_circuit(self):
        c = Circuit(3)
        assert len(c) == 0
        assert c.depth() == 0
        assert c.num_qubits == 3

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_validates_qubit_range(self):
        c = Circuit(2)
        with pytest.raises(ValueError, match="outside range"):
            c.add("h", [2])

    def test_builder_methods_chain(self):
        c = Circuit(3).h(0).cx(0, 1).rz(0.5, 2).ccx(0, 1, 2)
        assert len(c) == 4
        assert c[0].name == "h"
        assert c[3].name == "ccx"

    def test_cx_builder_order(self):
        # cx(control, target) stores (target, control) internally.
        c = Circuit(2).cx(0, 1)
        gate = c[0]
        assert gate.target_qubits == (1,)
        assert gate.control_qubits == (0,)

    def test_getitem_slice_returns_circuit(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        sub = c[:2]
        assert isinstance(sub, Circuit)
        assert len(sub) == 2

    def test_iteration_and_equality(self):
        c1 = Circuit(2).h(0).cx(0, 1)
        c2 = Circuit(2).h(0).cx(0, 1)
        assert c1 == c2
        assert list(c1) == list(c2)

    def test_copy_is_independent(self):
        c = Circuit(2).h(0)
        d = c.copy()
        d.x(1)
        assert len(c) == 1
        assert len(d) == 2


class TestStructure:
    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_serial_gates(self):
        c = Circuit(2).h(0).cx(0, 1).h(1).cx(1, 0)
        assert c.depth() == 4

    def test_qubits_used(self):
        c = Circuit(5).h(0).cx(2, 3)
        assert c.qubits_used() == {0, 2, 3}

    def test_stats(self):
        c = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        s = c.stats()
        assert s.num_gates == 3
        assert s.num_two_qubit_gates == 1
        assert s.num_multi_qubit_gates == 2
        assert s.num_qubits == 3
        assert s.as_dict()["depth"] == c.depth()

    def test_dependency_edges_adjacent_pairs(self):
        c = Circuit(3).h(0).cx(0, 1).h(2).cx(1, 2)
        edges = c.dependency_edges()
        assert (0, 1) in edges  # h(0) -> cx(0,1)
        assert (1, 3) in edges  # cx(0,1) -> cx(1,2) via qubit 1
        assert (2, 3) in edges  # h(2) -> cx(1,2)
        assert (0, 3) not in edges  # not adjacent

    def test_dependency_graph_is_dag(self):
        import networkx as nx

        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(0)
        dag = c.dependency_graph()
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.number_of_nodes() == 4

    def test_topological_equivalence_identity(self):
        c = Circuit(3).h(0).cx(0, 1).h(2)
        assert c.is_topologically_equivalent([0, 1, 2])

    def test_topological_equivalence_commuting_swap(self):
        c = Circuit(3).h(0).h(2).cx(0, 1)
        # h(2) commutes with everything on qubits 0/1.
        assert c.is_topologically_equivalent([1, 0, 2])

    def test_topological_equivalence_violation(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert not c.is_topologically_equivalent([1, 0])

    def test_topological_equivalence_requires_permutation(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert not c.is_topologically_equivalent([0, 0])


class TestTransformations:
    def test_remap_qubits(self):
        c = Circuit(3).h(0).cx(0, 2)
        mapped = c.remap_qubits({0: 2, 1: 1, 2: 0})
        assert mapped[0].qubits == (2,)
        assert set(mapped[1].qubits) == {0, 2}

    def test_inverse_undoes_circuit(self):
        c = Circuit(3)
        c.h(0).t(1).cx(0, 1).rz(0.3, 2).swap(1, 2).cry(0.7, 0, 2).s(0)
        full = c.compose(c.inverse())
        state = simulate_reference(full)
        expected = np.zeros(8)
        expected[0] = 1.0
        assert np.allclose(np.abs(state.data), expected, atol=1e-9)

    def test_inverse_of_u3(self):
        c = Circuit(1).u3(0.3, 0.4, 0.5, 0)
        state = simulate_reference(c.compose(c.inverse()))
        assert abs(state.amplitude(0)) == pytest.approx(1.0, abs=1e-9)

    def test_compose_requires_matching_size(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_subcircuit_selects_gates(self):
        c = Circuit(2).h(0).x(1).cx(0, 1)
        sub = c.subcircuit([0, 2])
        assert len(sub) == 2
        assert sub[0].name == "h"
        assert sub[1].name == "cx"

    def test_append_returns_self_for_chaining(self):
        c = Circuit(1)
        assert c.append(make_gate("h", [0])) is c

"""Tests for the Session facade: backends, plan cache, and the job API.

The heart of the file is the parametrized differential suite: every
registered backend must agree with :func:`simulate_reference` on staged
plans (built by the Session's own pipeline) and on hand-built plans
(full-state gates, non-local controls, relabels — the offload executor's
hard cases), and the ``"auto"`` rule must pick the documented backend for
in-core vs. oversized states.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Circuit, MachineConfig, Session, simulate, simulate_reference
from repro.circuits.library import qft, vqc
from repro.core import KernelizeConfig, partition
from repro.core.plan import ExecutionPlan, QubitPartition, Stage
from repro.session import (
    BACKENDS,
    PlanCache,
    available_backends,
    make_backend,
    normalize_observable,
    plan_cache_key,
    rebind_plan,
    select_auto_backend,
)
from repro.sim import StateVector

FAST_CONFIG = KernelizeConfig(pruning_threshold=8)

#: Backends that functionally execute through the Atlas pipeline's plans.
PIPELINE_BACKENDS = ["reference", "incore", "offload", "parallel"]
#: Modelled baseline backends (plans from their own partitioners).
BASELINE_BACKENDS = ["hyquas", "cuquantum", "qiskit"]


@pytest.fixture(scope="module")
def sweep_machine() -> MachineConfig:
    return MachineConfig.for_circuit(8, num_shards=4, local_qubits=6)


def _session(machine, **kwargs) -> Session:
    kwargs.setdefault("kernelize_config", FAST_CONFIG)
    return Session(machine, **kwargs)


# ---------------------------------------------------------------------------
# Structural key
# ---------------------------------------------------------------------------


class TestStructuralKey:
    def test_angle_invariant(self):
        assert vqc(8, seed=0).structural_key() == vqc(8, seed=3).structural_key()

    def test_sensitive_to_structure(self):
        a = Circuit(4).h(0).cx(0, 1)
        b = Circuit(4).h(0).cx(1, 0)
        c = Circuit(4).h(0).cz(0, 1)
        keys = {x.structural_key() for x in (a, b, c)}
        assert len(keys) == 3

    def test_special_angles_change_key(self):
        # rx(pi) is anti-diagonal (insular axis); generic rx is mixing.
        generic = Circuit(3).rx(0.3, 0)
        other_generic = Circuit(3).rx(1.1, 0)
        special = Circuit(3).rx(np.pi, 0)
        assert generic.structural_key() == other_generic.structural_key()
        assert generic.structural_key() != special.structural_key()

    def test_qubit_count_matters(self):
        assert Circuit(3).h(0).structural_key() != Circuit(4).h(0).structural_key()


# ---------------------------------------------------------------------------
# Plan cache + rebind
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_lru_eviction_and_stats(self, sweep_machine):
        cache = PlanCache(maxsize=2)
        plans = {}
        for i, circuit in enumerate([qft(8), vqc(8, seed=0), Circuit(8).h(0)]):
            key = plan_cache_key(circuit, sweep_machine, ("p", i))
            plan, _ = partition(circuit, sweep_machine, kernelize_config=FAST_CONFIG)
            cache.put(key, plan)
            plans[i] = key
        assert len(cache) == 2
        assert cache.get(plans[0]) is None  # evicted
        assert cache.get(plans[2]) is not None
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_rebind_uses_new_angles(self, sweep_machine):
        base, other = vqc(8, seed=0), vqc(8, seed=1)
        plan, _ = partition(base, sweep_machine, kernelize_config=FAST_CONFIG)
        rebound = rebind_plan(plan, other)
        # Same structure...
        assert rebound.num_stages == plan.num_stages
        assert [s.gate_indices for s in rebound.stages] == [
            s.gate_indices for s in plan.stages
        ]
        # ...but the new circuit's gates, and the new circuit's result.
        from repro.runtime import execute_plan

        out, _ = execute_plan(rebound, machine=sweep_machine)
        assert simulate_reference(other).allclose(out)
        assert not simulate_reference(base).allclose(out)

    def test_rebind_rejects_mismatched_circuit(self, sweep_machine):
        plan, _ = partition(qft(8), sweep_machine, kernelize_config=FAST_CONFIG)
        with pytest.raises(ValueError):
            rebind_plan(plan, qft(8).compose(qft(8).inverse()))


# ---------------------------------------------------------------------------
# Backend differential suite
# ---------------------------------------------------------------------------


def _hand_built_plan(num_qubits: int = 6, local: int = 4) -> tuple[ExecutionPlan, Circuit]:
    """A plan the planner would never emit: full-state mixing gates on
    non-local qubits, non-local controls, anti-diagonal relabels."""
    circuit = Circuit(num_qubits)
    circuit.h(0).h(5).cx(5, 1).x(4).cp(0.7, 4, 2).rz(0.3, 5).cx(1, 3).h(2)
    partition_ = QubitPartition.from_sets(
        local=range(local), regional=range(local, num_qubits), global_=[]
    )
    stage = Stage(
        gates=list(circuit.gates),
        partition=partition_,
        kernels=None,
        gate_indices=list(range(len(circuit))),
    )
    return ExecutionPlan(num_qubits=num_qubits, stages=[stage]), circuit


@pytest.mark.parametrize("backend_name", PIPELINE_BACKENDS + BASELINE_BACKENDS)
class TestBackendEquivalence:
    def test_staged_plan_matches_reference(self, backend_name, sweep_machine):
        circuit = qft(8)
        with _session(sweep_machine, backend=backend_name) as session:
            result = session.run(circuit).result()
        assert result.backend == backend_name
        assert simulate_reference(circuit).allclose(result.state)

    def test_staged_plan_with_initial_state(self, backend_name, sweep_machine):
        circuit = vqc(8, seed=2)
        init = StateVector.random_state(8, seed=5)
        with _session(sweep_machine, backend=backend_name) as session:
            result = session.run(circuit, initial_state=init).result()
        assert simulate_reference(circuit, init).allclose(result.state)

    def test_hand_built_plan_matches_reference(self, backend_name):
        if backend_name == "incore" or backend_name in BASELINE_BACKENDS:
            pytest.skip(
                "hand-built plans violate the staging invariant on purpose; "
                "they target the shard executors (see TestHandBuiltPlans)"
            )
        plan, circuit = _hand_built_plan()
        machine = MachineConfig.for_circuit(6, num_shards=4, local_qubits=4)
        backend = make_backend(backend_name)
        try:
            state, _ = backend.run_plan(plan, machine, circuit=circuit)
            assert simulate_reference(circuit).allclose(state)
        finally:
            backend.close()


class TestHandBuiltPlans:
    """Shard executors on hand-built plans, including bit-exactness."""

    @pytest.mark.parametrize("backend_name", ["reference", "offload", "parallel"])
    def test_matches_reference(self, backend_name):
        plan, circuit = _hand_built_plan()
        machine = MachineConfig.for_circuit(6, num_shards=4, local_qubits=4)
        backend = make_backend(backend_name)
        try:
            init = StateVector.random_state(6, seed=9)
            state, _ = backend.run_plan(plan, machine, initial_state=init, circuit=circuit)
            assert simulate_reference(circuit, init).allclose(state)
        finally:
            backend.close()

    def test_offload_parallel_bit_exact(self):
        plan, _circuit = _hand_built_plan()
        machine = MachineConfig.for_circuit(6, num_shards=4, local_qubits=4)
        offload = make_backend("offload")
        parallel = make_backend("parallel")
        try:
            a, _ = offload.run_plan(plan, machine)
            b, _ = parallel.run_plan(plan, machine)
            assert np.array_equal(a.data, b.data)
        finally:
            offload.close()
            parallel.close()

    def test_incore_offload_parallel_bit_exact_on_staged_plan(self, sweep_machine):
        circuit = qft(8)
        plan, _ = partition(circuit, sweep_machine, kernelize_config=FAST_CONFIG)
        states = {}
        for name in ("incore", "offload", "parallel"):
            backend = make_backend(name)
            try:
                state, _ = backend.run_plan(plan, sweep_machine)
                states[name] = state.data.copy()
            finally:
                backend.close()
        assert np.array_equal(states["offload"], states["parallel"])


# ---------------------------------------------------------------------------
# Auto selection
# ---------------------------------------------------------------------------


class TestAutoSelection:
    def test_in_core_state_picks_incore(self, sweep_machine):
        assert sweep_machine.fits_in_gpus(8)
        assert select_auto_backend(sweep_machine, 8) == "incore"
        with _session(sweep_machine) as session:
            result = session.run(qft(8)).result()
        assert result.backend == "incore"

    def test_oversized_state_picks_parallel(self):
        machine = MachineConfig.for_circuit(
            8, num_shards=1, local_qubits=6, gpu_memory_bytes=(1 << 6) * 16
        )
        assert machine.requires_offload(8)
        assert select_auto_backend(machine, 8) == "parallel"
        with _session(machine) as session:
            result = session.run(qft(8)).result()
        assert result.backend == "parallel"
        assert simulate_reference(qft(8)).allclose(result.state)

    def test_explicit_backend_overrides_auto(self, sweep_machine):
        with _session(sweep_machine) as session:
            result = session.run(qft(8), backend="offload").result()
        assert result.backend == "offload"

    def test_unknown_backend_rejected(self, sweep_machine):
        with _session(sweep_machine) as session:
            with pytest.raises(ValueError, match="unknown backend"):
                session.run(qft(8), backend="gpu9000")
        with pytest.raises(ValueError, match="unknown backend"):
            Session(sweep_machine, backend="gpu9000")

    def test_registry_contents(self):
        names = available_backends()
        for expected in PIPELINE_BACKENDS + BASELINE_BACKENDS:
            assert expected in names
        assert "auto" not in BACKENDS


# ---------------------------------------------------------------------------
# The job API: sweeps, shots, observables
# ---------------------------------------------------------------------------


class TestSessionJobs:
    def test_sweep_partitions_once(self, sweep_machine):
        sweep = [vqc(8, seed=s) for s in range(6)]
        with _session(sweep_machine, backend="incore") as session:
            job = session.run(sweep)
            assert session.stats.plans_built == 1
            assert session.stats.cache_hits == len(sweep) - 1
            assert job.cache_hits == len(sweep) - 1
        for circuit, result in zip(sweep, job):
            assert simulate_reference(circuit).allclose(result.state)

    def test_sweep_through_parallel_backend_shares_schedule(self):
        machine = MachineConfig.for_circuit(8, num_shards=4, local_qubits=6)
        sweep = [vqc(8, seed=s) for s in range(4)]
        with _session(machine, backend="parallel") as session:
            job = session.run(sweep)
            assert session.stats.schedule_cache_misses == 1
            assert session.stats.schedule_cache_hits == len(sweep) - 1
        for circuit, result in zip(sweep, job):
            assert simulate_reference(circuit).allclose(result.state)

    def test_one_circuit_many_initial_states(self, sweep_machine):
        circuit = qft(8)
        inits = [StateVector.random_state(8, seed=s) for s in range(3)]
        with _session(sweep_machine) as session:
            job = session.run(circuit, initial_states=inits)
            assert session.stats.plans_built == 1
        assert len(job) == 3
        for init, result in zip(inits, job):
            assert simulate_reference(circuit, init).allclose(result.state)

    def test_shots_independent_but_seedable(self, sweep_machine):
        circuit = qft(8)

        def two_draws(seed):
            with _session(sweep_machine, seed=seed) as session:
                first = session.run(circuit, shots=64).result().samples
                second = session.run(circuit, shots=64).result().samples
            return first, second

        a1, a2 = two_draws(seed=7)
        b1, b2 = two_draws(seed=7)
        # Same session seed: reproducible across sessions...
        assert np.array_equal(a1, b1) and np.array_equal(a2, b2)
        # ...but independent across calls within a session.
        assert not np.array_equal(a1, a2)

    def test_run_seed_override(self, sweep_machine):
        circuit = qft(8)
        with _session(sweep_machine) as session:
            x = session.run(circuit, shots=32, seed=11).result().samples
            y = session.run(circuit, shots=32, seed=11).result().samples
        assert np.array_equal(x, y)

    def test_observables(self, sweep_machine):
        circuit = vqc(8, seed=4)
        reference = simulate_reference(circuit)
        with _session(sweep_machine) as session:
            result = session.run(circuit, observables=[0, (1, 2), "z0*z3"]).result()
        assert result.expectation(0) == pytest.approx(reference.expectation_z(0))
        assert result.expectation((1, 2)) == pytest.approx(
            reference.expectation_z_product([1, 2])
        )
        assert result.expectation("z0*z3") == pytest.approx(
            reference.expectation_z_product([0, 3])
        )
        with pytest.raises(KeyError):
            result.expectation(5)

    def test_execute_false_returns_plan_and_timing_only(self, sweep_machine):
        with _session(sweep_machine) as session:
            result = session.run(qft(8), execute=False).modelled()
        assert result.state is None and result.samples is None
        assert result.timing.total_seconds > 0
        assert result.plan.num_stages >= 1

    def test_counts_and_summary(self, sweep_machine):
        with _session(sweep_machine) as session:
            job = session.run(qft(8), shots=16)
        result = job.result()
        assert sum(result.counts().values()) == 16
        assert job.summary()["num_circuits"] == 1
        assert result.summary()["circuit"] == "qft_8"

    def test_validation_errors(self, sweep_machine):
        with _session(sweep_machine) as session:
            with pytest.raises(ValueError, match="no circuits"):
                session.run([])
            with pytest.raises(ValueError, match="not both"):
                session.run(
                    qft(8),
                    initial_state=StateVector.zero_state(8),
                    initial_states=[StateVector.zero_state(8)],
                )
            with pytest.raises(ValueError):
                session.run(qft(9))  # machine mismatch
        with pytest.raises(ValueError, match="no machine"):
            Session().run(qft(8))

    def test_closed_session_rejects_runs(self, sweep_machine):
        session = _session(sweep_machine)
        session.close()
        with pytest.raises(RuntimeError):
            session.run(qft(8))

    def test_normalize_observable_rejects_garbage(self):
        with pytest.raises(ValueError):
            normalize_observable("x3")
        with pytest.raises(ValueError):
            normalize_observable(object())

    def test_normalize_observable_canonicalises(self):
        # Sorted, and Z_q Z_q = I cancels pairwise.
        assert normalize_observable((1, 0)) == (0, 1)
        assert normalize_observable("z1*z0") == (0, 1)
        assert normalize_observable((0, 0)) == ()
        assert normalize_observable((2, 0, 2, 2)) == (0, 2)

    def test_shots_with_execute_false_rejected(self, sweep_machine):
        with _session(sweep_machine) as session:
            with pytest.raises(ValueError, match="functional execution"):
                session.run(qft(8), shots=16, execute=False)
            with pytest.raises(ValueError, match="functional execution"):
                session.run(qft(8), observables=[0], execute=False)


# ---------------------------------------------------------------------------
# simulate() shim
# ---------------------------------------------------------------------------


class TestSimulateShim:
    def test_matches_reference_and_keeps_fields(self, sweep_machine):
        circuit = qft(8)
        result = simulate(circuit, sweep_machine, kernelize_config=FAST_CONFIG)
        assert simulate_reference(circuit).allclose(result.state)
        assert result.plan.num_stages >= 1
        assert result.report is not None
        assert result.timing.total_seconds > 0

    def test_execute_false(self, sweep_machine):
        result = simulate(
            qft(8), sweep_machine, kernelize_config=FAST_CONFIG, execute=False
        )
        assert result.state is None


# ---------------------------------------------------------------------------
# StateVector sampling with a shared generator
# ---------------------------------------------------------------------------


class TestSampleGenerator:
    def test_generator_advances(self):
        state = simulate_reference(qft(6))
        rng = np.random.default_rng(3)
        a = state.sample(100, rng)
        b = state.sample(100, rng)
        assert not np.array_equal(a, b)
        rng2 = np.random.default_rng(3)
        assert np.array_equal(a, state.sample(100, rng2))

    def test_int_seed_still_deterministic(self):
        state = simulate_reference(qft(6))
        assert np.array_equal(state.sample(50, 4), state.sample(50, 4))

    def test_expectation_z_product_identity_and_single(self):
        state = simulate_reference(vqc(6, seed=0))
        assert state.expectation_z_product([]) == 1.0
        assert state.expectation_z_product([2]) == pytest.approx(
            state.expectation_z(2)
        )
        # Z_q Z_q = I: duplicate qubits cancel pairwise.
        assert state.expectation_z_product([2, 2]) == 1.0
        assert state.expectation_z_product([1, 2, 2]) == pytest.approx(
            state.expectation_z(1)
        )
        with pytest.raises(ValueError):
            state.expectation_z_product([9])

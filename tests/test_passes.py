"""Tests for the circuit transformation passes (repro.circuits.passes)."""

import pytest

from repro.circuits import Circuit
from repro.circuits.library import random_circuit, qft, wstate
from repro.circuits.passes import (
    cancel_adjacent_inverses,
    decompose_gates,
    merge_single_qubit_runs,
    optimize,
)
from repro.sim import simulate_reference


def _equivalent(a: Circuit, b: Circuit) -> bool:
    return simulate_reference(a).allclose(simulate_reference(b))


class TestDecompose:
    @pytest.mark.parametrize("builder", [
        lambda c: c.swap(0, 1),
        lambda c: c.ccx(0, 1, 2),
        lambda c: c.cswap(0, 1, 2),
        lambda c: c.rxx(0.7, 0, 2),
        lambda c: c.ryy(0.4, 1, 2),
        lambda c: c.add("ccz", [0, 1, 2]),
    ])
    def test_single_gate_decompositions_preserve_semantics(self, builder):
        circuit = Circuit(3)
        # Prepare a non-trivial input state so controls actually fire.
        circuit.h(0).h(1).h(2)
        builder(circuit)
        decomposed = decompose_gates(circuit)
        assert _equivalent(circuit, decomposed)
        names = {g.name for g in decomposed}
        assert not names & {"swap", "ccx", "cswap", "rxx", "ryy", "ccz"}

    def test_decompose_leaves_basis_gates_alone(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
        assert decompose_gates(circuit) == circuit

    @pytest.mark.parametrize("seed", range(3))
    def test_decompose_random_circuits(self, seed):
        circuit = random_circuit(5, 40, seed=seed)
        assert _equivalent(circuit, decompose_gates(circuit))


class TestCancellation:
    def test_self_inverse_pairs_removed(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1)
        out = cancel_adjacent_inverses(circuit)
        assert len(out) == 0

    def test_rotation_merging(self):
        circuit = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = cancel_adjacent_inverses(circuit)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_opposite_rotations_cancel(self):
        circuit = Circuit(1).rx(0.5, 0).rx(-0.5, 0)
        out = cancel_adjacent_inverses(circuit)
        assert len(out) == 0

    def test_non_adjacent_pairs_not_removed(self):
        circuit = Circuit(2).h(0).cx(0, 1).h(0)
        out = cancel_adjacent_inverses(circuit)
        assert len(out) == 3

    @pytest.mark.parametrize("seed", range(4))
    def test_cancellation_preserves_semantics(self, seed):
        circuit = random_circuit(5, 50, seed=seed)
        assert _equivalent(circuit, cancel_adjacent_inverses(circuit))


class TestMergeSingleQubitRuns:
    def test_run_merged_to_single_u3(self):
        circuit = Circuit(1).h(0).t(0).s(0).rx(0.3, 0)
        out = merge_single_qubit_runs(circuit)
        assert len(out) == 1
        assert out[0].name == "u3"
        assert _equivalent(circuit, out)

    def test_runs_bounded_by_two_qubit_gates(self):
        circuit = Circuit(2).h(0).t(0).cx(0, 1).h(0).s(0)
        out = merge_single_qubit_runs(circuit)
        # Two merged u3 runs around the cx.
        assert sum(1 for g in out if g.name == "u3") == 2
        assert _equivalent(circuit, out)

    def test_single_gates_left_alone(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        out = merge_single_qubit_runs(circuit)
        assert out[0].name == "h"

    @pytest.mark.parametrize("seed", range(4))
    def test_merge_preserves_semantics(self, seed):
        circuit = random_circuit(5, 40, seed=seed)
        assert _equivalent(circuit, merge_single_qubit_runs(circuit))


class TestOptimizePipeline:
    @pytest.mark.parametrize("builder", [qft, wstate])
    def test_optimize_preserves_semantics_on_families(self, builder):
        circuit = builder(7)
        assert _equivalent(circuit, optimize(circuit))

    @pytest.mark.parametrize("seed", range(3))
    def test_optimize_preserves_semantics_on_random(self, seed):
        circuit = random_circuit(6, 60, seed=seed)
        assert _equivalent(circuit, optimize(circuit))

    def test_optimize_does_not_grow_simple_circuits(self):
        circuit = Circuit(3).h(0).h(0).rz(0.2, 1).rz(-0.2, 1).cx(1, 2)
        out = optimize(circuit)
        assert len(out) <= len(circuit)

    def test_optimized_circuit_still_partitions(self):
        from repro.cluster import MachineConfig
        from repro.core import partition
        from repro.runtime import execute_plan

        circuit = optimize(random_circuit(9, 60, seed=7))
        machine = MachineConfig.for_circuit(9, num_gpus=4, local_qubits=6)
        plan, _ = partition(circuit, machine)
        out, _ = execute_plan(plan, machine=machine)
        assert simulate_reference(circuit).allclose(out)

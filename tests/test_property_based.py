"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import Circuit, from_qasm, make_gate, to_qasm
from repro.circuits.library import random_circuit
from repro.cluster import CostModel, MachineConfig
from repro.core import (
    KernelizeConfig,
    greedy_kernelize,
    kernelize,
    ordered_kernelize,
    snuqs_stage_circuit,
    stage_circuit,
)
from repro.ilp import IlpModel, lin_sum, solve_with_branch_and_bound, solve_with_scipy
from repro.runtime import QubitLayout, execute_plan, permute_state
from repro.sim import StateVector, apply_matrix, simulate_reference
from repro.circuits.gates import gate_matrix

# Hypothesis settings: these tests build circuits and run simulators, so we
# keep example counts modest and disable the too-slow health check.
SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_ONE_QUBIT_GATES = ["h", "x", "y", "z", "s", "t", "rx", "ry", "rz", "p"]
_TWO_QUBIT_GATES = ["cx", "cz", "cp", "swap", "rzz", "crz", "cry"]
_PARAM_COUNT = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "cp": 1, "rzz": 1, "crz": 1, "cry": 1}


@st.composite
def circuits(draw, min_qubits=3, max_qubits=6, max_gates=25):
    n = draw(st.integers(min_qubits, max_qubits))
    num_gates = draw(st.integers(1, max_gates))
    circuit = Circuit(n, name="hypothesis")
    for _ in range(num_gates):
        use_two = n >= 2 and draw(st.booleans())
        name = draw(st.sampled_from(_TWO_QUBIT_GATES if use_two else _ONE_QUBIT_GATES))
        qubits = draw(
            st.lists(st.integers(0, n - 1), min_size=2 if use_two else 1,
                     max_size=2 if use_two else 1, unique=True)
        )
        params = [
            draw(st.floats(0.01, 6.28, allow_nan=False, allow_infinity=False))
            for _ in range(_PARAM_COUNT.get(name, 0))
        ]
        circuit.add(name, qubits, params)
    return circuit


# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------


class TestSimulatorProperties:
    @given(circuits())
    @settings(**SETTINGS)
    def test_simulation_preserves_norm(self, circuit):
        state = simulate_reference(circuit)
        assert state.norm() == pytest.approx(1.0, abs=1e-9)

    @given(circuits(), st.integers(0, 2**32 - 1))
    @settings(**SETTINGS)
    def test_simulation_is_linear_in_global_phase(self, circuit, seed):
        init = StateVector.random_state(circuit.num_qubits, seed=seed % 1000)
        phased = StateVector(circuit.num_qubits, init.data * np.exp(0.321j))
        a = simulate_reference(circuit, init)
        b = simulate_reference(circuit, phased)
        assert a.allclose(b)

    @given(st.integers(1, 5), st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_apply_matrix_unitarity(self, num_qubits, seed):
        rng = np.random.default_rng(seed)
        state = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
        state /= np.linalg.norm(state)
        qubit = int(rng.integers(num_qubits))
        out = apply_matrix(state, gate_matrix("h"), [qubit])
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-9)

    @given(circuits(max_gates=15))
    @settings(**SETTINGS)
    def test_circuit_inverse_property(self, circuit):
        state = simulate_reference(circuit.compose(circuit.inverse()))
        assert abs(state.amplitude(0)) == pytest.approx(1.0, abs=1e-7)


# ---------------------------------------------------------------------------
# QASM round-trip
# ---------------------------------------------------------------------------


class TestQasmProperties:
    @given(circuits(max_gates=20))
    @settings(**SETTINGS)
    def test_roundtrip_preserves_state(self, circuit):
        parsed = from_qasm(to_qasm(circuit))
        assert len(parsed) == len(circuit)
        assert simulate_reference(circuit).allclose(simulate_reference(parsed))


# ---------------------------------------------------------------------------
# Partitioning invariants
# ---------------------------------------------------------------------------


class TestKernelizationProperties:
    @given(circuits(min_qubits=4, max_qubits=7, max_gates=30), st.sampled_from([4, 16]))
    @settings(**SETTINGS)
    def test_kernelize_covers_and_respects_dependencies(self, circuit, threshold):
        ks = kernelize(circuit, config=KernelizeConfig(pruning_threshold=threshold))
        assert sorted(ks.all_gate_indices()) == list(range(len(circuit)))
        assert circuit.is_topologically_equivalent(ks.all_gate_indices())

    @given(circuits(min_qubits=4, max_qubits=6, max_gates=25))
    @settings(**SETTINGS)
    def test_kernelize_cost_never_exceeds_naive(self, circuit):
        cm = CostModel()
        atlas = kernelize(circuit, cm, KernelizeConfig(pruning_threshold=64)).total_cost
        naive = ordered_kernelize(circuit, cm).total_cost
        assert atlas <= naive + 1e-9

    @given(circuits(min_qubits=4, max_qubits=6, max_gates=25))
    @settings(**SETTINGS)
    def test_greedy_kernels_respect_width(self, circuit):
        for kernel in greedy_kernelize(circuit, max_width=4):
            assert kernel.num_qubits <= 4


class TestStagingProperties:
    @given(circuits(min_qubits=5, max_qubits=7, max_gates=25))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_staged_execution_matches_reference(self, circuit):
        n = circuit.num_qubits
        machine = MachineConfig.for_circuit(n, num_gpus=4, local_qubits=n - 2)
        from repro.core import partition

        plan, _ = partition(circuit, machine,
                            kernelize_config=KernelizeConfig(pruning_threshold=8))
        plan.validate(circuit)
        out, _ = execute_plan(plan, machine=machine)
        assert simulate_reference(circuit).allclose(out)

    @given(circuits(min_qubits=5, max_qubits=7, max_gates=25))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_ilp_stage_count_at_most_heuristic(self, circuit):
        n = circuit.num_qubits
        local, regional = n - 2, 1
        global_ = n - local - regional
        ilp = stage_circuit(circuit, local, regional, global_)
        heuristic = snuqs_stage_circuit(circuit, local, regional, global_)
        assert ilp.num_stages <= heuristic.num_stages


# ---------------------------------------------------------------------------
# Layout permutations
# ---------------------------------------------------------------------------


class TestLayoutProperties:
    @given(st.integers(2, 6), st.permutations(list(range(6))), st.integers(0, 999))
    @settings(**SETTINGS)
    def test_permute_state_is_norm_preserving_and_reversible(self, n, perm, seed):
        perm = list(perm)[:n]
        if sorted(perm) != list(range(n)):
            perm = list(range(n))
        target = {q: perm[q] for q in range(n)}
        state = StateVector.random_state(n, seed=seed).data
        layout = QubitLayout(n)
        forward = permute_state(state, layout, target)
        assert np.linalg.norm(forward) == pytest.approx(1.0, abs=1e-9)
        back = permute_state(forward, QubitLayout(n, target), {q: q for q in range(n)})
        assert np.allclose(back, state)


# ---------------------------------------------------------------------------
# ILP backend agreement
# ---------------------------------------------------------------------------


class TestIlpProperties:
    @given(
        st.lists(st.integers(1, 6), min_size=3, max_size=7),
        st.integers(4, 12),
    )
    @settings(max_examples=20, deadline=None)
    def test_backends_agree_on_knapsack(self, weights, capacity):
        model = IlpModel("knapsack")
        xs = [model.binary_var(f"x{i}") for i in range(len(weights))]
        model.add_constraint(lin_sum(w * x for w, x in zip(weights, xs)) <= capacity)
        # Value equals weight: maximise packed weight.
        model.minimize(lin_sum(-w * x for w, x in zip(weights, xs)))
        a = solve_with_scipy(model)
        b = solve_with_branch_and_bound(model, time_limit=20)
        assert a.status.is_feasible and b.status.is_feasible
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

"""Tests for the state-vector simulation substrate (repro.sim)."""

import numpy as np
import pytest

from repro.circuits import Circuit, make_gate
from repro.circuits.library import random_circuit
from repro.sim import (
    StateVector,
    apply_diagonal,
    apply_matrix,
    expand_matrix,
    fused_unitary,
    kernel_qubits,
    simulate_reference,
)
from repro.circuits.gates import gate_matrix
from repro.sim.apply import qubit_axis
from repro.sim.fusion import apply_gate_sequence


def _kron_reference(matrix, qubits, num_qubits):
    """Dense reference: build the full 2^n unitary with Kronecker products."""
    full = expand_matrix(matrix, qubits, list(range(num_qubits)))
    return full


class TestApplyMatrix:
    def test_single_qubit_gate_on_each_position(self):
        n = 4
        h = gate_matrix("h")
        for q in range(n):
            state = np.zeros(2**n, dtype=complex)
            state[0] = 1.0
            out = apply_matrix(state, h, [q])
            expected = _kron_reference(h, [q], n) @ state
            assert np.allclose(out, expected)

    def test_two_qubit_gate_orderings(self):
        n = 3
        cx = gate_matrix("cx")
        rng = np.random.default_rng(0)
        state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        state /= np.linalg.norm(state)
        for qubits in ([0, 1], [1, 0], [0, 2], [2, 0], [1, 2], [2, 1]):
            out = apply_matrix(state, cx, qubits)
            expected = _kron_reference(cx, qubits, n) @ state
            assert np.allclose(out, expected), qubits

    def test_three_qubit_gate(self):
        n = 4
        ccx = gate_matrix("ccx")
        rng = np.random.default_rng(1)
        state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        out = apply_matrix(state, ccx, [3, 1, 0])
        expected = _kron_reference(ccx, [3, 1, 0], n) @ state
        assert np.allclose(out, expected)

    def test_norm_preserved(self):
        state = StateVector.random_state(5, seed=3).data
        out = apply_matrix(state, gate_matrix("h"), [2])
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_result_is_contiguous(self):
        state = StateVector.random_state(4, seed=0).data
        out = apply_matrix(state, gate_matrix("swap"), [0, 3])
        assert out.flags.c_contiguous

    def test_errors(self):
        state = np.zeros(8, dtype=complex)
        state[0] = 1
        with pytest.raises(ValueError):
            apply_matrix(state, gate_matrix("h"), [3])  # out of range
        with pytest.raises(ValueError):
            apply_matrix(state, gate_matrix("cx"), [1, 1])  # duplicate
        with pytest.raises(ValueError):
            apply_matrix(state, gate_matrix("cx"), [0])  # shape mismatch

    def test_qubit_axis(self):
        assert qubit_axis(5, 0) == 4
        assert qubit_axis(5, 4) == 0


class TestApplyDiagonal:
    def test_matches_full_matrix_single_qubit(self):
        n = 3
        rz = gate_matrix("rz", [0.7])
        state = StateVector.random_state(n, seed=5).data
        expected = apply_matrix(state, rz, [1])
        inplace = state.copy()
        apply_diagonal(inplace, np.diag(rz).copy(), [1], out=inplace)
        assert np.allclose(inplace, expected)

    def test_pure_call_leaves_input_unmodified(self):
        rz = gate_matrix("rz", [0.7])
        state = StateVector.random_state(3, seed=5).data
        before = state.copy()
        result = apply_diagonal(state, np.diag(rz).copy(), [1])
        assert np.allclose(state, before)
        assert np.allclose(result, apply_matrix(state, rz, [1]))

    def test_matches_full_matrix_two_qubit(self):
        n = 4
        cp = gate_matrix("cp", [1.1])
        for qubits in ([0, 2], [2, 0], [3, 1]):
            state = StateVector.random_state(n, seed=6).data
            expected = apply_matrix(state, cp, qubits)
            inplace = state.copy()
            apply_diagonal(inplace, np.diag(cp).copy(), qubits, out=inplace)
            assert np.allclose(inplace, expected), qubits

    def test_wrong_length_raises(self):
        state = np.ones(4, dtype=complex)
        with pytest.raises(ValueError):
            apply_diagonal(state, np.ones(4, dtype=complex), [0])


class TestExpandMatrix:
    def test_identity_embedding(self):
        h = gate_matrix("h")
        expanded = expand_matrix(h, [0], [0, 1])
        assert expanded.shape == (4, 4)
        assert np.allclose(expanded, np.kron(np.eye(2), h))

    def test_embedding_on_high_qubit(self):
        h = gate_matrix("h")
        expanded = expand_matrix(h, [1], [0, 1])
        assert np.allclose(expanded, np.kron(h, np.eye(2)))

    def test_embedding_preserves_unitarity(self):
        cx = gate_matrix("cx")
        expanded = expand_matrix(cx, [2, 0], [0, 1, 2])
        assert np.allclose(expanded @ expanded.conj().T, np.eye(8), atol=1e-12)

    def test_missing_qubits_raise(self):
        with pytest.raises(ValueError):
            expand_matrix(gate_matrix("cx"), [0, 3], [0, 1])


class TestFusion:
    def test_kernel_qubits(self):
        gates = [make_gate("h", [2]), make_gate("cx", [0, 4])]
        assert kernel_qubits(gates) == (0, 2, 4)

    def test_fused_unitary_matches_sequential(self):
        circuit = random_circuit(5, 25, seed=9)
        fused, qubits = fused_unitary(circuit.gates)
        state = StateVector.zero_state(5)
        state.apply_matrix(fused, qubits)
        expected = simulate_reference(circuit)
        assert expected.allclose(state)

    def test_fused_unitary_is_unitary(self):
        circuit = random_circuit(4, 15, seed=2)
        fused, qubits = fused_unitary(circuit.gates)
        dim = 2 ** len(qubits)
        assert np.allclose(fused @ fused.conj().T, np.eye(dim), atol=1e-9)

    def test_fused_unitary_explicit_qubit_order(self):
        gates = [make_gate("cx", [0, 1])]
        m1, q1 = fused_unitary(gates, qubits=[0, 1])
        m2, q2 = fused_unitary(gates, qubits=[1, 0])
        assert q1 != q2
        assert not np.allclose(m1, m2)  # different bit conventions

    def test_apply_gate_sequence(self):
        circuit = random_circuit(4, 12, seed=4)
        state = np.zeros(16, dtype=complex)
        state[0] = 1
        out = apply_gate_sequence(state, circuit.gates)
        assert np.allclose(out, simulate_reference(circuit).data)


class TestStateVector:
    def test_zero_state(self):
        s = StateVector.zero_state(3)
        assert s.amplitude(0) == 1.0
        assert s.is_normalized()

    def test_basis_state(self):
        s = StateVector.basis_state(3, 5)
        assert s.amplitude(5) == 1.0
        with pytest.raises(ValueError):
            StateVector.basis_state(2, 7)

    def test_random_state_normalized_and_deterministic(self):
        a = StateVector.random_state(4, seed=1)
        b = StateVector.random_state(4, seed=1)
        assert a.is_normalized()
        assert np.allclose(a.data, b.data)

    def test_bad_data_length(self):
        with pytest.raises(ValueError):
            StateVector(2, np.ones(3))

    def test_apply_gate_and_circuit(self):
        s = StateVector.zero_state(2)
        s.apply_gate(make_gate("h", [0]))
        s.apply_gate(make_gate("cx", [1, 0]))
        assert s.probabilities()[0] == pytest.approx(0.5)
        assert s.probabilities()[3] == pytest.approx(0.5)

    def test_probabilities_sum_to_one(self):
        s = StateVector.random_state(5, seed=7)
        assert s.probabilities().sum() == pytest.approx(1.0)

    def test_marginal_probabilities(self):
        # Bell state on qubits 0,1 of a 3-qubit register.
        c = Circuit(3).h(0).cx(0, 1)
        s = simulate_reference(c)
        marginal = s.marginal_probabilities([0, 1])
        assert marginal[0] == pytest.approx(0.5)
        assert marginal[3] == pytest.approx(0.5)
        single = s.marginal_probabilities([2])
        assert single[0] == pytest.approx(1.0)

    def test_marginal_qubit_order(self):
        c = Circuit(2).x(1)
        s = simulate_reference(c)
        assert s.marginal_probabilities([1])[1] == pytest.approx(1.0)
        assert s.marginal_probabilities([0])[0] == pytest.approx(1.0)

    def test_expectation_z(self):
        s = simulate_reference(Circuit(2).x(0))
        assert s.expectation_z(0) == pytest.approx(-1.0)
        assert s.expectation_z(1) == pytest.approx(1.0)

    def test_sampling_distribution(self):
        s = simulate_reference(Circuit(1).h(0))
        samples = s.sample(4000, seed=0)
        assert 0.4 < np.mean(samples) < 0.6

    def test_fidelity_and_allclose(self):
        a = StateVector.random_state(3, seed=0)
        b = a.copy()
        assert a.fidelity(b) == pytest.approx(1.0)
        # Global phase is ignored by allclose but not by raw data comparison.
        c = StateVector(3, a.data * np.exp(0.3j))
        assert a.allclose(c)
        assert not a.allclose(c, up_to_global_phase=False)
        d = StateVector.random_state(3, seed=9)
        assert a.fidelity(d) < 0.99
        with pytest.raises(ValueError):
            a.fidelity(StateVector.zero_state(2))


class TestReferenceSimulator:
    def test_initial_state_not_modified(self):
        c = Circuit(2).h(0)
        init = StateVector.zero_state(2)
        simulate_reference(c, init)
        assert init.amplitude(0) == 1.0

    def test_custom_initial_state(self):
        c = Circuit(2).x(0)
        init = StateVector.basis_state(2, 1)
        out = simulate_reference(c, init)
        assert abs(out.amplitude(0)) == pytest.approx(1.0)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            simulate_reference(Circuit(3).h(0), StateVector.zero_state(2))

    def test_unitarity_on_random_circuits(self):
        for seed in range(3):
            c = random_circuit(6, 50, seed=seed)
            assert simulate_reference(c).is_normalized()

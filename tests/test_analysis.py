"""Tests for the experiment drivers and reporting helpers (repro.analysis)."""

import pytest

from repro.analysis import (
    figure5_weak_scaling,
    figure6_breakdown,
    figure7_offloading,
    figure8_offload_scaling,
    figure9_staging,
    figure10_kernelization,
    figure13_pruning_threshold,
    figure14_24_per_circuit_cost,
    figure25_hhl_case_study,
    figure26_36_preprocessing_time,
    format_series,
    format_table,
    geometric_mean,
    table1_circuit_sizes,
)

# Every driver is exercised at a reduced scale so the whole file stays fast;
# the benchmark harness runs the paper-scale configurations.
SMALL_FAMILIES = ("ghz", "qft", "ising")


class TestReporting:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="x")

    def test_format_series(self):
        text = format_series("gpus", [1, 2], {"atlas": [0.1, 0.2], "hyquas": [0.3, 0.4]})
        assert "gpus" in text
        assert "atlas" in text


class TestTable1:
    def test_gate_counts_grow_with_qubits(self):
        rows = table1_circuit_sizes(families=SMALL_FAMILIES, qubit_range=[8, 10, 12])
        assert len(rows) == 3
        for row in rows:
            assert row["8"] <= row["10"] <= row["12"]


class TestFigure5And6:
    def test_weak_scaling_shape(self):
        results = figure5_weak_scaling(
            families=("ghz", "qft"),
            gpu_counts=(1, 4),
            local_qubits=10,
            pruning_threshold=8,
        )
        assert set(results) == {"ghz", "qft"}
        for rows in results.values():
            assert [r["gpus"] for r in rows] == [1, 4]
            for row in rows:
                assert row["atlas"] > 0
                assert row["hyquas"] > 0
                assert row["speedup_vs_best_baseline"] > 0

    def test_breakdown_rows(self):
        rows = figure6_breakdown(
            families=("ghz", "qft"), gpu_counts=(1, 4), local_qubits=10,
            pruning_threshold=8,
        )
        assert len(rows) == 2
        # Single-GPU runs have no inter-GPU communication.
        assert rows[0]["comm_fraction"] == pytest.approx(0.0, abs=1e-9)
        assert 0.0 <= rows[1]["comm_fraction"] <= 1.0


class TestFigure7And8:
    def test_offloading_speedup_positive(self):
        rows = figure7_offloading(qubit_range=(12, 14), local_qubits=12,
                                  pruning_threshold=8)
        assert len(rows) == 2
        for row in rows:
            assert row["atlas_s"] > 0
            assert row["qdao_s"] > 0
        # Once the state outgrows the GPU, Atlas should win clearly.
        assert rows[-1]["speedup"] > 1.0

    def test_offload_scaling_atlas_improves_with_gpus(self):
        rows = figure8_offload_scaling(num_qubits=14, local_qubits=10,
                                       gpu_counts=(1, 4), pruning_threshold=8)
        assert rows[0]["gpus"] == 1 and rows[1]["gpus"] == 4
        assert rows[1]["atlas_s"] <= rows[0]["atlas_s"] * 1.05
        assert rows[1]["qdao_s"] == pytest.approx(rows[0]["qdao_s"], rel=0.01)


class TestFigure9:
    def test_atlas_never_worse_than_snuqs(self):
        rows = figure9_staging(
            num_qubits=10,
            local_qubit_range=[6, 8],
            families=("qft", "ising", "wstate"),
        )
        assert len(rows) == 2
        for row in rows:
            assert row["atlas_geomean_stages"] <= row["snuqs_geomean_stages"] + 1e-9


class TestKernelizationFigures:
    def test_figure10_relative_cost_below_one(self):
        rows = figure10_kernelization(families=("qft", "ghz"), qubit_range=(10, 12),
                                      pruning_threshold=16)
        by_name = {r["circuit"]: r["relative_cost"] for r in rows}
        assert by_name["qft"] < 1.0
        assert by_name["geomean"] <= 1.0

    def test_figure13_threshold_sweep(self):
        rows = figure13_pruning_threshold(thresholds=(4, 32), families=("qft",),
                                          num_qubits=10)
        assert rows[-1]["threshold"] == "naive"
        numeric = [r for r in rows if isinstance(r["threshold"], int)]
        assert numeric[1]["relative_cost"] <= numeric[0]["relative_cost"] + 1e-9
        assert all(r["preprocessing_s"] >= 0 for r in rows)

    def test_figure14_24_per_circuit(self):
        rows = figure14_24_per_circuit_cost("qft", qubit_range=(10, 12),
                                            pruning_threshold=16)
        for row in rows:
            assert row["atlas"] <= row["atlas_naive"] * 1.01
            assert row["atlas"] <= row["greedy"] * 1.01

    def test_figure25_hhl_case_study(self):
        rows = figure25_hhl_case_study(hhl_sizes=(4, 5), pruning_threshold=8)
        assert [r["qubits"] for r in rows] == [4, 5]
        assert rows[1]["gates"] > rows[0]["gates"]
        for row in rows:
            assert row["atlas"] <= row["greedy"] * 1.01

    def test_figure26_36_preprocessing(self):
        rows = figure26_36_preprocessing_time("ghz", qubit_range=(10, 12),
                                              pruning_threshold=8)
        for row in rows:
            assert row["atlas_s"] > 0
            assert row["atlas_naive_s"] > 0
            assert row["greedy_s"] > 0

"""End-to-end integration tests across the full pipeline.

These tests exercise the exact code paths the benchmark harness uses —
circuit library → ILP staging → DP kernelization → staged execution /
DRAM offload → timing model — and validate numerical results against the
reference simulator at sizes small enough to materialise.
"""

import pytest

from repro import KernelizeConfig, MachineConfig, simulate
from repro.baselines import AtlasSimulator, HyQuasSimulator
from repro.circuits.library import PAPER_FAMILIES, get_circuit, hhl
from repro.core import partition
from repro.runtime import execute_plan, execute_plan_offloaded, model_simulation_time
from repro.sim import simulate_reference

FAST_CONFIG = KernelizeConfig(pruning_threshold=8)


class TestAllFamiliesEndToEnd:
    @pytest.mark.parametrize("family", PAPER_FAMILIES)
    def test_family_on_four_gpu_machine(self, family):
        num_qubits = 10
        circuit = get_circuit(family, num_qubits)
        machine = MachineConfig.for_circuit(num_qubits, num_gpus=4, local_qubits=7)
        result = simulate(circuit, machine, kernelize_config=FAST_CONFIG)
        assert simulate_reference(circuit).allclose(result.state)
        result.plan.validate(circuit)
        assert result.timing.total_seconds > 0

    @pytest.mark.parametrize("family", ["qft", "ising", "su2random"])
    def test_family_on_multi_node_machine(self, family):
        # 2 nodes x 2 GPUs: exercises regional *and* global qubits.
        num_qubits = 11
        circuit = get_circuit(family, num_qubits)
        machine = MachineConfig.for_circuit(
            num_qubits, num_gpus=4, local_qubits=9, gpus_per_node=2
        )
        assert machine.global_qubits == 1 and machine.regional_qubits == 1
        plan, report = partition(circuit, machine, kernelize_config=FAST_CONFIG)
        out, _ = execute_plan(plan, machine=machine)
        assert simulate_reference(circuit).allclose(out)
        assert report.num_stages == plan.num_stages

    def test_hhl_case_study_end_to_end(self):
        circuit = hhl(7)
        machine = MachineConfig.for_circuit(7, num_gpus=1, local_qubits=7)
        result = simulate(circuit, machine, kernelize_config=FAST_CONFIG)
        assert simulate_reference(circuit).allclose(result.state)
        assert result.plan.num_stages == 1


class TestOffloadConsistency:
    @pytest.mark.parametrize("family", ["qft", "ising", "wstate", "qsvm"])
    def test_offload_matches_in_memory_execution(self, family):
        num_qubits = 11
        circuit = get_circuit(family, num_qubits)
        # Tiny "GPU": 2^7 amplitudes; 16 shards stream through it.
        machine = MachineConfig.for_circuit(num_qubits, num_gpus=1, local_qubits=7)
        plan, _ = partition(circuit, machine, kernelize_config=FAST_CONFIG)
        in_memory, _ = execute_plan(plan, machine=machine)
        offloaded, stats = execute_plan_offloaded(plan, machine)
        assert in_memory.allclose(offloaded)
        assert stats.shard_loads >= plan.num_stages * stats.num_shards

    def test_offload_timing_reports_pcie_component(self):
        num_qubits = 12
        circuit = get_circuit("qft", num_qubits)
        machine = MachineConfig.for_circuit(
            num_qubits, num_gpus=1, local_qubits=8,
            gpu_memory_bytes=(1 << 8) * 16,
        )
        plan, _ = partition(circuit, machine, kernelize_config=FAST_CONFIG)
        timing = model_simulation_time(plan, machine)
        assert timing.offload_seconds > 0
        assert timing.total_seconds > timing.computation_seconds


class TestWeakScalingShape:
    def test_atlas_speedup_over_baselines_grows_with_gpus(self):
        """The qualitative Figure 5 claim at reduced scale.

        As the machine grows from 1 GPU to 16 GPUs (weak scaling), Atlas's
        advantage over the greedy-staged baseline should not shrink, because
        the ILP keeps the number of all-to-all exchanges minimal.
        """
        local = 10
        speedups = []
        for gpus in (1, 16):
            non_local = gpus.bit_length() - 1
            n = local + non_local
            circuit = get_circuit("ising", n)
            machine = MachineConfig.for_circuit(n, num_gpus=gpus, local_qubits=local)
            atlas = AtlasSimulator(pruning_threshold=8).model_time(circuit, machine)
            hyquas = HyQuasSimulator().model_time(circuit, machine)
            speedups.append(hyquas.total_seconds / atlas.total_seconds)
        assert speedups[-1] >= speedups[0] * 0.8
        assert speedups[-1] >= 1.0

    def test_more_gpus_do_not_slow_down_atlas(self):
        # Strong-ish scaling sanity: same circuit, more GPUs → no slower.
        n = 12
        circuit = get_circuit("qft", n)
        t_prev = None
        for gpus in (1, 4):
            machine = MachineConfig.for_circuit(n, num_gpus=gpus, local_qubits=n - 2 if gpus > 1 else n)
            timing = AtlasSimulator(pruning_threshold=8).model_time(circuit, machine)
            if t_prev is not None:
                assert timing.computation_seconds <= t_prev.computation_seconds * 1.5
            t_prev = timing

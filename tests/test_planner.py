"""Tests for the planning pipeline: PassManager, presets, pass registry.

Four properties are pinned here:

1. **Fast-DP equivalence** — the bitmask beam DP
   (:func:`repro.core.fast_kernelize`) selects the *identical*
   kernelization (cost and kernel boundaries) as the reference
   implementation for every configuration, which is what lets the presets
   substitute it without a quality gate.
2. **Preset correctness** — every registered preset produces
   ``ExecutionPlan.validate()``-clean plans that execute to the reference
   state across library circuits, machine shapes, and the
   incore/offload/parallel execution paths.
3. **Cache isolation** — the structural plan cache keys on the *full*
   pipeline configuration: two presets on the same circuit never share an
   entry, so a cached plan can never be rebound by a different pipeline.
4. **Telemetry** — per-pass timings, skip reasons and quality metrics
   surface through ``PartitionReport``, ``Result.report`` /
   ``Result.summary()``, plan provenance, and ``SessionStats.as_dict()``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import MachineConfig, Session, simulate_reference
from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz, qft, vqc
from repro.circuits.library.random_circuits import random_circuit
from repro.cluster.costmodel import CostModel
from repro.core import KernelizeConfig, fast_kernelize, kernelize, partition
from repro.core.kernel import KernelSequence
from repro.core.ordered_kernelize import ordered_kernelize
from repro.planner import (
    KERNELIZERS,
    PASSES,
    PRESETS,
    PassManager,
    PlanningPass,
    available_presets,
    build_plan,
    legacy_pipeline,
    register_pass,
    register_preset,
    resolve_planner,
)

FAST_CONFIG = KernelizeConfig(pruning_threshold=8)

#: (circuit factory, qubits) families the differential tests sweep.
FAMILIES = [(qft, 8), (ghz, 8), (vqc, 8)]

#: Machine shapes: in-core sharded, fits-locally (single shard), offload-ish.
def _machines(n: int) -> list[MachineConfig]:
    return [
        MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2),
        MachineConfig.for_circuit(n, num_shards=1),
    ]


def _boundaries(seq: KernelSequence) -> list[tuple[int, ...]]:
    return sorted(tuple(k.gate_indices) for k in seq)


# ---------------------------------------------------------------------------
# 1. Fast-DP equivalence
# ---------------------------------------------------------------------------


class TestFastKernelizeEquivalence:
    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_library_stages_identical(self, family, n):
        circuit = family(n)
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        plan, _ = partition(circuit, machine, kernelize_config=FAST_CONFIG)
        for threshold in (100, 8, 2):
            config = KernelizeConfig(pruning_threshold=threshold)
            for stage in plan.stages:
                ref = kernelize(stage.gates, config=config)
                fast = fast_kernelize(stage.gates, config=config)
                assert abs(ref.total_cost - fast.total_cost) < 1e-12
                assert _boundaries(ref) == _boundaries(fast)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits_identical(self, seed):
        circuit = random_circuit(6, 30, seed=seed)
        for config in (
            KernelizeConfig(),
            KernelizeConfig(subsume=False),
            KernelizeConfig(max_kernel_width=4),
            KernelizeConfig(pruning_threshold=3),
        ):
            ref = kernelize(circuit, config=config)
            fast = fast_kernelize(circuit, config=config)
            assert abs(ref.total_cost - fast.total_cost) < 1e-12
            assert _boundaries(ref) == _boundaries(fast)

    def test_custom_cost_model(self):
        cheap_wide = CostModel(
            fusion_cost_per_qubits={0: 0.2, 1: 0.4, 2: 0.5, 3: 0.6, 4: 0.7,
                                    5: 0.8, 6: 1.0, 7: 1.4, 8: 2.0, 9: 3.0, 10: 5.0},
            max_fusion_qubits=6,
        )
        for seed in range(4):
            circuit = random_circuit(6, 25, seed=100 + seed)
            ref = kernelize(circuit, cheap_wide)
            fast = fast_kernelize(circuit, cheap_wide)
            assert abs(ref.total_cost - fast.total_cost) < 1e-12
            assert _boundaries(ref) == _boundaries(fast)

    def test_empty_stage(self):
        assert len(fast_kernelize([])) == 0


# ---------------------------------------------------------------------------
# 2. Preset differential correctness
# ---------------------------------------------------------------------------


class TestPresetPlans:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("family,n", FAMILIES + [(lambda n: random_circuit(n, 24, seed=5), 8)])
    def test_presets_validate_and_match_reference(self, preset, family, n):
        circuit = family(n)
        reference = simulate_reference(circuit)
        for machine in _machines(n):
            plan, report = build_plan(circuit, machine, planner=preset)
            plan.validate(circuit)
            with Session(machine, backend="incore", planner=preset) as session:
                result = session.run(circuit).result()
            assert reference.allclose(result.state)
            assert report.total_kernel_cost > 0

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_presets_offload_and_parallel_paths(self, preset):
        n = 8
        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 4)
        reference = simulate_reference(circuit)
        states = {}
        for backend in ("incore", "offload", "parallel"):
            with Session(machine, backend=backend, planner=preset) as session:
                result = session.run(circuit).result()
                result.plan.validate(circuit)
                assert reference.allclose(result.state)
                states[backend] = result.state.data.copy()
        # The shard-streaming paths are bit-exact with each other.
        assert np.array_equal(states["offload"], states["parallel"])

    def test_quality_never_worse_than_fast(self):
        for family, n in FAMILIES:
            circuit = family(n)
            machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
            _, fast_report = build_plan(circuit, machine, planner="fast")
            _, balanced_report = build_plan(circuit, machine, planner="balanced")
            _, quality_report = build_plan(circuit, machine, planner="quality")
            assert (
                balanced_report.total_kernel_cost
                <= fast_report.total_kernel_cost + 1e-9
            )
            assert (
                quality_report.total_kernel_cost
                <= balanced_report.total_kernel_cost + 1e-9
            )

    def test_fast_preset_matches_seed_cost(self):
        # The fast preset's shortcuts are lossless: same kernel cost as the
        # legacy (seed) planner configuration on every tested family/shape.
        for family, n in FAMILIES:
            circuit = family(n)
            for machine in _machines(n):
                _, seed_report = legacy_pipeline().run(circuit, machine)
                _, fast_report = build_plan(circuit, machine, planner="fast")
                assert (
                    abs(fast_report.total_kernel_cost - seed_report.total_kernel_cost)
                    < 1e-9
                )

    def test_fits_locally_shortcut(self):
        n = 8
        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_shards=1)
        plan, report = build_plan(circuit, machine, planner="fast")
        plan.validate(circuit)
        assert plan.num_stages == 1
        assert "stage" in report.passes_skipped
        assert "fits locally" in report.passes_skipped["stage"]
        assert report.pass_metrics["stage"]["solver_status"] == "fits-locally"
        assert report.pass_metrics["stage"]["num_solves"] == 0

    def test_lower_bound_start_skips_infeasible_solves(self):
        n = 8
        circuit = qft(n)  # every qubit in the non-insular union
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        plan, report = build_plan(circuit, machine, planner="fast")
        metrics = report.pass_metrics["stage"]
        assert metrics["min_stages_start"] == 2  # ceil(8 / 6)
        assert metrics["num_solves"] == plan.num_stages - metrics["min_stages_start"] + 1

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown planner preset"):
            resolve_planner("warp-speed")
        with pytest.raises(TypeError):
            resolve_planner(42)

    def test_planner_and_legacy_knobs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            Session(planner="fast", kernelize_config=FAST_CONFIG)


# ---------------------------------------------------------------------------
# 3. Cache isolation across pipelines
# ---------------------------------------------------------------------------


class TestPlannerCacheKeys:
    def test_two_presets_do_not_share_cache_entries(self):
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        circuit = vqc(n, seed=0)
        with Session(machine, backend="incore") as session:
            session.run(circuit, planner="fast")
            assert session.stats.plans_built == 1
            # Same circuit, different preset: must *not* hit the fast
            # preset's entry — a different pipeline may produce a different
            # plan, and rebinding across pipelines would corrupt provenance
            # and quality guarantees.
            session.run(circuit, planner="quality")
            assert session.stats.plans_built == 2
            assert session.stats.cache_hits == 0
            # Re-running either preset is a hit within its own entry.
            session.run(vqc(n, seed=1), planner="fast")
            session.run(vqc(n, seed=2), planner="quality")
            assert session.stats.plans_built == 2
            assert session.stats.cache_hits == 2

    def test_option_change_changes_key(self):
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        circuit = vqc(n, seed=0)
        with Session(machine, backend="incore") as session:
            session.run(circuit, planner=legacy_pipeline(kernelize_config=FAST_CONFIG))
            session.run(
                circuit,
                planner=legacy_pipeline(
                    kernelize_config=KernelizeConfig(pruning_threshold=9)
                ),
            )
            assert session.stats.plans_built == 2
            assert session.stats.cache_hits == 0

    def test_session_default_is_balanced(self):
        session = Session()
        assert session.planner.preset == "balanced"
        session.close()

    def test_legacy_knobs_build_legacy_pipeline(self):
        session = Session(kernelize_config=FAST_CONFIG)
        assert session.planner.preset == ""
        names = session.planner.pass_names()
        assert "refine" not in names
        session.close()

    def test_signature_covers_full_configuration(self):
        a = resolve_planner("fast").signature()
        b = resolve_planner("balanced").signature()
        c = resolve_planner("fast").signature()
        assert a != b
        assert a == c
        assert hash(a) is not None


# ---------------------------------------------------------------------------
# 4. Telemetry surfaces
# ---------------------------------------------------------------------------


class TestPlanningTelemetry:
    def test_report_carries_pass_telemetry(self):
        n = 8
        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        _, report = build_plan(circuit, machine, planner="quality")
        assert report.preset == "quality"
        assert report.pipeline == (
            "analyze", "stage", "kernelize", "refine", "finalize", "verify",
        )
        assert set(report.pass_seconds) == set(report.pipeline)
        assert all(s >= 0.0 for s in report.pass_seconds.values())
        kernelize_metrics = report.pass_metrics["kernelize"]
        assert kernelize_metrics["total_kernel_cost"] > 0
        assert len(kernelize_metrics["stage_kernel_costs"]) == report.num_stages
        refine = report.pass_metrics["refine"]
        assert refine["stages_improved"] >= 0
        as_dict = report.as_dict()
        assert as_dict["preset"] == "quality"
        assert as_dict["planning_seconds"] >= as_dict["staging_seconds"]

    def test_result_and_stats_surface_telemetry(self):
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=1)
        with Session(machine, backend="incore", planner="fast") as session:
            job = session.run([vqc(n, seed=0), vqc(n, seed=1)])
            first, second = job.results()
            # The cold plan carries the report; the cache hit does not (no
            # planning happened), but both carry plan provenance.
            assert first.report is not None
            assert second.report is None
            assert first.summary()["planning"]["preset"] == "fast"
            assert first.plan.provenance["preset"] == "fast"
            assert second.plan.provenance["preset"] == "fast"
            assert second.cache_hit
            stats = session.stats.as_dict()
            assert stats["planning_pass_seconds"]["kernelize"] >= 0.0
            # The fits-locally shortcut fired once (one cold plan).
            assert stats["planning_passes_skipped"] == {"stage": 1}

    def test_provenance_in_plan_summary(self):
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        plan, _ = build_plan(ghz(n), machine, planner="balanced")
        summary = plan.summary()
        assert summary["provenance"]["preset"] == "balanced"
        assert summary["provenance"]["pipeline"][0] == "analyze"


# ---------------------------------------------------------------------------
# Extension points
# ---------------------------------------------------------------------------


class TestExtensionPoints:
    def test_register_pass_and_preset(self):
        class CountingPass(PlanningPass):
            name = "count-gates"

            def run(self, ctx, record):
                record.metrics["counted"] = len(ctx.circuit)

        register_pass("count-gates", CountingPass())
        try:
            manager = PassManager(
                [
                    ("analyze", {}),
                    ("count-gates", {}),
                    ("stage", {}),
                    ("kernelize", {}),
                    ("finalize", {}),
                ],
                preset="counted",
            )
            register_preset("counted", lambda: manager)
            try:
                assert "counted" in available_presets()
                n = 8
                circuit = ghz(n)
                machine = MachineConfig.for_circuit(n, num_shards=1)
                plan, report = build_plan(circuit, machine, planner="counted")
                plan.validate(circuit)
                assert report.pass_metrics["count-gates"]["counted"] == len(circuit)
            finally:
                del PRESETS["counted"]
        finally:
            del PASSES["count-gates"]

    def test_registered_kernelizers_present(self):
        assert {"atlas", "atlas-ref", "atlas-naive", "greedy"} <= set(KERNELIZERS)

    def test_preprocess_pass_shrinks_and_stays_correct(self):
        n = 6
        circuit = Circuit(n, name="redundant")
        for q in range(n):
            circuit.h(q)
            circuit.h(q)  # cancels
            circuit.rx(0.4, q)
        for q in range(n - 1):
            circuit.cx(q, q + 1)
        machine = MachineConfig.for_circuit(n, num_shards=1)
        manager = PassManager(
            [
                ("preprocess", {}),
                ("analyze", {}),
                ("stage", {}),
                ("kernelize", {}),
                ("finalize", {"validate": True}),
            ]
        )
        plan, report = manager.run(circuit, machine)
        metrics = report.pass_metrics["preprocess"]
        assert metrics["gates_after"] < metrics["gates_before"]
        assert plan.gate_count() == metrics["gates_after"]
        from repro.runtime import execute_plan

        state, _ = execute_plan(plan, machine=machine)
        assert simulate_reference(circuit).allclose(state)

    def test_preprocess_pass_keeps_original_when_no_reduction(self):
        n = 6
        circuit = ghz(n)  # nothing to cancel or merge
        machine = MachineConfig.for_circuit(n, num_shards=1)
        manager = PassManager(
            [
                ("preprocess", {}),
                ("analyze", {}),
                ("stage", {}),
                ("kernelize", {}),
                ("finalize", {"validate": True}),
            ]
        )
        plan, report = manager.run(circuit, machine)
        assert "preprocess" in report.passes_skipped
        assert plan.gate_count() == len(circuit)

    def test_unknown_pass_raises(self):
        manager = PassManager([("no-such-pass", {})])
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=1)
        with pytest.raises(ValueError, match="unknown planning pass"):
            manager.run(ghz(n), machine)

    def test_pipeline_without_finalize_raises(self):
        manager = PassManager([("analyze", {}), ("stage", {}), ("kernelize", {})])
        n = 8
        machine = MachineConfig.for_circuit(n, num_shards=1)
        with pytest.raises(RuntimeError, match="finalize"):
            manager.run(ghz(n), machine)


# ---------------------------------------------------------------------------
# Refine pass behaviour
# ---------------------------------------------------------------------------


class TestRefinePass:
    def test_refine_improves_or_keeps(self):
        # Kernelize with the weak greedy packer, then refine with the
        # ordered DP: the refined cost must be <= the greedy cost.
        n = 8
        circuit = qft(n)
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        greedy_manager = PassManager(
            [
                ("analyze", {}),
                ("stage", {}),
                ("kernelize", {"kernelizer": "greedy"}),
                ("finalize", {}),
            ]
        )
        refined_manager = PassManager(
            [
                ("analyze", {}),
                ("stage", {}),
                ("kernelize", {"kernelizer": "greedy"}),
                ("refine", {"strategies": ("ordered",)}),
                ("finalize", {}),
            ]
        )
        _, greedy_report = greedy_manager.run(circuit, machine)
        plan, refined_report = refined_manager.run(circuit, machine)
        plan.validate(circuit)
        assert refined_report.total_kernel_cost <= greedy_report.total_kernel_cost + 1e-12
        assert refined_report.pass_metrics["refine"]["stages_improved"] >= 1
        # The refined plan still executes correctly.
        reference = simulate_reference(circuit)
        with Session(machine, backend="incore", planner=refined_manager) as session:
            assert reference.allclose(session.run(circuit).result().state)

    def test_refine_budget_exhaustion_records_skips(self):
        n = 8
        circuit = vqc(n, seed=0)
        machine = MachineConfig.for_circuit(n, num_shards=4, local_qubits=n - 2)
        manager = PassManager(
            [
                ("analyze", {}),
                ("stage", {}),
                ("kernelize", {"kernelizer": "greedy"}),
                ("refine", {"strategies": ("ordered",)}),
                ("finalize", {}),
            ],
            time_budget=0.0,  # already expired when refine starts
        )
        plan, report = manager.run(circuit, machine)
        plan.validate(circuit)
        refine = report.pass_metrics["refine"]
        assert refine["stages_improved"] == 0
        assert refine["stages_skipped_budget"] >= 1
        assert "refine" in report.passes_skipped

"""Tests for the baseline simulator models and the top-level simulate() API."""

import pytest

import repro
from repro import MachineConfig, simulate
from repro.baselines import (
    AtlasSimulator,
    CuQuantumSimulator,
    HyQuasSimulator,
    QdaoSimulator,
    QiskitAerSimulator,
    SIMULATORS,
    make_simulator,
)
from repro.circuits.library import ghz, ising, qft
from repro.runtime import execute_plan
from repro.sim import simulate_reference


class TestRegistry:
    def test_registry_contents(self):
        assert set(SIMULATORS) == {"atlas", "hyquas", "cuquantum", "qiskit"}

    def test_make_simulator(self):
        sim = make_simulator("hyquas")
        assert isinstance(sim, HyQuasSimulator)
        with pytest.raises(ValueError, match="unknown simulator"):
            make_simulator("quest")


class TestBaselinePlans:
    @pytest.mark.parametrize("sim_cls", [AtlasSimulator, HyQuasSimulator,
                                         CuQuantumSimulator, QiskitAerSimulator])
    def test_plans_are_functionally_correct(self, sim_cls, small_machine):
        circuit = qft(10)
        sim = sim_cls()
        if isinstance(sim, AtlasSimulator):
            sim = AtlasSimulator(pruning_threshold=16)
        plan = sim.partition(circuit, small_machine)
        out, _ = execute_plan(plan, machine=small_machine, check_locality=False)
        assert simulate_reference(circuit).allclose(out)
        # Every gate is covered exactly once.
        assert plan.gate_count() == len(circuit)

    @pytest.mark.parametrize("name", sorted(SIMULATORS))
    def test_model_time_positive(self, name, small_machine):
        kwargs = {"pruning_threshold": 16} if name == "atlas" else {}
        sim = make_simulator(name, **kwargs)
        tb = sim.model_time(qft(10), small_machine)
        assert tb.total_seconds > 0
        assert tb.num_stages >= 1


class TestRelativePerformance:
    """The qualitative claims of Figure 5/7 must hold in the model."""

    def test_atlas_faster_than_qiskit_model(self, small_machine):
        circuit = ising(10)
        atlas = AtlasSimulator(pruning_threshold=16).model_time(circuit, small_machine)
        qiskit = QiskitAerSimulator().model_time(circuit, small_machine)
        assert atlas.total_seconds < qiskit.total_seconds

    def test_atlas_needs_no_more_stages_than_hyquas(self, small_machine):
        circuit = ising(10)
        atlas_plan = AtlasSimulator(pruning_threshold=16).partition(circuit, small_machine)
        hyquas_plan = HyQuasSimulator().partition(circuit, small_machine)
        assert atlas_plan.num_stages <= hyquas_plan.num_stages

    def test_qdao_pays_many_more_sweeps_than_atlas_stages(self):
        # The mechanism behind Figure 7's two-orders-of-magnitude gap.
        circuit = qft(14)
        machine = MachineConfig.for_circuit(14, num_gpus=1, local_qubits=10)
        qdao = QdaoSimulator(on_gpu_qubits=10, group_qubits=7)
        atlas_plan = AtlasSimulator(pruning_threshold=16).partition(circuit, machine)
        assert qdao.num_groups(circuit) > atlas_plan.num_stages

    def test_qdao_does_not_scale_with_gpus(self):
        circuit = qft(14)
        qdao = QdaoSimulator(on_gpu_qubits=10, group_qubits=7)
        t1 = qdao.model_time(circuit, MachineConfig.for_circuit(14, num_gpus=1, local_qubits=10))
        t4 = qdao.model_time(circuit, MachineConfig.for_circuit(14, num_gpus=4, local_qubits=10))
        assert t4.total_seconds == pytest.approx(t1.total_seconds, rel=0.01)

    def test_qdao_offload_kicks_in_beyond_gpu_memory(self):
        qdao = QdaoSimulator(on_gpu_qubits=10, group_qubits=7)
        machine_small = MachineConfig.for_circuit(
            12, num_gpus=1, local_qubits=10, gpu_memory_bytes=(1 << 10) * 16
        )
        tb = qdao.model_time(qft(12), machine_small)
        assert tb.offload_seconds > 0
        assert tb.shard_passes_per_stage > 1


class TestSimulateApi:
    def test_simulate_end_to_end(self, small_machine):
        circuit = qft(10)
        result = simulate(circuit, small_machine,
                          kernelize_config=repro.KernelizeConfig(pruning_threshold=16))
        assert result.state is not None
        assert simulate_reference(circuit).allclose(result.state)
        assert result.timing.total_seconds > 0
        assert result.plan.num_stages >= 1
        assert result.report.preprocessing_seconds > 0

    def test_simulate_without_execution(self, small_machine):
        result = simulate(ghz(10), small_machine, execute=False)
        assert result.state is None
        assert result.plan.num_stages >= 1

    def test_simulate_with_alternative_strategies(self, small_machine):
        circuit = ising(10)
        ref = simulate_reference(circuit)
        for stager in ("ilp", "snuqs"):
            for kernelizer in ("atlas", "atlas-naive", "greedy"):
                result = simulate(circuit, small_machine, stager=stager,
                                  kernelizer=kernelizer,
                                  kernelize_config=repro.KernelizeConfig(pruning_threshold=8))
                assert ref.allclose(result.state), (stager, kernelizer)

    def test_simulate_rejects_unknown_strategies(self, small_machine):
        with pytest.raises(ValueError):
            simulate(ghz(10), small_machine, stager="magic")
        with pytest.raises(ValueError):
            simulate(ghz(10), small_machine, kernelizer="magic")

    def test_version_exported(self):
        assert repro.__version__ == "1.7.0"

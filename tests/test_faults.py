"""Fault-tolerance suite: taxonomy, injection matrix, supervision, degradation.

The heart of this file is the **fault matrix**: every injection site of
:mod:`repro.runtime.faults` crossed with every functional backend (incore /
offload / parallel at W ∈ {1, 2, 4}), in both transient and permanent
flavours.  Each cell must either *recover* — final states bit-exact with
the fault-free run, the recovery visible in ``Result.recovery`` — or fail
*promptly* with the documented typed error while the session stays usable.
No test here may hang: the supervised barriers must drain on every failure
path (CI additionally runs this file under ``pytest-timeout``).
"""

import threading

import numpy as np
import pytest

from repro import MachineConfig, Session
from repro.circuits.library import qft, vqc
from repro.errors import (
    AdmissionError,
    CacheCorruptionError,
    Deadline,
    DeadlineExceeded,
    KernelError,
    PermanentError,
    PlanValidationError,
    ReproError,
    RetryPolicy,
    SessionClosedError,
    ShardIOError,
    StateValidationError,
    TransientError,
)
from repro.runtime import faults
from repro.runtime.faults import SITES, FaultInjector, FaultPlan, FaultSpec
from repro.runtime.parallel import ParallelRuntime
from repro.session.cache import PlanCache, plan_cache_key, plan_fingerprint
from repro.sim.statevector import StateVector

N = 7
LOCAL = 4  # -> 2^(7-4) = 8 shards

#: Fast retry policy so transient-exhaustion tests don't sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)

#: (label, backend name, worker count or None)
BACKEND_CONFIGS = [
    ("incore", "incore", None),
    ("offload", "offload", None),
    ("parallel-w1", "parallel", 1),
    ("parallel-w2", "parallel", 2),
    ("parallel-w4", "parallel", 4),
]


@pytest.fixture(scope="module")
def machine():
    return MachineConfig.for_circuit(N, num_gpus=4, local_qubits=LOCAL)


@pytest.fixture(scope="module")
def sweep():
    # Two structurally identical circuits: the second plans as a cache hit,
    # so the ``cache_rebind`` site fires inside every matrix job.
    return [vqc(N, seed=0), vqc(N, seed=1)]


def make_session(machine, backend, workers, **kwargs):
    kwargs.setdefault("planner", "fast")
    kwargs.setdefault("retry", FAST_RETRY)
    session = Session(machine, backend=backend, **kwargs)
    if workers is not None:
        session.backend_instance(backend).num_workers = workers
    return session


@pytest.fixture(scope="module")
def reference_states(machine, sweep):
    """Fault-free final states per backend config.

    Recovery must be bit-exact *within* a backend config (retries and
    redistribution may not change the arithmetic); across backends the
    kernel orderings differ, so references are kept per-config.
    """
    states = {}
    for label, backend, workers in BACKEND_CONFIGS:
        with make_session(machine, backend, workers) as session:
            states[label] = [r.state.data.copy() for r in session.run(sweep)]
    return states


def expected_outcome(backend: str, workers, site: str, flavor: str) -> str:
    """The documented matrix cell: 'recover', 'error', or 'noop'.

    * ``noop`` — the site is never reached on this backend (e.g. shard
      I/O on the in-core executor); the run must be clean and bit-exact.
    * ``recover`` — the fault fires and the run still completes bit-exact
      (retry, quarantine, or a degradation fallback).
    * ``error`` — the fault propagates as its typed error, promptly.
    """
    if site == "cache_rebind":
        return "recover"  # evict-and-replan, every backend
    if site == "compile":
        return "recover"  # program/segment-ops fallback, every backend
    if site in ("checkpoint_write", "checkpoint_load", "journal_append"):
        # Durability sites are only reached when checkpointing, resume or
        # journalling is armed — the plain matrix never enables them
        # (TestDurabilityFaultSites covers the armed paths).
        return "noop"
    if backend == "incore":
        # No shards, no workers; kernel faults degrade to the interpreter.
        return "recover" if site == "kernel_apply" else "noop"
    if site == "worker_start":
        if backend == "offload":
            return "noop"  # sequential executor has no workers
        if flavor == "permanent":
            return "error"
        # Transient: quarantine + redistribution needs a surviving worker.
        return "error" if workers == 1 else "recover"
    # shard_load / shard_store / kernel_apply on the shard runtimes:
    return "recover" if flavor == "transient" else "error"


class TestFaultMatrix:
    """Every site × backend × flavour behaves exactly as documented."""

    @pytest.mark.parametrize("site", SITES)
    @pytest.mark.parametrize("flavor", ["transient", "permanent"])
    @pytest.mark.parametrize(
        "label,backend,workers", BACKEND_CONFIGS, ids=[c[0] for c in BACKEND_CONFIGS]
    )
    def test_cell(
        self, machine, sweep, reference_states, label, backend, workers, site, flavor
    ):
        outcome = expected_outcome(backend, workers, site, flavor)
        spec = f"{site}:{flavor}:1"
        with make_session(machine, backend, workers, faults=spec) as session:
            injector = session._injector
            try:
                job = session.run(sweep)
            except ReproError as exc:
                assert outcome == "error", (
                    f"{label}/{site}/{flavor}: unexpected {type(exc).__name__}: {exc}"
                )
                if flavor == "transient":
                    assert isinstance(exc, TransientError)
                else:
                    assert isinstance(exc, PermanentError)
                assert injector.total_fired >= 1
            else:
                assert outcome in ("recover", "noop"), (
                    f"{label}/{site}/{flavor}: expected an error but the run passed"
                )
                for result, expected in zip(job, reference_states[label]):
                    assert np.array_equal(result.state.data, expected), (
                        f"{label}/{site}/{flavor}: recovered state not bit-exact"
                    )
                if outcome == "recover":
                    assert injector.total_fired >= 1, (
                        f"{label}/{site}/{flavor}: fault never fired"
                    )
                    recovered = [r for r in job if r.recovery]
                    assert recovered, f"{label}/{site}/{flavor}: no recovery provenance"
                else:
                    assert injector.total_fired == 0

            # The session survives every cell: a clean follow-up run (the
            # spec is exhausted) must be bit-exact with the reference.
            job = session.run(sweep)
            for result, expected in zip(job, reference_states[label]):
                assert np.array_equal(result.state.data, expected)


#: Backends that support stage-boundary checkpoints (the incore executor
#: has no stage loop to snapshot).
DURABLE_CONFIGS = [c for c in BACKEND_CONFIGS if c[1] != "incore"]


class TestDurabilityFaultSites:
    """The three durability sites, with durability actually armed."""

    @pytest.mark.parametrize("flavor", ["transient", "permanent"])
    @pytest.mark.parametrize(
        "label,backend,workers", DURABLE_CONFIGS, ids=[c[0] for c in DURABLE_CONFIGS]
    )
    def test_checkpoint_write_failure_is_advisory(
        self, machine, sweep, reference_states, tmp_path, label, backend, workers, flavor
    ):
        # A failed snapshot loses recoverability, never the run: the job
        # completes bit-exact and the failure is counted.
        with make_session(
            machine, backend, workers, faults=f"checkpoint_write:{flavor}:1"
        ) as session:
            injector = session._injector
            job = session.run(sweep, checkpoint=str(tmp_path))
            for result, expected in zip(job, reference_states[label]):
                assert np.array_equal(result.state.data, expected)
            assert injector.total_fired >= 1
            assert session.stats.checkpoint_errors >= 1
            assert session.stats.checkpoints_written >= 1  # later stages ok

    @pytest.mark.parametrize(
        "label,backend,workers", DURABLE_CONFIGS, ids=[c[0] for c in DURABLE_CONFIGS]
    )
    def test_checkpoint_load_corruption_restarts_from_scratch(
        self, machine, sweep, reference_states, tmp_path, label, backend, workers
    ):
        # Directory resume: a checkpoint that fails its load is evicted
        # and never trusted — the run falls back to earlier checkpoints or
        # a cold start, still bit-exact.
        with make_session(machine, backend, workers) as session:
            session.run(sweep, checkpoint=str(tmp_path))
        assert list(tmp_path.glob("*.ckpt"))
        with make_session(
            machine, backend, workers, faults="checkpoint_load:transient:99"
        ) as session:
            injector = session._injector
            job = session.run(
                sweep, checkpoint=str(tmp_path), resume_from=str(tmp_path)
            )
            for result, expected in zip(job, reference_states[label]):
                assert np.array_equal(result.state.data, expected)
            assert injector.total_fired >= 1

    def test_journal_append_transient_is_retried(self, tmp_path):
        from repro.service import JobJournal, replay_journal

        injector = FaultInjector("journal_append:transient:2")
        journal = JobJournal(tmp_path, fsync=False)
        faults.activate(injector)
        try:
            assert journal.append("submitted", 0, tenant="t", durable=False)
        finally:
            faults.deactivate(injector)
        journal.close()
        assert injector.total_fired == 2
        assert not journal.degraded
        assert replay_journal(journal.path).records_read == 1

    def test_journal_append_permanent_degrades_not_raises(self, tmp_path):
        from repro.errors import IntegrityError
        from repro.service import JobJournal

        injector = FaultInjector("journal_append:permanent:99")
        journal = JobJournal(tmp_path, fsync=False)
        faults.activate(injector)
        try:
            assert not journal.append("submitted", 0, tenant="t", durable=False)
        finally:
            faults.deactivate(injector)
        assert journal.degraded
        assert journal.append_errors == 1
        # Degraded journals swallow subsequent appends without touching
        # the (possibly failing) disk.
        assert not journal.append("running", 0, tenant="t")
        journal.close()

        strict = JobJournal(tmp_path / "strict", fsync=False, strict=True)
        injector = FaultInjector("journal_append:permanent:1")
        faults.activate(injector)
        try:
            with pytest.raises(IntegrityError):
                strict.append("submitted", 0, tenant="t", durable=False)
        finally:
            faults.deactivate(injector)
        strict.close()


class TestWorkerSupervision:
    def test_quarantine_redistributes_bit_exact(self, machine, sweep, reference_states):
        # Worker 0 never starts: it is quarantined and its shards run on
        # the survivors, bit-exact with the fault-free schedule.
        with make_session(
            machine, "parallel", 4, faults="worker_start:transient:999@worker=0"
        ) as session:
            job = session.run(sweep)
            for result, expected in zip(job, reference_states["parallel-w4"]):
                assert np.array_equal(result.state.data, expected)
            assert session.stats.quarantined_workers >= 1
            assert job[0].recovery["quarantined_workers"] >= 1

    def test_all_workers_quarantined_escalates(self, machine):
        runtime = ParallelRuntime(machine, num_workers=2, retry=FAST_RETRY)
        with make_session(machine, "parallel", None) as planner:
            plan, *_ = planner.plan_for(qft(N), machine, "parallel")
        injector = FaultInjector("worker_start:transient:999")
        faults.activate(injector)
        try:
            with pytest.raises(TransientError):
                runtime.execute(plan)
        finally:
            faults.deactivate(injector)
        # The runtime itself stays usable (fresh executions reset quarantine).
        state, _ = runtime.execute(plan)
        assert np.isfinite(state.data).all()
        runtime.close()

    def test_transient_retry_counts_into_stats(self, machine, sweep):
        with make_session(
            machine, "parallel", 2, faults="shard_load:transient:3"
        ) as session:
            session.run(sweep)
            assert session.stats.retries >= 3
            assert session.stats.faults_injected == 3

    def test_permanent_failure_releases_barriers_and_pools_shut_down(
        self, machine, sweep
    ):
        # A permanent fault mid-stage must propagate promptly (no hang —
        # this test completing at all is the assertion) and, after close(),
        # leave no worker or loader thread behind.
        with make_session(
            machine, "parallel", 4, faults="shard_store:permanent:1"
        ) as session:
            with pytest.raises(PermanentError):
                session.run(sweep)
            backend = session.backend_instance("parallel")
            runtimes = list(backend._runtimes.values())
            assert runtimes
        for runtime in runtimes:
            assert runtime.pools_shut_down()
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("repro-shard")
        ]
        assert not leaked, f"leaked worker threads: {leaked}"

    def test_loader_thread_fault_propagates(self, machine, sweep, reference_states):
        # shard_load faults fire on the loader/prefetch thread; transient
        # ones must be retried on the worker, permanent ones re-raised on
        # the caller thread — never swallowed, never deadlocked.
        with make_session(
            machine, "parallel", 2, faults="shard_load:permanent:1"
        ) as session:
            with pytest.raises(PermanentError):
                session.run(sweep)
            job = session.run(sweep)
            for result, expected in zip(job, reference_states["parallel-w2"]):
                assert np.array_equal(result.state.data, expected)


class TestDeadlines:
    @pytest.mark.parametrize("backend,workers", [("incore", None), ("offload", None), ("parallel", 2)])
    def test_expired_deadline_raises_and_session_survives(
        self, machine, sweep, backend, workers
    ):
        with make_session(machine, backend, workers) as session:
            with pytest.raises(DeadlineExceeded):
                session.run(sweep, deadline=0.0)
            job = session.run(sweep)  # session still usable
            assert all(r.state is not None for r in job)

    def test_generous_deadline_is_a_noop(self, machine, sweep, reference_states):
        with make_session(machine, "parallel", 2) as session:
            job = session.run(sweep, deadline=600.0)
            for result, expected in zip(job, reference_states["parallel-w2"]):
                assert np.array_equal(result.state.data, expected)

    def test_deadline_object(self):
        assert Deadline(None).remaining() == float("inf")
        Deadline(None).check("anywhere")  # never raises
        expired = Deadline(0.0)
        assert expired.expired()
        with pytest.raises(DeadlineExceeded):
            expired.check("stage")
        assert Deadline.resolve(None).seconds is None
        assert Deadline.resolve(5.0).seconds == 5.0
        existing = Deadline(1.0)
        assert Deadline.resolve(existing) is existing
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestCacheCorruption:
    def test_checksum_detects_mutation_and_evicts(self, machine):
        cache = PlanCache(maxsize=4)
        with make_session(machine, "incore", None) as session:
            plan, *_ = session.plan_for(vqc(N, seed=0), machine, "incore")
        key = plan_cache_key(vqc(N, seed=0), machine, ("test",))
        cache.put(key, plan)
        assert cache.get(key) is not None
        # Corrupt the cached structure in place: the next lookup must not
        # serve it.
        plan.stages[0].gate_indices.append(0)
        with pytest.raises(CacheCorruptionError):
            cache.get(key)
        assert key not in cache
        assert cache.stats.corruptions == 1

    def test_fingerprint_is_structural(self, machine):
        with make_session(machine, "incore", None) as session:
            plan_a, *_ = session.plan_for(vqc(N, seed=0), machine, "incore")
            plan_b, *_ = session.plan_for(vqc(N, seed=1), machine, "incore")
        # Same structure, different angles: identical fingerprints.
        assert plan_fingerprint(plan_a) == plan_fingerprint(plan_b)

    def test_injected_corruption_replans_and_recovers(self, machine, sweep):
        with make_session(
            machine, "incore", None, faults="cache_rebind:transient:1"
        ) as session:
            clean = [r.state.data.copy() for r in session.run(sweep)]
            assert session.stats.cache_corruptions == 1
            # The poisoned entry was evicted and rebuilt; later sweeps hit
            # the fresh entry cleanly.
            job = session.run(sweep)
            assert all(r.cache_hit for r in job)
            for result, expected in zip(job, clean):
                assert np.array_equal(result.state.data, expected)


class TestGracefulDegradation:
    def test_admission_walks_backend_chain(self, machine, sweep):
        # Budget fits one shard-buffer set but not the full state: incore
        # is inadmissible, offload is the first admissible hop.
        budget = 4 * 16 * (1 << LOCAL)
        with make_session(
            machine, "incore", None, memory_budget_bytes=budget
        ) as session:
            job = session.run(sweep)
            assert job.backend == "offload"
            assert job[0].recovery["backend_chain"] == ["incore", "offload"]
            assert session.stats.fallbacks >= 1

    def test_admission_rejects_without_degrade(self, machine, sweep):
        with make_session(
            machine, "incore", None, memory_budget_bytes=1, degrade=False
        ) as session:
            with pytest.raises(AdmissionError):
                session.run(sweep)
            # AdmissionError doubles as MemoryError for legacy handlers.
            with pytest.raises(MemoryError):
                session.run(sweep)

    def test_admission_exhausted_chain_rejects(self, machine, sweep):
        with make_session(
            machine, "incore", None, memory_budget_bytes=1
        ) as session:
            with pytest.raises(AdmissionError):
                session.run(sweep)

    def test_program_failure_falls_back_to_interpreter(self, machine, sweep):
        with make_session(machine, "incore", None) as clean_session:
            clean = [r.state.data.copy() for r in clean_session.run(sweep)]
        with make_session(
            machine, "incore", None, faults="kernel_apply:KernelError:1"
        ) as session:
            job = session.run(sweep)
            for result, expected in zip(job, clean):
                assert np.array_equal(result.state.data, expected)
            assert job[0].recovery["fallbacks"] >= 1

    def test_planner_preset_failure_falls_back(self, machine):
        from repro.planner import PassManager
        from repro.planner.passes import PASSES, register_pass

        class ExplodingPass:
            def run(self, ctx, record):
                raise RuntimeError("synthetic planner failure")

        register_pass("chaos_fail", ExplodingPass())
        try:
            broken = PassManager([("chaos_fail", {})], preset="broken")
            circuit = qft(N)
            # Planning-time failure: degrade to the "fast" preset and plan.
            with Session(machine, backend="incore", planner=broken) as session:
                job = session.run(circuit)
                assert job.result().state is not None
                assert session.stats.fallbacks >= 1
            with Session(
                machine, backend="incore", planner=broken, degrade=False
            ) as session:
                with pytest.raises(RuntimeError):
                    session.run(circuit)
        finally:
            del PASSES["chaos_fail"]

    def test_planner_config_errors_never_degrade(self, machine):
        # Asking for a pipeline component that does not exist is a user
        # error: degradation would silently plan with a different pipeline
        # and mask the mistake.
        from repro.planner import PassManager

        broken = PassManager([("no_such_pass", {})], preset="typo")
        with Session(machine, backend="incore", planner=broken) as session:
            with pytest.raises(ValueError):
                session.run(qft(N))
            assert session.stats.fallbacks == 0


class TestStateValidation:
    def test_non_finite_rejected(self, machine):
        bad = StateVector(N, np.full(1 << N, np.nan, dtype=np.complex128))
        with make_session(machine, "incore", None) as session:
            with pytest.raises(StateValidationError):
                session.run(qft(N), initial_state=bad)
            # StateValidationError is a ValueError for legacy handlers.
            with pytest.raises(ValueError):
                session.run(qft(N), initial_state=bad)

    def test_unnormalized_rejected_unless_opted_in(self, machine):
        unnorm = StateVector(N, np.ones(1 << N, dtype=np.complex128))
        with make_session(machine, "incore", None) as session:
            with pytest.raises(StateValidationError):
                session.run(qft(N), initial_state=unnorm)
            result = session.run(qft(N), initial_state=unnorm, normalize=True).result()
            assert abs(result.state.norm() - 1.0) < 1e-9

    def test_normalized_states_pass_through_untouched(self, machine):
        state = StateVector.random_state(N, seed=3)
        with make_session(machine, "incore", None) as session:
            result = session.run(qft(N), initial_state=state).result()
            assert result.state is not None


class TestLifecycle:
    def test_session_close_is_idempotent_and_post_close_raises(self, machine):
        session = Session(machine, backend="incore")
        session.run(qft(N))
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.run(qft(N))
        # SessionClosedError remains a RuntimeError for legacy handlers.
        with pytest.raises(RuntimeError):
            session.backend_instance("incore")

    def test_runtime_close_is_idempotent_and_post_close_raises(self, machine):
        runtime = ParallelRuntime(machine, num_workers=2)
        with make_session(machine, "parallel", None) as planner:
            plan, *_ = planner.plan_for(qft(N), machine, "parallel")
        runtime.execute(plan)
        runtime.close()
        runtime.close()
        assert runtime.closed and runtime.pools_shut_down()
        with pytest.raises(SessionClosedError):
            runtime.execute(plan)

    def test_context_managers(self, machine):
        with ParallelRuntime(machine, num_workers=2) as runtime:
            pass
        assert runtime.closed
        with Session(machine) as session:
            pass
        assert session.closed


class TestErrorTaxonomy:
    def test_branches_and_builtin_compatibility(self):
        assert issubclass(TransientError, ReproError)
        assert issubclass(PermanentError, ReproError)
        assert issubclass(ShardIOError, (TransientError, OSError))
        assert issubclass(KernelError, (PermanentError, RuntimeError))
        assert issubclass(PlanValidationError, (PermanentError, ValueError))
        assert issubclass(StateValidationError, (PermanentError, ValueError))
        assert issubclass(AdmissionError, (PermanentError, MemoryError))
        assert issubclass(DeadlineExceeded, (PermanentError, TimeoutError))
        assert issubclass(CacheCorruptionError, (TransientError, RuntimeError))
        assert issubclass(SessionClosedError, (PermanentError, RuntimeError))
        assert ShardIOError("x").transient
        assert not KernelError("x").transient
        err = ShardIOError("boom", site="shard_load", worker=2, shard=5)
        assert err.site == "shard_load"
        assert err.context == {"worker": 2, "shard": 5}

    def test_retry_policy_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.001, multiplier=2.0, max_delay=0.003)
        assert policy.delay(1) == 0.001
        assert policy.delay(2) == 0.002
        assert policy.delay(3) == 0.003  # capped
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestFaultHarness:
    def test_spec_parsing(self):
        plan = FaultPlan.parse(
            "shard_load:transient:2, kernel_apply:KernelError:1:3,"
            "worker_start:transient:99@worker=0,shard_store@shard=5"
        )
        assert len(plan.specs) == 4
        assert plan.specs[0] == FaultSpec("shard_load", "transient", 2)
        assert plan.specs[1] == FaultSpec("kernel_apply", "KernelError", 1, 3)
        assert plan.specs[2] == FaultSpec("worker_start", "transient", 99, worker=0)
        assert plan.specs[3] == FaultSpec("shard_store", worker=None, shard=5)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("no_such_site")
        with pytest.raises(ValueError):
            FaultSpec("shard_load", "NoSuchError")
        with pytest.raises(ValueError):
            FaultSpec("shard_load", times=0)
        with pytest.raises(ValueError):
            FaultPlan.parse("shard_load@worker=x")

    def test_times_after_and_filters(self):
        injector = FaultInjector("shard_load:transient:2:1@worker=1")
        injector.check("shard_load", worker=0)  # filtered out
        injector.check("shard_load", worker=1)  # after=1: skipped
        with pytest.raises(ShardIOError):
            injector.check("shard_load", worker=1)
        with pytest.raises(ShardIOError):
            injector.check("shard_load", worker=1)
        injector.check("shard_load", worker=1)  # times=2 exhausted
        assert injector.total_fired == 2
        assert injector.exhausted()
        injector.reset()
        assert injector.total_fired == 0

    def test_probabilistic_specs_are_seed_deterministic(self):
        def fires(seed):
            plan = FaultPlan((FaultSpec("compile", times=50, probability=0.5),), seed=seed)
            injector = FaultInjector(plan)
            out = []
            for _ in range(50):
                try:
                    injector.check("compile")
                    out.append(0)
                except ReproError:
                    out.append(1)
            return out

        assert fires(7) == fires(7)
        assert fires(7) != fires(8)

    def test_activation_is_exclusive(self):
        a = FaultInjector("compile:transient:1")
        b = FaultInjector("compile:transient:1")
        faults.activate(a)
        try:
            faults.activate(a)  # re-activating the same injector is fine
            with pytest.raises(RuntimeError):
                faults.activate(b)
        finally:
            faults.deactivate(a)
        assert faults.active_injector() is None

    def test_env_spec_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "compile:KernelError:1")
        monkeypatch.setattr(faults, "_env_loaded", False)
        monkeypatch.setattr(faults, "_env_injector", None)
        injector = faults.active_injector()
        assert injector is not None
        with pytest.raises(KernelError):
            faults.check("compile")
        faults.check("compile")  # exhausted
        monkeypatch.setattr(faults, "_env_loaded", False)
        monkeypatch.setattr(faults, "_env_injector", None)
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults.active_injector() is None

"""Tests for the ILP modelling layer and both solver backends."""

import pytest

from repro.ilp import (
    ConstraintSense,
    IlpModel,
    LinExpr,
    SolveStatus,
    lin_sum,
    solve,
    solve_with_branch_and_bound,
    solve_with_scipy,
)


class TestExpressionAlgebra:
    def test_variable_arithmetic(self):
        m = IlpModel()
        x = m.binary_var("x")
        y = m.binary_var("y")
        expr = 2 * x + y - 1
        assert expr.coeffs == {x.index: 2.0, y.index: 1.0}
        assert expr.constant == -1.0

    def test_negation_and_rsub(self):
        m = IlpModel()
        x = m.binary_var("x")
        expr = 3 - x
        assert expr.coeffs[x.index] == -1.0
        assert expr.constant == 3.0
        assert (-x).coeffs[x.index] == -1.0

    def test_lin_sum(self):
        m = IlpModel()
        xs = [m.binary_var(f"x{i}") for i in range(4)]
        expr = lin_sum(xs)
        assert all(expr.coeffs[x.index] == 1.0 for x in xs)

    def test_scaling_expression(self):
        m = IlpModel()
        x = m.binary_var("x")
        expr = (x + 2) * 3
        assert expr.coeffs[x.index] == 3.0
        assert expr.constant == 6.0
        with pytest.raises(TypeError):
            (x + 2) * (x + 1)

    def test_constraint_senses(self):
        m = IlpModel()
        x = m.binary_var("x")
        le = x <= 1
        ge = x >= 1
        eq = LinExpr.from_term(x).eq(1)
        assert le.sense is ConstraintSense.LE
        assert ge.sense is ConstraintSense.GE
        assert eq.sense is ConstraintSense.EQ

    def test_constraint_satisfaction(self):
        m = IlpModel()
        x = m.binary_var("x")
        y = m.binary_var("y")
        con = (x + y) <= 1
        assert con.is_satisfied({x.index: 1, y.index: 0})
        assert not con.is_satisfied({x.index: 1, y.index: 1})

    def test_evaluate(self):
        m = IlpModel()
        x = m.binary_var("x")
        expr = 2 * x + 5
        assert expr.evaluate({x.index: 1}) == 7.0
        assert expr.evaluate({}) == 5.0

    def test_check_solution_integrality(self):
        m = IlpModel()
        x = m.binary_var("x")
        m.add_constraint(x <= 1)
        assert m.check_solution({x.index: 1.0})
        assert not m.check_solution({x.index: 0.5})
        assert not m.check_solution({x.index: 2.0})


def _knapsack_model():
    """max 5a+4b+3c s.t. 2a+3b+c <= 4  (as a minimisation of the negative)."""
    m = IlpModel("knapsack")
    a, b, c = m.binary_var("a"), m.binary_var("b"), m.binary_var("c")
    m.add_constraint(2 * a + 3 * b + 1 * c <= 4)
    m.minimize(-5 * a - 4 * b - 3 * c)
    return m, (a, b, c)


def _assignment_model():
    """Assign 2 tasks to 2 workers, each exactly once, minimising cost."""
    m = IlpModel("assign")
    cost = [[4, 1], [2, 3]]
    x = [[m.binary_var(f"x{i}{j}") for j in range(2)] for i in range(2)]
    for i in range(2):
        m.add_eq(lin_sum(x[i]), 1)
        m.add_eq(lin_sum([x[0][i], x[1][i]]), 1)
    m.minimize(lin_sum(cost[i][j] * x[i][j] for i in range(2) for j in range(2)))
    return m, x


class TestSolverBackends:
    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_knapsack_optimum(self, backend):
        model, (a, b, c) = _knapsack_model()
        sol = solve(model, backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-8.0)  # take a and c
        assert sol.int_value(a) == 1
        assert sol.int_value(b) == 0
        assert sol.int_value(c) == 1

    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_assignment_optimum(self, backend):
        model, x = _assignment_model()
        sol = solve(model, backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)  # x01 + x10
        assert sol.int_value(x[0][1]) == 1
        assert sol.int_value(x[1][0]) == 1

    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_infeasible_detected(self, backend):
        m = IlpModel()
        x = m.binary_var("x")
        m.add_constraint(x >= 2)
        sol = solve(m, backend=backend)
        assert sol.status is SolveStatus.INFEASIBLE
        assert not sol.status.is_feasible

    @pytest.mark.parametrize("backend", ["scipy", "branch-and-bound"])
    def test_equality_constraints(self, backend):
        m = IlpModel()
        xs = [m.binary_var(f"x{i}") for i in range(5)]
        m.add_eq(lin_sum(xs), 3)
        m.minimize(lin_sum((i + 1) * xs[i] for i in range(5)))
        sol = solve(m, backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sum(sol.int_value(x) for x in xs) == 3
        assert sol.objective == pytest.approx(1 + 2 + 3)

    def test_backends_agree_on_random_set_cover(self):
        # Small set-cover instance: both backends must find the same optimum.
        sets = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        m = IlpModel("cover")
        xs = [m.binary_var(f"s{i}") for i in range(len(sets))]
        for element in range(4):
            covering = [xs[i] for i, s in enumerate(sets) if element in s]
            m.add_constraint(lin_sum(covering) >= 1)
        m.minimize(lin_sum(xs))
        a = solve_with_scipy(m)
        b = solve_with_branch_and_bound(m)
        assert a.status is SolveStatus.OPTIMAL
        assert b.status is SolveStatus.OPTIMAL
        assert a.objective == pytest.approx(b.objective)
        assert a.objective == pytest.approx(2.0)

    def test_integer_variables(self):
        m = IlpModel()
        x = m.integer_var("x", 0, 10)
        m.add_constraint(2 * x >= 7)
        m.minimize(x)
        sol = solve_with_scipy(m)
        assert sol.int_value(x) == 4

    def test_continuous_variables_allowed(self):
        m = IlpModel()
        x = m.continuous_var("x", 0, 10)
        m.add_constraint(x >= 2.5)
        m.minimize(x)
        sol = solve_with_scipy(m)
        assert sol.value(x) == pytest.approx(2.5)

    def test_unknown_backend_raises(self):
        m, _ = _knapsack_model()
        with pytest.raises(ValueError, match="unknown ILP backend"):
            solve(m, backend="cplex")

    def test_solution_check_against_model(self):
        model, _ = _assignment_model()
        sol = solve_with_scipy(model)
        assert model.check_solution(sol.values)

    def test_branch_and_bound_respects_node_limit(self):
        # A slightly larger model with a tiny node budget still terminates.
        m = IlpModel()
        xs = [m.binary_var(f"x{i}") for i in range(12)]
        m.add_constraint(lin_sum((i % 3 + 1) * xs[i] for i in range(12)) <= 7)
        m.minimize(lin_sum(-1 * x for x in xs))
        sol = solve_with_branch_and_bound(m, max_nodes=5)
        assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT, SolveStatus.INFEASIBLE)

    def test_model_repr_and_counts(self):
        model, _ = _knapsack_model()
        assert model.num_variables == 3
        assert model.num_constraints == 1
        assert "knapsack" in repr(model)

"""Tests for the OpenQASM 2.0 reader/writer."""

import math

import pytest

from repro.circuits import Circuit, from_qasm, to_qasm
from repro.circuits.library import CIRCUIT_FAMILIES
from repro.circuits.qasm import QasmError
from repro.sim import simulate_reference


class TestWriter:
    def test_header(self):
        text = to_qasm(Circuit(3).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text

    def test_gate_lines(self):
        text = to_qasm(Circuit(2).h(0).cx(0, 1).rz(0.5, 1))
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "rz(0.5) q[1];" in text

    def test_pi_formatting(self):
        text = to_qasm(Circuit(1).rz(math.pi / 2, 0))
        assert "pi/2" in text

    def test_p_gate_written_as_u1(self):
        text = to_qasm(Circuit(1).p(0.3, 0))
        assert "u1(0.3) q[0];" in text


class TestReader:
    def test_simple_parse(self):
        c = from_qasm(
            """
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q[0] -> c[0];
            """
        )
        assert c.num_qubits == 2
        assert len(c) == 2
        assert c[1].name == "cx"
        assert c[1].control_qubits == (0,)

    def test_comments_stripped(self):
        c = from_qasm("qreg q[1]; // comment\nh q[0]; // another")
        assert len(c) == 1

    def test_parameter_expressions(self):
        c = from_qasm("qreg q[1]; rz(pi/4) q[0]; rz(-pi) q[0]; rz(3*pi/2) q[0];")
        assert c[0].params[0] == pytest.approx(math.pi / 4)
        assert c[1].params[0] == pytest.approx(-math.pi)
        assert c[2].params[0] == pytest.approx(3 * math.pi / 2)

    def test_alias_cu1(self):
        c = from_qasm("qreg q[2]; cu1(0.5) q[0],q[1];")
        assert c[0].name == "cp"

    def test_barrier_ignored(self):
        c = from_qasm("qreg q[2]; h q[0]; barrier q[0],q[1]; h q[1];")
        assert len(c) == 2

    def test_missing_qreg_raises(self):
        with pytest.raises(QasmError, match="no quantum register"):
            from_qasm("h q[0];")

    def test_unknown_gate_raises(self):
        with pytest.raises(QasmError, match="unsupported gate"):
            from_qasm("qreg q[1]; magic q[0];")

    def test_wrong_arity_raises(self):
        with pytest.raises(QasmError, match="expects"):
            from_qasm("qreg q[2]; cx q[0];")

    def test_bad_parameter_raises(self):
        with pytest.raises(QasmError):
            from_qasm("qreg q[1]; rz(import) q[0];")

    def test_custom_gate_definition_rejected(self):
        with pytest.raises(QasmError, match="unsupported QASM construct"):
            from_qasm("qreg q[1]; gate foo a { h a; } foo q[0];")


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(CIRCUIT_FAMILIES))
    def test_roundtrip_preserves_semantics(self, family):
        num_qubits = 6 if family != "hhl" else 5
        circuit = CIRCUIT_FAMILIES[family](num_qubits)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert len(parsed) == len(circuit)
        original = simulate_reference(circuit)
        reparsed = simulate_reference(parsed)
        assert original.allclose(reparsed)

    def test_roundtrip_gate_identity(self):
        c = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2).rz(0.25, 0).cp(0.5, 2, 0)
        parsed = from_qasm(to_qasm(c))
        assert parsed == c

"""Execution runtime: functional executors, sharding, DRAM offload, and the timing model."""

from .executor import ExecutionTrace, execute_plan
from .offload import OffloadStats, execute_plan_offloaded
from .sharding import QubitLayout, permute_state, shard_slices
from .timeline import TimingBreakdown, model_simulation_time

__all__ = [
    "execute_plan",
    "ExecutionTrace",
    "execute_plan_offloaded",
    "OffloadStats",
    "QubitLayout",
    "permute_state",
    "shard_slices",
    "TimingBreakdown",
    "model_simulation_time",
]

"""Execution runtime: plan compilation, functional executors, sharding, DRAM offload, parallel shard scheduling, and the timing model."""

from .checkpoint import (
    Checkpoint,
    CheckpointConfig,
    find_checkpoint,
    load_checkpoint,
    write_checkpoint,
)
from .compile import clear_program_cache, compile_plan, compiled_program_for
from .executor import ExecutionTrace, execute_plan, trace_for_program
from .faults import FaultInjector, FaultPlan, FaultSpec
from .integrity import IntegrityConfig, IntegrityMonitor
from .offload import OffloadStats, WorkerStats, execute_plan_offloaded
from .parallel import ParallelRuntime, execute_plan_parallel
from .sharding import QubitLayout, permutation_axes, permute_state, shard_slices
from .timeline import TimingBreakdown, model_simulation_time

__all__ = [
    "Checkpoint",
    "CheckpointConfig",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IntegrityConfig",
    "IntegrityMonitor",
    "find_checkpoint",
    "load_checkpoint",
    "write_checkpoint",
    "clear_program_cache",
    "compile_plan",
    "compiled_program_for",
    "execute_plan",
    "trace_for_program",
    "ExecutionTrace",
    "permutation_axes",
    "execute_plan_offloaded",
    "OffloadStats",
    "WorkerStats",
    "ParallelRuntime",
    "execute_plan_parallel",
    "QubitLayout",
    "permute_state",
    "shard_slices",
    "TimingBreakdown",
    "model_simulation_time",
]

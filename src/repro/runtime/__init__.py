"""Execution runtime: functional executors, sharding, DRAM offload, parallel shard scheduling, and the timing model."""

from .executor import ExecutionTrace, execute_plan
from .offload import OffloadStats, WorkerStats, execute_plan_offloaded
from .parallel import ParallelRuntime, execute_plan_parallel
from .sharding import QubitLayout, permute_state, shard_slices
from .timeline import TimingBreakdown, model_simulation_time

__all__ = [
    "execute_plan",
    "ExecutionTrace",
    "execute_plan_offloaded",
    "OffloadStats",
    "WorkerStats",
    "ParallelRuntime",
    "execute_plan_parallel",
    "QubitLayout",
    "permute_state",
    "shard_slices",
    "TimingBreakdown",
    "model_simulation_time",
]

"""DRAM-offloading executor (Section VII-C of the paper).

When the state vector does not fit in GPU memory, Atlas keeps it in host
DRAM, splits it into shards of ``2^L`` amplitudes, and swaps shards through
the GPUs one batch at a time.  Functionally the result is identical to the
in-memory executor; what changes is the *access pattern*: within a stage,
each shard is loaded once, all of the stage's kernels are applied to it,
and it is written back — the property that makes staged execution so much
cheaper than gate-at-a-time offloading (the QDAO comparison of Figure 7).

This module provides that shard-by-shard execution path.  Gates whose
non-insular qubits are local act entirely within a shard; insular non-local
qubits are handled per shard from the shard's fixed high-order bits.  The
classification is **per qubit axis** (matching :func:`_project_insular`),
not per whole-gate matrix:

* a *control* on a non-local qubit selects which shards the reduced gate is
  applied to,
* a qubit along which the gate is *diagonal* (the matrix never changes that
  bit) contributes a per-shard reduced gate — even when the gate as a whole
  is not diagonal,
* a qubit along which the gate is *anti-diagonal* (X/Y-like: the bit always
  flips) exchanges amplitudes between shard pairs.  The executor realises
  this as a shard-index relabel: the shard is processed once and stored at
  its new index, so the one-load-per-stage-per-shard property still holds,
* only a qubit the gate genuinely *mixes* (e.g. an H the staging invariant
  would never place non-locally) forces the gate onto the full-state path,
  splitting the stage into extra shard passes.

The executor counts shard loads/stores so tests can verify the
one-load-per-stage-per-shard property that the paper's speedup over QDAO
rests on.  :mod:`repro.runtime.parallel` reuses the segmentation and
per-shard machinery defined here to schedule shards across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..circuits.gates import Gate
from ..cluster.machine import MachineConfig
from ..core.kernel import KernelType
from ..core.plan import ExecutionPlan
from ..errors import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    PlanValidationError,
    ReproError,
    RetryPolicy,
    TransientError,
)
from ..sim.apply import apply_gate_buffered, tracked_empty
from ..sim.fusion import fused_unitary_cached
from ..sim.program import compile_unitary_op, thread_workspace
from ..sim.statevector import StateVector
from . import faults
from .checkpoint import (
    CheckpointConfig,
    checkpoint_fingerprint,
    find_checkpoint,
    write_checkpoint,
)
from .integrity import IntegrityMonitor
from .sharding import QubitLayout, permute_state, shard_slices

__all__ = [
    "OffloadStats",
    "WorkerStats",
    "compile_segment_ops",
    "execute_plan_offloaded",
    "run_segment_ops",
]


@dataclass
class WorkerStats:
    """Per-worker shard-traffic accounting (filled by the parallel runtime).

    ``compute_seconds`` is wall-clock time the worker spent inside kernel
    execution.  Workers of one group run the stage's kernels in lockstep
    (the SIMT model of the paper's data-parallel GPUs), so their compute
    times are equal within a group pass.
    """

    worker: int
    shard_loads: int = 0
    shard_stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    load_seconds: float = 0.0
    store_seconds: float = 0.0
    compute_seconds: float = 0.0
    #: Transient shard failures this worker retried (load/compute/store).
    retries: int = 0


@dataclass
class OffloadStats:
    """Shard-traffic accounting of one offloaded execution."""

    num_stages: int = 0
    num_shards: int = 0
    shard_loads: int = 0
    shard_stores: int = 0
    bytes_transferred: int = 0
    per_stage_loads: list[int] = field(default_factory=list)
    #: Data-parallel width the run was scheduled with (1 = sequential).
    num_workers: int = 1
    #: Per-worker accounting; empty for the sequential executor.
    per_worker: list[WorkerStats] = field(default_factory=list)
    #: Transient shard failures that were retried (summed over workers).
    retries: int = 0
    #: Workers quarantined during this execution after exhausting retries.
    quarantined_workers: int = 0
    #: Segments degraded to the uncompiled per-gate path after a compile
    #: failure.
    fallbacks: int = 0
    #: Stage-boundary checkpoints durably written this execution.
    checkpoints_written: int = 0
    #: Checkpoint writes that failed (the run continues — checkpointing is
    #: advisory and never fails an execution).
    checkpoint_errors: int = 0
    #: Last completed stage restored from a checkpoint (-1 = cold start).
    resumed_from_stage: int = -1
    #: Stages skipped on resume (their work was recovered from disk).
    stages_skipped: int = 0
    #: Integrity-monitor boundary checks performed (0 = monitor off).
    integrity_checks: int = 0
    #: Worst relative state-norm drift the monitor observed.
    max_norm_drift: float = 0.0


# ---------------------------------------------------------------------------
# Per-qubit axis classification
# ---------------------------------------------------------------------------


@lru_cache(maxsize=16384)
def _axis_kind(gate: Gate, pos: int) -> str:
    """How *gate* acts along the axis of ``gate.qubits[pos]``.

    ``"control"``
        A declared control qubit (never mixes, gates the gate on/off).
    ``"diagonal"``
        The matrix never changes this bit: every non-zero entry has equal
        input and output bit.  True for globally diagonal gates, but also
        e.g. for the control axis of an undeclared controlled structure.
    ``"antidiagonal"``
        The matrix always flips this bit (X/Y-like axis).
    ``"mixing"``
        Amplitude genuinely moves between the two bit values — the gate
        cannot be resolved per shard along this axis.
    """
    if gate.qubits[pos] in gate.control_qubits:
        return "control"
    matrix = gate.matrix()
    rows, cols = np.nonzero(np.abs(matrix) > 1e-12)
    row_bits = (rows >> pos) & 1
    col_bits = (cols >> pos) & 1
    if np.array_equal(row_bits, col_bits):
        return "diagonal"
    if np.all(row_bits != col_bits):
        return "antidiagonal"
    return "mixing"


def _is_cross_shard(gate: Gate, logical_to_physical: dict[int, int], local_qubits: int) -> bool:
    """True when *gate* cannot be resolved shard-locally and must run on the
    full state.

    That happens only when a qubit the gate *mixes* is mapped to a
    non-local physical position — something the staging invariant rules out
    for planner-produced plans.  Control, diagonal and anti-diagonal axes
    (checked **per qubit**, so e.g. a gate that is diagonal along one
    non-local qubit but not globally diagonal stays on the shard path) are
    all handled within the shard pass by :func:`_gate_on_shard`.
    """
    for pos, q in enumerate(gate.qubits):
        if logical_to_physical[q] < local_qubits:
            continue
        if _axis_kind(gate, pos) == "mixing":
            return True
    return False


def _gate_relabels(gate: Gate, logical_to_physical: dict[int, int], local_qubits: int) -> bool:
    """True when *gate* has an anti-diagonal axis on a non-local qubit (it
    moves shards to new indices)."""
    for pos, q in enumerate(gate.qubits):
        if logical_to_physical[q] < local_qubits:
            continue
        if _axis_kind(gate, pos) == "antidiagonal":
            return True
    return False


# ---------------------------------------------------------------------------
# Gate reduction for fixed non-local bits
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def _reduced_gate(
    gate: Gate, fixed: tuple[tuple[int, int, int], ...]
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Reduce *gate* by resolving the listed ``(qubit, bit_in, bit_out)``
    assignments.

    Control qubits are dropped (the caller only asks when the bit is 1);
    insular diagonal qubits are projected onto their fixed bit
    (``bit_out == bit_in``); anti-diagonal qubits are projected onto the
    flipped transition (``bit_out == 1 - bit_in``).  Memoized so every
    shard that resolves the same gate the same way shares one matrix object
    (which also keeps the apply-engine's dispatch analysis warm).
    """
    matrix = gate.matrix()
    qubits = list(gate.qubits)
    control_set = set(gate.control_qubits)
    for q, bit_in, bit_out in fixed:
        if q in control_set:
            matrix, qubits = _drop_control(matrix, qubits, q)
        else:
            matrix, qubits = _project_insular(matrix, qubits, q, bit_in, bit_out)
    matrix = np.ascontiguousarray(matrix)
    matrix.setflags(write=False)
    return matrix, tuple(qubits)


def _gate_on_shard(
    shard: np.ndarray,
    scratch: np.ndarray,
    gate: Gate,
    logical_to_physical: dict[int, int],
    local_qubits: int,
    shard_index: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply *gate* to one shard, resolving insular non-local qubits.

    The shard contents ping-pong between the two buffers; returns
    ``(shard, scratch, new_shard_index)``.  The buffers are unchanged when
    a controlled gate whose non-local control bit is 0 leaves the shard
    untouched; the index changes when an anti-diagonal non-local axis
    relabels the shard (the caller must store the shard at the new index).
    """
    physical = [logical_to_physical[q] for q in gate.qubits]
    if all(p < local_qubits for p in physical):
        data, scratch = apply_gate_buffered(shard, scratch, gate.matrix(), physical)
        return data, scratch, shard_index

    # Some qubits are non-local; resolve each axis from the shard's fixed
    # high-order bits.
    control_set = set(gate.control_qubits)
    fixed: list[tuple[int, int, int]] = []
    out_index = shard_index
    for pos, (q, p) in enumerate(zip(gate.qubits, physical)):
        if p < local_qubits:
            continue
        bit = (shard_index >> (p - local_qubits)) & 1
        if q in control_set:
            if bit == 0:
                # Unsatisfied non-local control: the shard is untouched.
                return shard, scratch, shard_index
            fixed.append((q, 1, 1))
            continue
        kind = _axis_kind(gate, pos)
        if kind == "diagonal":
            fixed.append((q, bit, bit))
        elif kind == "antidiagonal":
            fixed.append((q, bit, 1 - bit))
            out_index ^= 1 << (p - local_qubits)
        else:
            raise PlanValidationError(
                f"gate {gate} mixes amplitudes along non-local qubit {q}; "
                f"it must be executed on the full state"
            )
    matrix, reduced_qubits = _reduced_gate(gate, tuple(fixed))
    if not reduced_qubits:
        # Pure phase on this shard (possibly plus a shard relabel).
        shard *= matrix[0, 0]
        return shard, scratch, out_index
    reduced_physical = [logical_to_physical[q] for q in reduced_qubits]
    if any(p >= local_qubits for p in reduced_physical):
        raise PlanValidationError(
            f"gate {gate} has a non-insular qubit mapped to a non-local position"
        )
    data, scratch = apply_gate_buffered(shard, scratch, matrix, reduced_physical)
    return data, scratch, out_index


def _drop_control(matrix: np.ndarray, qubits: list[int], control: int) -> tuple[np.ndarray, list[int]]:
    """Remove a satisfied control qubit from a gate matrix."""
    pos = qubits.index(control)
    k = len(qubits)
    dim = 1 << k
    keep = [i for i in range(dim) if (i >> pos) & 1]
    reduced = matrix[np.ix_(keep, keep)]
    new_qubits = [q for q in qubits if q != control]
    return np.ascontiguousarray(reduced), new_qubits


def _project_insular(
    matrix: np.ndarray, qubits: list[int], qubit: int, bit_in: int, bit_out: int
) -> tuple[np.ndarray, list[int]]:
    """Project an insular qubit onto the fixed ``bit_in -> bit_out`` transition.

    For a diagonal axis ``bit_out == bit_in`` and projection keeps the
    ``bit -> bit`` block; for an anti-diagonal axis ``bit_out == 1 -
    bit_in`` and projection keeps the flip block.  Amplitude leaving the
    projected transition would leak between shards, so the projection is
    verified to be exact (for a unitary matrix the one-sided check
    suffices).
    """
    pos = qubits.index(qubit)
    k = len(qubits)
    dim = 1 << k
    rows_in = [i for i in range(dim) if ((i >> pos) & 1) == bit_in]
    rows_out = [i for i in range(dim) if ((i >> pos) & 1) == bit_out]
    block = matrix[np.ix_(rows_out, rows_in)]
    other = [i for i in range(dim) if ((i >> pos) & 1) != bit_out]
    if other and np.max(np.abs(matrix[np.ix_(other, rows_in)])) > 1e-12:
        raise PlanValidationError(
            f"gate matrix mixes amplitudes along qubit {qubit}; it cannot be "
            f"resolved per shard"
        )
    new_qubits = [q for q in qubits if q != qubit]
    return np.ascontiguousarray(block), new_qubits


# ---------------------------------------------------------------------------
# Stage segmentation (shared with the parallel runtime)
# ---------------------------------------------------------------------------


def stage_gate_groups(stage) -> list[tuple[list[Gate], object]]:
    """The stage's kernels as ``(gates, kernel_type)`` groups (gate-at-a-time
    groups with ``None`` type for un-kernelized stages)."""
    if stage.kernels is None:
        return [([g], None) for g in stage.gates]
    return [(list(k.gates), k.kernel_type) for k in stage.kernels]


def split_stage_segment_shapes(
    stage,
    logical_to_physical: dict[int, int],
    local_qubits: int,
) -> list[tuple[str, object]]:
    """Structural description of a stage's shard/full-state segmentation.

    The *shape* refers to gates only through their position — ``("full",
    (group_idx, offset))`` descriptors for cross-shard gates and
    ``("shards", [(group_idx, start, end), ...])`` descriptors for runs of
    shard-resolvable gates, where ``group_idx`` indexes
    :func:`stage_gate_groups` and ``(start, end)`` slices that group's gate
    list.  Because the classification depends only on each gate's matrix
    sparsity pattern (never on its angles), a shape computed for one plan is
    valid for every plan sharing its circuit's
    :meth:`~repro.circuits.circuit.Circuit.structural_key` — the property
    the parallel runtime's schedule cache and the Session plan cache rely
    on.  :func:`materialize_stage_segments` turns a shape back into the
    executable segment list for a concrete plan.
    """
    shapes: list[tuple[str, object]] = []
    current: list[tuple[int, int, int]] = []

    def flush() -> None:
        nonlocal current
        if current:
            shapes.append(("shards", current))
            current = []

    for group_idx, (gates, _ktype) in enumerate(stage_gate_groups(stage)):
        if any(_is_cross_shard(g, logical_to_physical, local_qubits) for g in gates):
            # Split the kernel's gate list, preserving order, into runs of
            # shard-resolvable gates and the mixing gates between them.
            run_start: int | None = None
            for offset, gate in enumerate(gates):
                if _is_cross_shard(gate, logical_to_physical, local_qubits):
                    if run_start is not None:
                        current.append((group_idx, run_start, offset))
                        run_start = None
                    flush()
                    shapes.append(("full", (group_idx, offset)))
                else:
                    if run_start is None:
                        run_start = offset
            if run_start is not None:
                current.append((group_idx, run_start, len(gates)))
        else:
            current.append((group_idx, 0, len(gates)))
    flush()
    return shapes


def materialize_stage_segments(
    stage, shapes: list[tuple[str, object]]
) -> list[tuple[str, object]]:
    """Turn a segmentation shape into executable segments for *stage*.

    A ``(start, end)`` slice covering its whole group keeps the group's
    kernel type (fusion kernels stay fused); a partial slice — a kernel
    split around a cross-shard gate — is applied gate-at-a-time, exactly as
    the direct splitter does.
    """
    groups = stage_gate_groups(stage)
    segments: list[tuple[str, object]] = []
    for kind, payload in shapes:
        if kind == "full":
            group_idx, offset = payload
            segments.append(("full", groups[group_idx][0][offset]))
        else:
            materialized: list[tuple[list[Gate], object]] = []
            for group_idx, start, end in payload:
                gates, ktype = groups[group_idx]
                if start == 0 and end == len(gates):
                    materialized.append((gates, ktype))
                else:
                    materialized.append((gates[start:end], None))
            segments.append(("shards", materialized))
    return segments


def split_stage_segments(
    stage,
    logical_to_physical: dict[int, int],
    local_qubits: int,
) -> list[tuple[str, object]]:
    """Split a stage's kernel list into shard-parallel and full-state segments.

    Returns ``("shards", groups)`` segments — runs of ``(gates,
    kernel_type)`` groups every shard processes independently — separated by
    ``("full", gate)`` segments for gates that genuinely mix amplitudes
    across shards (hand-built plans only; staged plans never produce them).
    """
    return materialize_stage_segments(
        stage, split_stage_segment_shapes(stage, logical_to_physical, local_qubits)
    )


def segment_relabels_shards(
    groups: list[tuple[list[Gate], object]],
    logical_to_physical: dict[int, int],
    local_qubits: int,
) -> bool:
    """True when any gate of a shards-segment relabels shard indices (so
    stores must target a second DRAM array rather than update in place)."""
    for gates, _ in groups:
        for gate in gates:
            if _gate_relabels(gate, logical_to_physical, local_qubits):
                return True
    return False


def group_uses_fusion(
    gates: list[Gate],
    ktype,
    logical_to_physical: dict[int, int],
    local_qubits: int,
) -> bool:
    """Whether a kernel group can be applied as one fused local matrix."""
    return ktype is KernelType.FUSION and all(
        logical_to_physical[q] < local_qubits
        for gate in gates
        for q in gate.qubits
    )


def compile_segment_ops(
    groups: list[tuple[list[Gate], object]],
    logical_to_physical: dict[int, int],
    local_qubits: int,
) -> list[tuple[str, object]]:
    """Compile a shards-segment's kernel groups into per-shard ops.

    Shard-local work — fused kernels and gates whose qubits all map to
    local physical positions — is lowered **once** to
    :class:`~repro.sim.program.CompiledOp` closures (fusion, analysis,
    logical→physical translation and gemm planning all resolved here), so
    every shard of every execution replays a pre-resolved stream instead of
    re-deriving it.  Gates touching non-local qubits keep the dynamic
    per-shard path (their reduction depends on the shard index).  Returns
    ``("local", op)`` / ``("dynamic", gate)`` entries for
    :func:`run_segment_ops`.
    """
    faults.check("compile")
    ops: list[tuple[str, object]] = []
    for gates, ktype in groups:
        if group_uses_fusion(gates, ktype, logical_to_physical, local_qubits):
            matrix, logical_qubits = fused_unitary_cached(tuple(gates))
            physical = tuple(logical_to_physical[q] for q in logical_qubits)
            ops.append(
                ("local", compile_unitary_op(matrix, physical, local_qubits))
            )
            continue
        for gate in gates:
            physical = [logical_to_physical[q] for q in gate.qubits]
            if all(p < local_qubits for p in physical):
                ops.append(
                    (
                        "local",
                        compile_unitary_op(
                            gate.matrix(), tuple(physical), local_qubits
                        ),
                    )
                )
            else:
                ops.append(("dynamic", gate))
    return ops


def run_segment_ops(
    data: np.ndarray,
    scratch: np.ndarray,
    ops: list[tuple[str, object]],
    logical_to_physical: dict[int, int],
    local_qubits: int,
    shard_index: int,
    workspace=None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply a compiled shards-segment (:func:`compile_segment_ops`) to one
    loaded shard.  Same contract as :func:`run_groups_on_shard`; compiled
    local ops make the hot loop a tight pre-resolved dispatch.  *workspace*
    defaults to the calling thread's private buffer set, keeping concurrent
    shard workers race-free.
    """
    if workspace is None:
        workspace = thread_workspace()
    faults.check("kernel_apply", shard=shard_index)
    index = shard_index
    for kind, payload in ops:
        if kind == "local":
            data, scratch = payload.run(data, scratch, workspace)
        else:
            data, scratch, index = _gate_on_shard(
                data, scratch, payload, logical_to_physical, local_qubits, index
            )
    return data, scratch, index


def run_groups_on_shard(
    data: np.ndarray,
    scratch: np.ndarray,
    groups: list[tuple[list[Gate], object]],
    logical_to_physical: dict[int, int],
    local_qubits: int,
    shard_index: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply a shards-segment's kernel groups to one loaded shard.

    Returns the final ``(data, scratch, shard_index)`` — the index may
    differ from the input when anti-diagonal non-local axes relabelled the
    shard; the caller stores the shard at the returned index.
    """
    faults.check("kernel_apply", shard=shard_index)
    index = shard_index
    for gates, ktype in groups:
        if group_uses_fusion(gates, ktype, logical_to_physical, local_qubits):
            matrix, logical_qubits = fused_unitary_cached(tuple(gates))
            physical = [logical_to_physical[q] for q in logical_qubits]
            data, scratch = apply_gate_buffered(data, scratch, matrix, physical)
        else:
            for gate in gates:
                data, scratch, index = _gate_on_shard(
                    data, scratch, gate, logical_to_physical, local_qubits, index
                )
    return data, scratch, index


# ---------------------------------------------------------------------------
# Sequential executor
# ---------------------------------------------------------------------------


def execute_plan_offloaded(
    plan: ExecutionPlan,
    machine: MachineConfig,
    initial_state: StateVector | None = None,
    deadline: "Deadline | float | None" = None,
    retry: RetryPolicy | None = None,
    checkpoint: "CheckpointConfig | str | None" = None,
    resume_from=None,
    monitor=None,
) -> tuple[StateVector, OffloadStats]:
    """Execute *plan* shard by shard, as the DRAM-offloading runtime would.

    The full state lives in a host-side array (standing in for node DRAM);
    each stage walks its shards sequentially, applying every kernel of the
    stage to one shard before touching the next.  This is the reference
    one-worker scheduler; :class:`repro.runtime.parallel.ParallelRuntime`
    maps the same shard passes onto multiple workers.

    Fault tolerance: transient shard failures (load, kernel, store) are
    retried from the DRAM copy under *retry* (bounded exponential backoff;
    bit-exact, since a shard's DRAM slice is only written once its
    computation finished), a failed segment-op compile degrades to the
    uncompiled per-gate path, and *deadline* is checked cooperatively at
    stage/segment/shard boundaries (:class:`repro.errors.DeadlineExceeded`).

    Durability: *checkpoint* (a :class:`CheckpointConfig` or directory
    path) snapshots the DRAM state at stage boundaries; *resume_from* (a
    checkpoint file or directory) validates the snapshot against the
    plan's fingerprint and restarts after its last completed stage,
    bit-exact with an uninterrupted run.  A failed checkpoint write is
    counted (``checkpoint_errors``) and never fails the run.  *monitor*
    (``True`` / :class:`IntegrityConfig` / :class:`IntegrityMonitor`)
    enables per-stage norm-drift and inter-stage checksum checks that
    raise :class:`repro.errors.IntegrityError` on corruption.
    """
    n = plan.num_qubits
    machine.validate(n)
    deadline = Deadline.resolve(deadline)
    policy = retry if retry is not None else DEFAULT_RETRY_POLICY
    state = tracked_empty(1 << n)
    if initial_state is None:
        state[:] = 0.0
        state[0] = 1.0
    else:
        if initial_state.num_qubits != n:
            raise PlanValidationError("initial state size does not match plan")
        initial_state.copy_into(state)
    # DRAM-side scratch for layout permutations, cross-shard gates and
    # relabelled shard stores, plus a GPU-side buffer pair the shard
    # contents ping-pong through: O(1) state-sized allocations for the
    # whole execution.
    state_scratch = tracked_empty(1 << n)

    layout = QubitLayout(n)
    local = machine.local_qubits
    stats = OffloadStats(num_shards=1 << (n - local))
    shard_buf = tracked_empty(1 << local)
    shard_scratch = tracked_empty(1 << local)

    ckpt = CheckpointConfig.coerce(checkpoint) if checkpoint is not None else None
    mon = IntegrityMonitor.coerce(monitor)
    fingerprint = (
        checkpoint_fingerprint(plan)
        if ckpt is not None or resume_from is not None
        else ""
    )
    start_stage = 0
    if resume_from is not None:
        ck = find_checkpoint(
            resume_from,
            fingerprint=fingerprint,
            tag=ckpt.tag if ckpt is not None else "run",
        )
        if ck is not None:
            if ck.num_qubits != n or ck.state.shape != state.shape \
                    or ck.state.dtype != state.dtype:
                raise PlanValidationError(
                    f"checkpoint {ck.path.name} does not match the plan's "
                    f"state ({ck.num_qubits} qubits, {ck.state.dtype})"
                )
            np.copyto(state, ck.state)
            layout.update(ck.layout_mapping())
            start_stage = ck.stage_index + 1
            stats.resumed_from_stage = ck.stage_index
            stats.stages_skipped = start_stage
    num_stages = len(plan.stages)

    for stage_index, stage in enumerate(plan.stages):
        if stage_index < start_stage:
            continue
        deadline.check("stage")
        if mon is not None:
            mon.stage_begin(state, stage_index)
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            permuted = permute_state(state, layout, target, out=state_scratch)
            if permuted is not state:
                state, state_scratch = permuted, state
            layout.update(target)
        logical_to_physical = layout.logical_to_physical()

        segments = split_stage_segments(stage, logical_to_physical, local)

        stage_loads = 0
        for kind, payload in segments:
            deadline.check("segment")
            if kind == "full":
                gate = payload
                physical = [logical_to_physical[q] for q in gate.qubits]
                state, state_scratch = apply_gate_buffered(
                    state, state_scratch, gate.matrix(), physical
                )
                continue
            relabels = segment_relabels_shards(payload, logical_to_physical, local)
            # Lower the segment's local work once; every shard replays the
            # compiled op stream (fusion/analysis/planning amortised over
            # the whole shard sweep instead of paid per shard).  A compile
            # failure degrades to the uncompiled per-gate path.
            try:
                segment_ops = compile_segment_ops(payload, logical_to_physical, local)
            except ReproError:
                segment_ops = None
                stats.fallbacks += 1
            shards = shard_slices(state, local)
            # Relabelled shards land at new indices, so they are stored into
            # the second DRAM array (every index is written exactly once —
            # the relabel map is a bijection) and the arrays swap after the
            # pass.  Without relabels shards are updated in place.
            out_shards = shard_slices(state_scratch, local) if relabels else shards
            for shard_index, shard in enumerate(shards):
                # Transient failures retry from the DRAM shard, which is
                # untouched until the store below succeeds.
                attempt = 1
                while True:
                    try:
                        deadline.check("shard")
                        faults.check("shard_load", shard=shard_index)
                        np.copyto(shard_buf, shard)
                        data, scratch = shard_buf, shard_scratch
                        stage_loads += 1
                        stats.shard_loads += 1
                        stats.bytes_transferred += data.nbytes

                        if segment_ops is not None:
                            data, scratch, out_index = run_segment_ops(
                                data, scratch, segment_ops, logical_to_physical,
                                local, shard_index,
                            )
                        else:
                            data, scratch, out_index = run_groups_on_shard(
                                data, scratch, payload, logical_to_physical,
                                local, shard_index,
                            )

                        faults.check("shard_store", shard=shard_index)
                        out_shards[out_index][:] = data
                        shard_buf, shard_scratch = data, scratch
                        stats.shard_stores += 1
                        stats.bytes_transferred += data.nbytes
                        break
                    except TransientError:
                        stats.retries += 1
                        if attempt >= policy.max_attempts:
                            raise
                        policy.sleep(attempt)
                        attempt += 1
            if relabels:
                state, state_scratch = state_scratch, state
        stats.per_stage_loads.append(stage_loads)
        stats.num_stages += 1
        if mon is not None:
            mon.stage_complete(state, stage_index)
        if (
            ckpt is not None
            and stage_index < num_stages - 1
            and (stage_index + 1) % ckpt.every == 0
        ):
            try:
                write_checkpoint(
                    ckpt,
                    fingerprint=fingerprint,
                    num_qubits=n,
                    stage_index=stage_index,
                    layout=layout.logical_to_physical(),
                    state=state,
                )
                stats.checkpoints_written += 1
            except (ReproError, OSError):
                # Advisory: a failed snapshot costs resumability, never
                # the run itself.
                stats.checkpoint_errors += 1
        faults.crash_after_stage(stage_index)

    if mon is not None:
        stats.integrity_checks = mon.stages_checked
        stats.max_norm_drift = mon.max_norm_drift

    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        permuted = permute_state(state, layout, identity, out=state_scratch)
        if permuted is not state:
            state, state_scratch = permuted, state

    return StateVector(n, state), stats

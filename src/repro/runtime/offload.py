"""DRAM-offloading executor (Section VII-C of the paper).

When the state vector does not fit in GPU memory, Atlas keeps it in host
DRAM, splits it into shards of ``2^L`` amplitudes, and swaps shards through
the GPUs one batch at a time.  Functionally the result is identical to the
in-memory executor; what changes is the *access pattern*: within a stage,
each shard is loaded once, all of the stage's kernels are applied to it,
and it is written back — the property that makes staged execution so much
cheaper than gate-at-a-time offloading (the QDAO comparison of Figure 7).

This module provides that shard-by-shard execution path.  Gates whose
non-insular qubits are local act entirely within a shard; insular non-local
qubits are handled per shard from the shard's fixed high-order bits:

* a *control* on a non-local qubit selects which shards the reduced gate is
  applied to,
* a *diagonal* non-local qubit contributes a per-shard phase,
* an *anti-diagonal* non-local qubit (X/Y-like) exchanges amplitudes
  between shard pairs, which the executor realises as a shard-index swap
  plus the reduced single-shard operation.

The executor also counts shard loads/stores so tests can verify the
one-load-per-stage-per-shard property that the paper's speedup over QDAO
rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..circuits.gates import Gate
from ..cluster.machine import MachineConfig
from ..core.kernel import KernelType
from ..core.plan import ExecutionPlan
from ..sim.apply import apply_gate_buffered, tracked_empty
from ..sim.fusion import fused_unitary_cached
from ..sim.statevector import StateVector
from .sharding import QubitLayout, permute_state, shard_slices

__all__ = ["OffloadStats", "execute_plan_offloaded"]


@dataclass
class OffloadStats:
    """Shard-traffic accounting of one offloaded execution."""

    num_stages: int = 0
    num_shards: int = 0
    shard_loads: int = 0
    shard_stores: int = 0
    bytes_transferred: int = 0
    per_stage_loads: list[int] = field(default_factory=list)


def _is_cross_shard(gate: Gate, logical_to_physical: dict[int, int], local_qubits: int) -> bool:
    """True when *gate* moves amplitude between shards.

    That happens only for an insular, *anti-diagonal*, non-control qubit
    mapped to a non-local physical position (e.g. an X gate the stager left
    on a regional/global qubit).  Diagonal qubits and control qubits stay
    within a shard.
    """
    control_set = set(gate.control_qubits)
    for q, p in zip(gate.qubits, (logical_to_physical[q] for q in gate.qubits)):
        if p < local_qubits or q in control_set:
            continue
        # Non-local, non-control qubit: cross-shard unless the gate is
        # diagonal along it (a control-free diagonal gate never mixes bits).
        if not gate.is_diagonal():
            return True
    return False


@lru_cache(maxsize=4096)
def _reduced_gate(
    gate: Gate, fixed: tuple[tuple[int, int], ...]
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Reduce *gate* by resolving the listed ``(qubit, bit)`` assignments.

    Control qubits are dropped (the caller only asks when the bit is 1);
    insular diagonal qubits are projected onto their fixed bit.  Memoized so
    every shard that resolves the same gate the same way shares one matrix
    object (which also keeps the apply-engine's dispatch analysis warm).
    """
    matrix = gate.matrix()
    qubits = list(gate.qubits)
    control_set = set(gate.control_qubits)
    for q, bit in fixed:
        if q in control_set:
            matrix, qubits = _drop_control(matrix, qubits, q)
        else:
            matrix, qubits = _project_insular(matrix, qubits, q, bit)
    matrix = np.ascontiguousarray(matrix)
    matrix.setflags(write=False)
    return matrix, tuple(qubits)


def _gate_on_shard(
    shard: np.ndarray,
    scratch: np.ndarray,
    gate: Gate,
    logical_to_physical: dict[int, int],
    local_qubits: int,
    shard_index: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply *gate* to one shard, resolving insular non-local qubits.

    The shard contents ping-pong between the two buffers; returns the
    ``(shard, scratch)`` pair (unchanged when a controlled gate whose
    non-local control bit is 0 leaves the shard untouched).
    """
    physical = [logical_to_physical[q] for q in gate.qubits]
    if all(p < local_qubits for p in physical):
        return apply_gate_buffered(shard, scratch, gate.matrix(), physical)

    # Some qubits are non-local; they must be insular (the stager guarantees
    # this).  Handle controls and diagonal phases from the shard index.
    control_set = set(gate.control_qubits)
    fixed: list[tuple[int, int]] = []
    for q, p in zip(gate.qubits, physical):
        if p < local_qubits:
            continue
        bit = (shard_index >> (p - local_qubits)) & 1
        if q in control_set and bit == 0:
            # Unsatisfied non-local control: the shard is untouched.
            return shard, scratch
        fixed.append((q, bit))
    matrix, reduced_qubits = _reduced_gate(gate, tuple(fixed))
    if not reduced_qubits:
        # Pure phase on this shard.
        shard *= matrix[0, 0]
        return shard, scratch
    reduced_physical = [logical_to_physical[q] for q in reduced_qubits]
    if any(p >= local_qubits for p in reduced_physical):
        raise ValueError(
            f"gate {gate} has a non-insular qubit mapped to a non-local position"
        )
    return apply_gate_buffered(shard, scratch, matrix, reduced_physical)


def _drop_control(matrix: np.ndarray, qubits: list[int], control: int) -> tuple[np.ndarray, list[int]]:
    """Remove a satisfied control qubit from a gate matrix."""
    pos = qubits.index(control)
    k = len(qubits)
    dim = 1 << k
    keep = [i for i in range(dim) if (i >> pos) & 1]
    reduced = matrix[np.ix_(keep, keep)]
    new_qubits = [q for q in qubits if q != control]
    return np.ascontiguousarray(reduced), new_qubits


def _project_insular(
    matrix: np.ndarray, qubits: list[int], qubit: int, bit: int
) -> tuple[np.ndarray, list[int]]:
    """Project an insular (diagonal/anti-diagonal) qubit onto its fixed bit value.

    For a diagonal qubit the output bit equals the input bit, so projection
    keeps the ``bit → bit`` block.  Anti-diagonal single-qubit gates on
    non-local qubits would flip the shard index; the staged plans produced
    in this repository never place them non-locally (X/Y are non-insular
    only in the relaxed Appendix-B sense), so that case is rejected.
    """
    pos = qubits.index(qubit)
    k = len(qubits)
    dim = 1 << k
    rows = [i for i in range(dim) if ((i >> pos) & 1) == bit]
    block = matrix[np.ix_(rows, rows)]
    # Verify the projection is exact (no amplitude leaves the block).
    other = [i for i in range(dim) if ((i >> pos) & 1) != bit]
    if other and np.max(np.abs(matrix[np.ix_(other, rows)])) > 1e-12:
        raise ValueError(
            "anti-diagonal action on a non-local qubit is not supported by "
            "the offload executor"
        )
    new_qubits = [q for q in qubits if q != qubit]
    return np.ascontiguousarray(block), new_qubits


def execute_plan_offloaded(
    plan: ExecutionPlan,
    machine: MachineConfig,
    initial_state: StateVector | None = None,
) -> tuple[StateVector, OffloadStats]:
    """Execute *plan* shard by shard, as the DRAM-offloading runtime would.

    The full state lives in a host-side array (standing in for node DRAM);
    each stage walks its shards sequentially, applying every kernel of the
    stage to one shard before touching the next.
    """
    n = plan.num_qubits
    machine.validate(n)
    state = tracked_empty(1 << n)
    if initial_state is None:
        state[:] = 0.0
        state[0] = 1.0
    else:
        if initial_state.num_qubits != n:
            raise ValueError("initial state size does not match plan")
        np.copyto(state, initial_state.data)
    # DRAM-side scratch for layout permutations and cross-shard gates, plus
    # a GPU-side buffer pair the shard contents ping-pong through: O(1)
    # state-sized allocations for the whole execution.
    state_scratch = tracked_empty(1 << n)

    layout = QubitLayout(n)
    local = machine.local_qubits
    stats = OffloadStats(num_shards=1 << (n - local))
    shard_size = 1 << local
    shard_buf = tracked_empty(shard_size)
    shard_scratch = tracked_empty(shard_size)

    for stage in plan.stages:
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            permuted = permute_state(state, layout, target, out=state_scratch)
            if permuted is not state:
                state, state_scratch = permuted, state
            layout.update(target)
        logical_to_physical = layout.logical_to_physical()

        if stage.kernels is None:
            gate_groups = [[g] for g in stage.gates]
            kernel_types = [None] * len(gate_groups)
        else:
            gate_groups = [list(k.gates) for k in stage.kernels]
            kernel_types = [k.kernel_type for k in stage.kernels]

        # Split the kernel list into segments at "cross-shard" gates: gates
        # with an anti-diagonal insular qubit mapped non-locally permute
        # whole shards, so they are applied on the full DRAM-resident state
        # (a shard-index relabel in the real runtime).  Everything else runs
        # shard-by-shard, which is the common case.
        segments: list[tuple[str, object]] = []
        current_groups: list[tuple[list[Gate], object]] = []

        def flush_groups() -> None:
            nonlocal current_groups
            if current_groups:
                segments.append(("shards", current_groups))
                current_groups = []

        for gates, ktype in zip(gate_groups, kernel_types):
            if any(_is_cross_shard(g, logical_to_physical, local) for g in gates):
                # Split the kernel's gate list, preserving order, into runs of
                # shard-local gates and the cross-shard gates between them.
                run: list[Gate] = []
                for gate in gates:
                    if _is_cross_shard(gate, logical_to_physical, local):
                        if run:
                            current_groups.append((run, None))
                            run = []
                        flush_groups()
                        segments.append(("full", gate))
                    else:
                        run.append(gate)
                if run:
                    current_groups.append((run, None))
            else:
                current_groups.append((gates, ktype))
        flush_groups()

        stage_loads = 0
        for kind, payload in segments:
            if kind == "full":
                gate = payload
                physical = [logical_to_physical[q] for q in gate.qubits]
                state, state_scratch = apply_gate_buffered(
                    state, state_scratch, gate.matrix(), physical
                )
                continue
            shards = shard_slices(state, local)
            for shard_index, shard in enumerate(shards):
                np.copyto(shard_buf, shard)
                data, scratch = shard_buf, shard_scratch
                stage_loads += 1
                stats.shard_loads += 1
                stats.bytes_transferred += data.nbytes

                for gates, ktype in payload:
                    use_fusion = (
                        ktype is KernelType.FUSION
                        and all(
                            logical_to_physical[q] < local
                            for gate in gates
                            for q in gate.qubits
                        )
                    )
                    if use_fusion:
                        matrix, logical_qubits = fused_unitary_cached(tuple(gates))
                        physical = [logical_to_physical[q] for q in logical_qubits]
                        data, scratch = apply_gate_buffered(
                            data, scratch, matrix, physical
                        )
                    else:
                        for gate in gates:
                            data, scratch = _gate_on_shard(
                                data, scratch, gate, logical_to_physical, local,
                                shard_index,
                            )

                shard[:] = data
                shard_buf, shard_scratch = data, scratch
                stats.shard_stores += 1
                stats.bytes_transferred += data.nbytes
        stats.per_stage_loads.append(stage_loads)
        stats.num_stages += 1

    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        permuted = permute_state(state, layout, identity, out=state_scratch)
        if permuted is not state:
            state, state_scratch = permuted, state

    return StateVector(n, state), stats

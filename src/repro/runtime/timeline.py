"""Performance model: modelled wall-clock time of a plan on a machine.

The GPUs, NVLink and Slingshot network of the paper's testbed are replaced
by a discrete performance model (see DESIGN.md).  For a partitioned plan
this module computes:

* per-stage **computation time** — the summed kernel cost of the stage,
  converted to seconds for a ``2^L`` shard, times the number of sequential
  shard passes each GPU has to make (one when there are at least as many
  GPUs as shards, more when shards are swapped through DRAM),
* per-transition **communication time** — the all-to-all exchange modelled
  by :mod:`repro.cluster.comm`,
* optional **offload traffic** — PCIe transfers when the state does not fit
  in GPU memory (Section VII-C).

The output mirrors the measurements behind Figures 5–8: total simulation
time plus the communication/computation breakdown of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.comm import CommModel
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import AMPLITUDE_BYTES, MachineConfig
from ..core.plan import ExecutionPlan

__all__ = ["TimingBreakdown", "model_simulation_time"]


@dataclass
class TimingBreakdown:
    """Modelled timing of one simulation run."""

    total_seconds: float
    computation_seconds: float
    communication_seconds: float
    offload_seconds: float
    per_stage_compute: list[float] = field(default_factory=list)
    per_transition_comm: list[float] = field(default_factory=list)
    num_stages: int = 0
    num_kernels: int = 0
    shard_passes_per_stage: int = 1
    #: Modelled data-parallel width: shards processed concurrently.
    parallel_workers: int = 1
    #: Modelled shard loads per stage on the streaming (offload) path —
    #: exactly ``num_shards`` when shards stream through the GPUs, else 0.
    #: The functional executor's ``OffloadStats.per_stage_loads`` must match
    #: this number stage for stage (the cross-check tests rely on it).
    offload_shard_loads_per_stage: int = 0

    @property
    def communication_fraction(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return (self.communication_seconds + self.offload_seconds) / self.total_seconds

    def as_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "computation_seconds": self.computation_seconds,
            "communication_seconds": self.communication_seconds,
            "offload_seconds": self.offload_seconds,
            "communication_fraction": self.communication_fraction,
            "num_stages": self.num_stages,
            "num_kernels": self.num_kernels,
        }


def model_simulation_time(
    plan: ExecutionPlan,
    machine: MachineConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    kernel_overhead_factor: float = 1.0,
    comm_overhead_factor: float = 1.0,
) -> TimingBreakdown:
    """Model the end-to-end simulation time of *plan* on *machine*.

    Parameters
    ----------
    plan:
        Kernelized execution plan.
    machine:
        Cluster configuration (``L``/``R``/``G``, bandwidths, overheads).
    cost_model:
        Converts kernel cost units to seconds.
    kernel_overhead_factor, comm_overhead_factor:
        Multipliers used by the baseline simulator models to express their
        extra per-kernel / per-exchange overheads relative to Atlas; 1.0
        for Atlas itself.
    """
    n = plan.num_qubits
    machine.validate(n)

    # How many shards must each GPU process sequentially?  With 2^(R+G)
    # shards and ``physical_gpus`` real devices, shards beyond the GPU count
    # are swapped through DRAM (the offload path of Section VII-C).
    num_shards = machine.num_shards
    physical_gpus = machine.physical_gpus
    shard_passes = max(1, (num_shards + physical_gpus - 1) // physical_gpus)
    needs_offload = machine.requires_offload(n)
    streams_shards = needs_offload or shard_passes > 1

    comm = CommModel(machine, n)
    compute_seconds = 0.0
    offload_seconds = 0.0
    per_stage_compute: list[float] = []
    per_transition_comm: list[float] = []

    prev_partition = None
    num_kernels = 0
    for stage in plan.stages:
        partition = stage.partition
        if prev_partition is not None:
            seconds = comm.record_transition(
                set(prev_partition.local),
                set(prev_partition.global_),
                set(partition.local),
                set(partition.global_),
            ) * comm_overhead_factor
            per_transition_comm.append(seconds)
        prev_partition = partition

        if stage.kernels is None:
            stage_units = 0.0
            stage_kernels = 0
        else:
            stage_units = stage.kernels.total_cost
            stage_kernels = len(stage.kernels)
        num_kernels += stage_kernels
        kernel_launches = stage_kernels * machine.kernel_launch_overhead
        stage_seconds = (
            cost_model.units_to_seconds(stage_units, machine.local_qubits)
            + kernel_launches
        ) * kernel_overhead_factor
        # Every GPU processes its shards sequentially; shards on different
        # GPUs proceed in parallel (data parallelism across shards).
        stage_seconds *= shard_passes
        per_stage_compute.append(stage_seconds)
        compute_seconds += stage_seconds

        if streams_shards:
            # Within a stage every shard is loaded into a GPU once and
            # written back once (the one-load-per-stage-per-shard property),
            # so exactly ``num_shards`` loads and stores stream over PCIe —
            # regardless of whether ``num_shards`` divides evenly across the
            # GPUs.  The ``shard_passes * min(num_shards, physical_gpus)``
            # formula this replaces overcounted by up to one full GPU batch
            # whenever the division was uneven.
            bytes_moved = 2.0 * machine.shard_bytes * num_shards
            offload_seconds += bytes_moved / (machine.pcie_bandwidth * physical_gpus)

    communication_seconds = comm.total_time * comm_overhead_factor
    total = compute_seconds + communication_seconds + offload_seconds
    return TimingBreakdown(
        total_seconds=total,
        computation_seconds=compute_seconds,
        communication_seconds=communication_seconds,
        offload_seconds=offload_seconds,
        per_stage_compute=per_stage_compute,
        per_transition_comm=per_transition_comm,
        num_stages=plan.num_stages,
        num_kernels=num_kernels,
        shard_passes_per_stage=shard_passes,
        parallel_workers=min(num_shards, physical_gpus),
        offload_shard_loads_per_stage=num_shards if streams_shards else 0,
    )

"""EXECUTE — functional staged execution of a partitioned circuit.

This is Algorithm 1's ``EXECUTE`` realised on the NumPy substrate: the
state is permuted into each stage's physical layout, then every kernel of
the stage is applied.  Kernels are applied either as a fused matrix
(fusion kernels) or gate-by-gate (shared-memory kernels), always on the
*physical* qubit indices given by the stage's logical→physical mapping,
which is exactly what the GPU implementation does on each shard.

The executor validates the staging invariant as it goes: every non-insular
qubit of every gate must be mapped to a local physical position
(``< L``).  Violations raise immediately instead of silently producing a
plan the real machine could not run without extra communication.

By default the plan is first lowered to a
:class:`~repro.sim.program.CompiledProgram` (memoized per plan object, see
:mod:`repro.runtime.compile`) and the hot loop is a tight dispatch over
pre-resolved ops; ``compiled=False`` keeps the original gate-at-a-time
interpreter, which the compiled path is bit-exact with (the property tests
and the benchmark gate check this).

This single-stream executor is the correctness reference for the
shard-level runtimes: :mod:`repro.runtime.offload` replays the same plan
shard by shard, and :mod:`repro.runtime.parallel` schedules those shards
across a worker pool; both must agree with it bit for bit on staged plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.gates import Gate
from ..cluster.machine import MachineConfig
from ..core.kernel import Kernel, KernelType
from ..core.plan import ExecutionPlan
from ..errors import KernelError, PlanValidationError, TransientError
from ..sim.apply import apply_gate_buffered, tracked_empty
from ..sim.fusion import fused_unitary_cached
from ..sim.program import CompiledProgram, thread_workspace
from ..sim.statevector import StateVector
from .compile import compiled_program_for
from .sharding import QubitLayout, permute_state

__all__ = ["ExecutionTrace", "execute_plan", "trace_for_program"]


@dataclass
class ExecutionTrace:
    """What happened during one plan execution (used by tests and reports)."""

    num_stages: int = 0
    num_kernels: int = 0
    num_permutations: int = 0
    kernels_per_stage: list[int] = field(default_factory=list)
    locality_checked: bool = True


def _apply_kernel(
    state: np.ndarray,
    scratch: np.ndarray,
    kernel: Kernel,
    logical_to_physical: dict[int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one kernel to the full state in the current physical layout.

    The state ping-pongs between the two buffers; the returned pair is
    ``(new_state, new_scratch)``.
    """
    if kernel.kernel_type is KernelType.FUSION:
        matrix, logical_qubits = fused_unitary_cached(kernel.gates)
        physical_qubits = [logical_to_physical[q] for q in logical_qubits]
        return apply_gate_buffered(state, scratch, matrix, physical_qubits)
    # Shared-memory kernels apply their gates one by one.
    for gate in kernel.gates:
        physical_qubits = [logical_to_physical[q] for q in gate.qubits]
        state, scratch = apply_gate_buffered(
            state, scratch, gate.matrix(), physical_qubits
        )
    return state, scratch


def _check_locality(gate: Gate, logical_to_physical: dict[int, int], local_qubits: int) -> None:
    for q in gate.non_insular_qubits():
        if logical_to_physical[q] >= local_qubits:
            raise PlanValidationError(
                f"staging invariant violated: non-insular qubit {q} of gate "
                f"{gate} is mapped to non-local physical position "
                f"{logical_to_physical[q]} (L={local_qubits})"
            )


def trace_for_program(program: CompiledProgram) -> ExecutionTrace:
    """An :class:`ExecutionTrace` from a compiled program's metadata (the
    counts are recorded at compile time; execution itself traces nothing)."""
    return ExecutionTrace(
        num_stages=program.num_stages,
        num_kernels=program.num_kernels,
        num_permutations=program.num_permutations,
        kernels_per_stage=list(program.kernels_per_stage),
        locality_checked=program.locality_checked,
    )


def execute_plan(
    plan: ExecutionPlan,
    initial_state: StateVector | None = None,
    machine: MachineConfig | None = None,
    check_locality: bool = True,
    compiled: bool = True,
) -> tuple[StateVector, ExecutionTrace]:
    """Execute *plan* and return the final state plus an execution trace.

    Parameters
    ----------
    plan:
        A kernelized execution plan from :func:`repro.core.partition`.
    initial_state:
        Starting state (default |0...0>).  Not modified.
    machine:
        Optional machine config; when given, its ``local_qubits`` value is
        used for the locality check, otherwise the per-stage partition's
        local-set size is used.
    check_locality:
        Verify the staging invariant while executing (at compile time on
        the compiled path).
    compiled:
        Lower the plan to a :class:`~repro.sim.program.CompiledProgram`
        (memoized per plan object) and execute the op stream — the default
        and fast path.  ``False`` runs the original per-gate interpreter;
        both produce bit-identical states.
    """
    if compiled:
        # A failed lowering (KernelError, or a transient injected at the
        # "compile" site) degrades to the bit-exact interpreter below; plan
        # validation failures are the plan's fault and propagate.
        try:
            program = compiled_program_for(plan, machine, check_locality)
        except (KernelError, TransientError):
            pass
        else:
            # Per-thread workspace: concurrent execute_plan calls on one plan
            # share the memoized op stream but never a buffer, keeping this
            # entry point as thread-safe as the interpreter below.
            state = program.run(initial_state, workspace=thread_workspace())
            return state, trace_for_program(program)

    n = plan.num_qubits
    state = tracked_empty(1 << n)
    if initial_state is None:
        state[:] = 0.0
        state[0] = 1.0
    else:
        if initial_state.num_qubits != n:
            raise PlanValidationError("initial state size does not match plan")
        initial_state.copy_into(state)
    # The whole execution ping-pongs between these two buffers: every gate,
    # kernel and layout permutation writes into one of them.  The engine
    # allocates nothing further per gate; only wide (k >= 3 dense) fused
    # kernels cost a tensordot workspace per application, so allocations
    # scale with the kernel count, never with the gate count.
    scratch = tracked_empty(1 << n)

    layout = QubitLayout(n)
    trace = ExecutionTrace(locality_checked=check_locality)

    for stage in plan.stages:
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            permuted = permute_state(state, layout, target, out=scratch)
            if permuted is not state:
                state, scratch = permuted, state
            layout.update(target)
            trace.num_permutations += 1

        local_count = (
            machine.local_qubits if machine is not None else stage.partition.num_local
        )
        logical_to_physical = layout.logical_to_physical()
        if check_locality:
            for gate in stage.gates:
                _check_locality(gate, logical_to_physical, local_count)

        if stage.kernels is None:
            # Un-kernelized stage: apply the gates directly.
            for gate in stage.gates:
                physical = [logical_to_physical[q] for q in gate.qubits]
                state, scratch = apply_gate_buffered(
                    state, scratch, gate.matrix(), physical
                )
            trace.kernels_per_stage.append(0)
        else:
            for kernel in stage.kernels:
                state, scratch = _apply_kernel(
                    state, scratch, kernel, logical_to_physical
                )
            trace.kernels_per_stage.append(len(stage.kernels))
            trace.num_kernels += len(stage.kernels)
        trace.num_stages += 1

    # Permute back to the identity layout so callers see logical ordering.
    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        permuted = permute_state(state, layout, identity, out=scratch)
        if permuted is not state:
            state, scratch = permuted, state
        trace.num_permutations += 1

    return StateVector(n, state), trace

"""State-vector layout management: logical→physical permutation and sharding.

Between stages Atlas remaps qubits so that the next stage's local qubits
occupy the low-order *physical* positions of the distributed state
(Algorithm 1's ``SHARD`` step).  Functionally this is a permutation of the
amplitude array; on the real machine it is an all-to-all exchange whose
cost is modelled in :mod:`repro.cluster.comm`.

The functional permutation here is exact: the state is viewed as a rank-n
tensor (axis ``n-1-p`` holds physical qubit ``p``) and axes are transposed
so that each logical qubit moves to its new physical position.  Shards are
then contiguous slices of the permuted array: shard ``j`` holds the
amplitudes whose non-local physical bits encode ``j``.
"""

from __future__ import annotations

import numpy as np

from ..core.plan import QubitPartition
from ..errors import PlanValidationError, StateValidationError

__all__ = ["QubitLayout", "permutation_axes", "permute_state", "shard_slices"]


class QubitLayout:
    """Tracks the current logical→physical qubit mapping of the state."""

    def __init__(self, num_qubits: int, mapping: dict[int, int] | None = None):
        self.num_qubits = num_qubits
        if mapping is None:
            self._logical_to_physical = {q: q for q in range(num_qubits)}
        else:
            self._validate(mapping, num_qubits)
            self._logical_to_physical = dict(mapping)

    @staticmethod
    def _validate(mapping: dict[int, int], num_qubits: int) -> None:
        if sorted(mapping.keys()) != list(range(num_qubits)):
            raise PlanValidationError("mapping must cover every logical qubit")
        if sorted(mapping.values()) != list(range(num_qubits)):
            raise PlanValidationError(
                "mapping must be a permutation of physical positions"
            )

    def physical(self, logical: int) -> int:
        return self._logical_to_physical[logical]

    def logical(self, physical: int) -> int:
        return self.physical_to_logical()[physical]

    def logical_to_physical(self) -> dict[int, int]:
        return dict(self._logical_to_physical)

    def physical_to_logical(self) -> dict[int, int]:
        return {p: q for q, p in self._logical_to_physical.items()}

    def copy(self) -> "QubitLayout":
        return QubitLayout(self.num_qubits, self._logical_to_physical)

    def update(self, mapping: dict[int, int]) -> None:
        self._validate(mapping, self.num_qubits)
        self._logical_to_physical = dict(mapping)

    def is_identity(self) -> bool:
        return all(p == q for q, p in self._logical_to_physical.items())

    def __eq__(self, other) -> bool:
        if not isinstance(other, QubitLayout):
            return NotImplemented
        return self._logical_to_physical == other._logical_to_physical

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QubitLayout {self._logical_to_physical}>"


def permutation_axes(
    cur_map: dict[int, int], target: dict[int, int], n: int
) -> list[int]:
    """Tensor-axis permutation realising a layout change.

    Axis ``a`` of the current rank-``n`` state tensor holds physical qubit
    ``p = n-1-a``, i.e. logical qubit ``cur_map⁻¹(p)``; in the target
    tensor, axis ``a'`` must hold the logical qubit mapped to physical
    position ``n-1-a'``.  An identity result means the two mappings induce
    the same amplitude ordering (no data moves) — plan compilation elides
    the permutation entirely in that case.
    """
    phys_to_logical = {p: q for q, p in cur_map.items()}
    logical_to_axis = {phys_to_logical[p]: n - 1 - p for p in range(n)}
    target_inverse = {p: q for q, p in target.items()}
    return [logical_to_axis[target_inverse[n - 1 - a]] for a in range(n)]


def permute_state(
    state: np.ndarray,
    current: QubitLayout,
    target: dict[int, int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Permute *state* from the *current* layout to the *target* mapping.

    Parameters
    ----------
    state:
        Flat amplitude array laid out according to *current* (physical bit
        ``p`` of the index is logical qubit ``current.logical(p)``).
    current:
        Current layout (not modified).
    target:
        Desired logical→physical mapping.
    out:
        Optional destination buffer of the same size (must not overlap
        *state*).  When given, the permuted amplitudes are written into it
        and it is returned — no allocation.  Ignored when the permutation
        is an identity (the input array is returned as-is).

    Returns
    -------
    numpy.ndarray
        A C-contiguous array in the target layout: *state* itself for an
        identity permutation, otherwise *out* or a new array.
    """
    n = current.num_qubits
    if state.size != 1 << n:
        raise StateValidationError("state size does not match layout")
    cur_map = current.logical_to_physical()
    if cur_map == target:
        return state

    tensor = state.reshape((2,) * n)
    axes = permutation_axes(cur_map, target, n)
    if axes == list(range(n)):
        # The two mappings induce the same amplitude ordering; no data moves.
        return state
    permuted = np.transpose(tensor, axes=axes)
    if out is not None:
        if out.size != state.size:
            raise StateValidationError("out size does not match state")
        np.copyto(out.reshape(permuted.shape), permuted)
        return out
    return np.ascontiguousarray(permuted).reshape(-1)


def shard_slices(state: np.ndarray, local_qubits: int) -> list[np.ndarray]:
    """Split *state* into contiguous shards of ``2^local_qubits`` amplitudes.

    The returned arrays are views into *state* — mutating them mutates the
    underlying state, which is exactly what the shard-by-shard executor
    wants.  The views are pairwise disjoint (shard ``j`` covers exactly
    the half-open amplitude range ``[j·2^L, (j+1)·2^L)``), so concurrent
    workers of the parallel runtime may load and store *different* shards
    without synchronisation.
    """
    shard_size = 1 << local_qubits
    if state.size % shard_size != 0:
        raise StateValidationError(
            "state size is not a multiple of the shard size"
        )
    num_shards = state.size // shard_size
    return [state[j * shard_size : (j + 1) * shard_size] for j in range(num_shards)]

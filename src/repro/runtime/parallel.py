"""Parallel shard-scheduler runtime: data-parallel DRAM offload execution.

The paper's machine model executes the ``2^(R+G)`` shards of a stage *in
parallel* across the cluster's physical GPUs (Section II); the sequential
:func:`repro.runtime.offload.execute_plan_offloaded` walks them one at a
time on one thread.  This module maps the same shard passes onto a pool of
``W = min(num_shards, machine.physical_gpus)`` worker threads:

* **Static round-robin schedule** — worker ``w`` owns shard indices
  ``w, w+W, w+2W, ...`` of every stage, mirroring how shards beyond the
  GPU count are streamed through a fixed device in passes (Section VII-C).
  The assignment is deterministic, so runs are reproducible and — because
  every shard executes exactly the same kernel sequence on its own buffers
  as under the sequential executor — **bit-exact** with it.
* **Per-worker buffer ownership** — each worker thread owns two ping-pong
  buffer pairs of ``2^L`` amplitudes (its "device memory").  No shard
  buffer is ever shared between workers; the DRAM-resident state is only
  touched through disjoint shard views (see
  :func:`repro.runtime.sharding.shard_slices`).
* **Double-buffered prefetch** — while a worker computes on one buffer
  pair, the load of its next shard proceeds into the other pair on a
  dedicated loader thread, modelling the PCIe/compute overlap of the
  paper's offload pipeline.  The alternation guarantees a prefetch never
  writes a buffer the compute still reads.
* **Barriers only where the model requires them** — workers join at the
  end of each shards-segment; full-state gates (cross-shard mixing, only
  reachable from hand-built plans) and inter-stage layout permutations run
  on the scheduling thread between barriers, exactly like the sequential
  executor.

The NumPy/BLAS kernels of :mod:`repro.sim.apply` release the GIL for the
bulk of their work and keep their temporaries in thread-local scratch
pools, so workers genuinely overlap on multi-core hosts.  (On a host with
fewer cores than workers the schedule still pipelines correctly but cannot
yield wall-clock speedup; the benchmark records ``cpu_count`` next to its
timings for this reason.)

:meth:`ParallelRuntime.run_batch` executes many ``(plan, initial state)``
problems back to back on one runtime — the "heavy traffic" scenario —
reusing the worker pool, the per-worker device buffers, the DRAM scratch
array, and the per-plan stage segmentation, so only the result array is
allocated per problem.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from ..cluster.machine import MachineConfig
from ..core.plan import ExecutionPlan
from ..errors import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    PermanentError,
    PlanValidationError,
    ReproError,
    RetryPolicy,
    SessionClosedError,
    TransientError,
)
from ..sim.apply import apply_gate_buffered, tracked_empty
from ..sim.statevector import StateVector
from . import faults
from .checkpoint import (
    CheckpointConfig,
    checkpoint_fingerprint,
    find_checkpoint,
    write_checkpoint,
)
from .integrity import IntegrityMonitor
from .offload import (
    OffloadStats,
    WorkerStats,
    compile_segment_ops,
    materialize_stage_segments,
    run_groups_on_shard,
    run_segment_ops,
    segment_relabels_shards,
    split_stage_segment_shapes,
)
from .sharding import QubitLayout, permute_state, shard_slices

__all__ = ["ParallelRuntime", "execute_plan_parallel"]

#: How many plans' stage segmentations a runtime memoizes for run_batch.
_SEGMENT_CACHE_PLANS = 8


class _WorkerFailed(Exception):
    """Internal: a worker exhausted its transient-retry budget.

    Carries the underlying :class:`~repro.errors.TransientError` and the
    shard indices the worker had *not* completed (current one included) so
    the scheduler can quarantine the worker and redistribute exactly that
    remainder.  Never escapes :meth:`ParallelRuntime.execute`.
    """

    def __init__(self, cause: TransientError, remaining: Sequence[int]):
        super().__init__(str(cause))
        self.cause = cause
        self.remaining = list(remaining)


class ParallelRuntime:
    """Reusable parallel executor for DRAM-offloaded plans on one machine.

    Parameters
    ----------
    machine:
        Cluster configuration.  The data-parallel width defaults to
        ``min(machine.num_shards, machine.physical_gpus)`` — DRAM shards
        beyond the physical GPU count stream through the workers in
        passes, they do not add parallelism.
    num_workers:
        Override the worker count (the differential tests sweep it).  It
        is still clamped to the shard count of each executed plan.
    retry:
        :class:`~repro.errors.RetryPolicy` for transient shard failures
        (default: the shared bounded-exponential-backoff policy).

    Use as a context manager (or call :meth:`close`) to release the worker
    threads; a runtime is cheap to keep alive across many :meth:`execute`
    / :meth:`run_batch` calls and that is the intended usage.

    **Supervision** (see ``docs/robustness.md``): a shard whose load,
    kernel stream or store raises a :class:`~repro.errors.TransientError`
    is retried from its DRAM copy with bounded exponential backoff; a
    worker that exhausts the budget is *quarantined* for the rest of the
    run and its unfinished shards are redistributed across the surviving
    workers (bit-exact — shards are independent within a segment).
    Permanent failures — in workers *or* the loader/prefetch thread —
    propagate promptly on the calling thread after every in-flight worker
    has drained (no hung barriers, no buffer left shared), and cooperative
    ``deadline`` checks run at stage/segment/shard boundaries.
    """

    def __init__(
        self,
        machine: MachineConfig,
        num_workers: int | None = None,
        retry: RetryPolicy | None = None,
    ):
        if num_workers is None:
            num_workers = min(machine.num_shards, machine.physical_gpus)
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")  # lint: config-error
        self.machine = machine
        self.num_workers = num_workers
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self._compute_pool: ThreadPoolExecutor | None = None
        self._loader_pool: ThreadPoolExecutor | None = None
        self._tls = threading.local()
        #: DRAM scratch array per state size, reused across executions.
        self._dram_scratch: dict[int, np.ndarray] = {}
        #: cache key -> (plan, segmentation shape, plan's materialized
        #: schedule).  Keyed by ``id(plan)`` by default, or by the
        #: caller-supplied ``schedule_key`` so structurally identical plans
        #: (a Session parameter sweep) share one shape; the materialized
        #: schedule is only ever served back to the plan that built it.
        self._segment_cache: dict[object, tuple[ExecutionPlan, list, list]] = {}
        #: Schedule-cache accounting, surfaced through Session stats.
        self.schedule_cache_hits = 0
        self.schedule_cache_misses = 0
        #: Cumulative recovery accounting across executions, surfaced
        #: through Session stats.
        self.retries = 0
        self.quarantined_workers = 0
        self.fallbacks = 0
        self._closed = False
        #: Serializes executions when one runtime is shared by concurrent
        #: jobs (the service's shared pool): the worker pool, DRAM scratch
        #: and segment caches are shared state, so callers take turns at
        #: execution granularity while shards parallelise within each turn.
        self._exec_lock = threading.RLock()
        #: Exec-lock contention accounting (surfaced in SessionStats): how
        #: many executions took the lock, and the total time spent waiting
        #: for it while another job held it.  Lets the service watchdog
        #: tell a stuck job from pool convoying.
        self.exec_lock_acquisitions = 0
        self.exec_lock_wait_seconds = 0.0

    # ------------------------------------------------------------------
    # Pool / buffer management
    # ------------------------------------------------------------------

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pools and drop cached buffers (idempotent)."""
        if self._compute_pool is not None:
            self._compute_pool.shutdown(wait=True)
            self._compute_pool = None
        if self._loader_pool is not None:
            self._loader_pool.shutdown(wait=True)
            self._loader_pool = None
        self._dram_scratch.clear()
        self._segment_cache.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def pools_shut_down(self) -> bool:
        """True when no worker/loader pool is live (the thread-leak check)."""
        return self._compute_pool is None and self._loader_pool is None

    def _ensure_pools(self) -> None:
        if self._closed:
            raise SessionClosedError("ParallelRuntime is closed")
        if self._compute_pool is None:
            self._compute_pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-shard-worker",
            )
            self._loader_pool = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="repro-shard-loader",
            )

    def _worker_pairs(self, local_qubits: int) -> list[list[np.ndarray]]:
        """The calling worker thread's two ping-pong buffer pairs.

        Allocated once per (worker thread, shard size) and reused for
        every segment, stage, and batch item — the worker's "device
        memory".  Two pairs, not one, so the prefetch of shard ``i+1``
        never touches the pair shard ``i`` is computing in.
        """
        pairs = getattr(self._tls, "pairs", None)
        if pairs is None:
            pairs = self._tls.pairs = {}
        got = pairs.get(local_qubits)
        if got is None:
            size = 1 << local_qubits
            got = [
                [tracked_empty(size), tracked_empty(size)],
                [tracked_empty(size), tracked_empty(size)],
            ]
            pairs[local_qubits] = got
        return got

    def _scratch_state(self, num_qubits: int) -> np.ndarray:
        scratch = self._dram_scratch.get(num_qubits)
        if scratch is None:
            scratch = self._dram_scratch[num_qubits] = tracked_empty(1 << num_qubits)
        return scratch

    # ------------------------------------------------------------------
    # Stage segmentation (memoized per plan for run_batch)
    # ------------------------------------------------------------------

    def _plan_schedule(
        self, plan: ExecutionPlan, schedule_key: str | None = None
    ) -> list:
        """Per-stage ``(target, logical_to_physical, segments)`` for *plan*.

        The layout walk is deterministic, so the segmentation *shape* — the
        expensive per-gate cross-shard classification — is computed once and
        reused.  By default the cache is keyed by plan identity (run_batch
        replaying one plan); callers executing many *structurally identical*
        plans (a Session parameter sweep, where each plan rebinds different
        gate angles onto the same staged structure) pass a ``schedule_key``
        so they all share one shape.  Only the shape is cached: the
        per-plan segments are re-materialized from each plan's own gates,
        so cached schedules never leak another circuit's angles.

        Each shards-segment of the schedule also carries its **compiled op
        stream** (:func:`repro.runtime.offload.compile_segment_ops`):
        fusion, structure analysis and gemm planning happen here, once per
        plan, and every shard pass on every worker replays the pre-resolved
        ops.  The ops bind the plan's gate matrices (angles included), so
        they are rebuilt whenever the segments are re-materialized.
        """
        key: object = schedule_key if schedule_key is not None else id(plan)
        cached = self._segment_cache.get(key)
        if cached is not None and (schedule_key is not None or cached[0] is plan):
            owner, shape, schedule = cached
            self.schedule_cache_hits += 1
            if owner is plan:
                # Same plan object: the fully materialized schedule is
                # valid as-is (the run_batch one-plan-many-states path).
                return schedule
        else:
            local = self.machine.local_qubits
            layout = QubitLayout(plan.num_qubits)
            shape = []
            for stage in plan.stages:
                target = stage.partition.logical_to_physical()
                layout.update(target)
                logical_to_physical = layout.logical_to_physical()
                shapes = split_stage_segment_shapes(stage, logical_to_physical, local)
                shape.append((target, logical_to_physical, shapes))
            self.schedule_cache_misses += 1
        # A different (structurally identical) plan under a shared
        # schedule_key: re-materialize the shape with this plan's gates and
        # compile each shards-segment's op stream from them.
        local = self.machine.local_qubits
        schedule = []
        for stage, (target, l2p, stage_shapes) in zip(plan.stages, shape):
            segments = []
            for kind, payload in materialize_stage_segments(stage, stage_shapes):
                if kind == "full":
                    segments.append(("full", payload, None))
                else:
                    # A failed segment-op compile degrades that segment to
                    # the uncompiled per-gate path (ops=None) instead of
                    # failing the run; workers branch on it.
                    try:
                        ops = compile_segment_ops(payload, l2p, local)
                    except ReproError:
                        ops = None
                        self.fallbacks += 1
                    segments.append(("shards", payload, ops))
            schedule.append((target, l2p, segments))
        if key not in self._segment_cache:
            if len(self._segment_cache) >= _SEGMENT_CACHE_PLANS:
                self._segment_cache.pop(next(iter(self._segment_cache)))
        self._segment_cache[key] = (plan, shape, schedule)
        return schedule

    # ------------------------------------------------------------------
    # Worker body
    # ------------------------------------------------------------------

    def _run_worker(
        self,
        worker: int,
        indices: list[int],
        shards: list[np.ndarray],
        out_shards: list[np.ndarray],
        segment_ops: list | None,
        groups: list,
        logical_to_physical: dict[int, int],
        local_qubits: int,
        stats: WorkerStats,
        deadline: Deadline,
    ) -> None:
        """Process this worker's shard indices for one shards-segment.

        Loads pipeline through the loader pool: while shard ``i`` computes
        in one buffer pair, shard ``i+1`` streams into the other.  The
        segment arrives pre-compiled (``segment_ops``; ``None`` after a
        compile fallback, which replays *groups* per gate); temporaries
        come from this worker thread's private workspace.

        Transient failures — whether raised here or inside a prefetch on
        the loader thread — retry the current shard from its DRAM copy
        (untouched until the store succeeds, so retries are bit-exact)
        under the runtime's :class:`RetryPolicy`; an exhausted budget
        raises :class:`_WorkerFailed` carrying the unfinished indices so
        the scheduler can quarantine this worker and redistribute them.
        Before any exception escapes, outstanding prefetch futures are
        drained: a redistributed shard must never race a stale load into
        this thread's buffers.
        """
        try:
            faults.check("worker_start", worker=worker)
        except TransientError as exc:
            raise _WorkerFailed(exc, indices) from exc
        pairs = self._worker_pairs(local_qubits)

        def load(slot: int, shard_index: int) -> float:
            start = time.perf_counter()
            faults.check("shard_load", worker=worker, shard=shard_index)
            np.copyto(pairs[slot][0], shards[shard_index])
            return time.perf_counter() - start

        if self._loader_pool is None:
            raise SessionClosedError(
                "worker scheduled without a loader pool (runtime closed?)"
            )
        prefetch: dict[int, Future] = {0: self._loader_pool.submit(load, 0, indices[0])}
        policy = self.retry
        try:
            for i, index in enumerate(indices):
                slot = i & 1
                fut = prefetch.pop(i, None)
                attempt = 1
                while True:
                    try:
                        deadline.check("shard")
                        if fut is not None:
                            stats.load_seconds += fut.result()
                            fut = None
                        else:
                            # Retry (or resubmitted) path: load synchronously.
                            stats.load_seconds += load(slot, index)
                        if i + 1 < len(indices) and (i + 1) not in prefetch:
                            prefetch[i + 1] = self._loader_pool.submit(
                                load, 1 - slot, indices[i + 1]
                            )
                        data, scratch = pairs[slot]
                        stats.shard_loads += 1
                        stats.bytes_loaded += data.nbytes

                        start = time.perf_counter()
                        if segment_ops is not None:
                            data, scratch, out_index = run_segment_ops(
                                data, scratch, segment_ops, logical_to_physical,
                                local_qubits, index,
                            )
                        else:
                            data, scratch, out_index = run_groups_on_shard(
                                data, scratch, groups, logical_to_physical,
                                local_qubits, index,
                            )
                        stats.compute_seconds += time.perf_counter() - start

                        start = time.perf_counter()
                        faults.check("shard_store", worker=worker, shard=index)
                        out_shards[out_index][:] = data
                        stats.store_seconds += time.perf_counter() - start
                        stats.shard_stores += 1
                        stats.bytes_stored += data.nbytes
                        pairs[slot][0], pairs[slot][1] = data, scratch
                        break
                    except TransientError as exc:
                        fut = None
                        stats.retries += 1
                        if attempt >= policy.max_attempts:
                            raise _WorkerFailed(exc, indices[i:]) from exc
                        policy.sleep(attempt)
                        attempt += 1
        except BaseException:
            # Drain in-flight prefetches before the failure escapes: the
            # scheduler may re-run these shards on a pool thread sharing
            # this thread-local buffer set.
            for fut in prefetch.values():
                fut.cancel()
            for fut in prefetch.values():
                try:
                    fut.result()
                except BaseException:
                    pass
            raise

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        plan: ExecutionPlan,
        initial_state: StateVector | None = None,
        schedule_key: str | None = None,
        deadline: "Deadline | float | None" = None,
        checkpoint: "CheckpointConfig | str | None" = None,
        resume_from=None,
        monitor=None,
    ) -> tuple[StateVector, OffloadStats]:
        """Execute *plan*, scheduling each stage's shards across workers.

        Bit-exact with :func:`repro.runtime.offload.execute_plan_offloaded`
        for any worker count: every shard sees the identical kernel
        sequence on private buffers, and segment barriers impose the same
        cross-segment ordering.  That equivalence survives recovery:
        retried shards recompute from their unmodified DRAM slice and
        redistributed shards run the identical kernel sequence on another
        worker's private buffers.

        ``schedule_key`` (optional) names the plan's *structure*: plans that
        share it (structurally identical circuits planned under one Session
        cache key) reuse one cached segmentation shape instead of
        re-classifying every gate (see :meth:`_plan_schedule`).

        ``deadline`` (optional, seconds or a :class:`~repro.errors.Deadline`)
        is checked cooperatively at stage/segment/shard boundaries; an
        expired deadline raises :class:`~repro.errors.DeadlineExceeded`
        with every worker drained and the runtime reusable.

        **Pool sharing:** one runtime may serve several concurrent jobs
        (the multi-tenant service front-ends exactly this).  Executions are
        serialized on an internal lock — the worker pool, DRAM scratch and
        segmentation caches are shared across the callers, while each
        plan's shards still fan out over every worker.  Concurrent callers
        interleave at execution granularity (per batch item), so a long
        batch does not monopolise the pool against a competing job.

        ``checkpoint`` / ``resume_from`` / ``monitor`` enable the
        durability layer — stage-boundary snapshots, fingerprint-validated
        resume and runtime integrity checks — with the exact semantics of
        :func:`repro.runtime.offload.execute_plan_offloaded`.
        """
        # Contention instrumentation: the uncontended path is one failed
        # try-acquire (cheap); only a genuinely contended acquisition pays
        # for the two monotonic reads.
        if self._exec_lock.acquire(blocking=False):
            self.exec_lock_acquisitions += 1
        else:
            started = time.monotonic()
            self._exec_lock.acquire()
            self.exec_lock_wait_seconds += time.monotonic() - started
            self.exec_lock_acquisitions += 1
        try:
            return self._execute_exclusive(
                plan, initial_state, schedule_key, deadline,
                checkpoint=checkpoint, resume_from=resume_from,
                monitor=monitor,
            )
        finally:
            self._exec_lock.release()

    def _execute_exclusive(
        self,
        plan: ExecutionPlan,
        initial_state: StateVector | None = None,
        schedule_key: str | None = None,
        deadline: "Deadline | float | None" = None,
        checkpoint: "CheckpointConfig | str | None" = None,
        resume_from=None,
        monitor=None,
    ) -> tuple[StateVector, OffloadStats]:
        machine = self.machine
        n = plan.num_qubits
        machine.validate(n)
        deadline = Deadline.resolve(deadline)
        self._ensure_pools()
        ckpt = CheckpointConfig.coerce(checkpoint) if checkpoint is not None else None
        mon = IntegrityMonitor.coerce(monitor)
        fingerprint = (
            checkpoint_fingerprint(plan)
            if ckpt is not None or resume_from is not None
            else ""
        )

        # The result array is the only per-execution state-sized
        # allocation; the DRAM scratch is reused across calls.  Layout
        # permutations and relabelled segment stores swap the two, so at
        # the end the runtime keeps whichever array the caller is not
        # handed (no copy, no aliasing of cached buffers).
        state = tracked_empty(1 << n)
        state_scratch = self._scratch_state(n)
        fresh, cached = state, state_scratch
        if initial_state is None:
            state[:] = 0.0
            state[0] = 1.0
        else:
            if initial_state.num_qubits != n:
                raise PlanValidationError("initial state size does not match plan")
            initial_state.copy_into(state)

        local = machine.local_qubits
        num_shards = 1 << (n - local)
        width = min(self.num_workers, num_shards)
        stats = OffloadStats(num_shards=num_shards, num_workers=width)
        stats.per_worker = [WorkerStats(worker=w) for w in range(width)]
        #: Workers quarantined for the remainder of *this* execution.
        quarantined: set[int] = set()

        schedule = self._plan_schedule(plan, schedule_key)
        num_stages = len(schedule)
        layout = QubitLayout(n)
        start_stage = 0
        if resume_from is not None:
            ck = find_checkpoint(
                resume_from,
                fingerprint=fingerprint,
                tag=ckpt.tag if ckpt is not None else "run",
            )
            if ck is not None:
                if ck.num_qubits != n or ck.state.shape != state.shape \
                        or ck.state.dtype != state.dtype:
                    raise PlanValidationError(
                        f"checkpoint {ck.path.name} does not match the "
                        f"plan's state ({ck.num_qubits} qubits, "
                        f"{ck.state.dtype})"
                    )
                np.copyto(state, ck.state)
                layout.update(ck.layout_mapping())
                start_stage = ck.stage_index + 1
                stats.resumed_from_stage = ck.stage_index
                stats.stages_skipped = start_stage

        try:
            for stage_index, (target, logical_to_physical, segments) in enumerate(
                schedule
            ):
                if stage_index < start_stage:
                    continue
                deadline.check("stage")
                if mon is not None:
                    mon.stage_begin(state, stage_index)
                if target != layout.logical_to_physical():
                    permuted = permute_state(state, layout, target, out=state_scratch)
                    if permuted is not state:
                        state, state_scratch = permuted, state
                    layout.update(target)

                stage_loads = 0
                for kind, payload, segment_ops in segments:
                    deadline.check("segment")
                    if kind == "full":
                        gate = payload
                        physical = [logical_to_physical[q] for q in gate.qubits]
                        state, state_scratch = apply_gate_buffered(
                            state, state_scratch, gate.matrix(), physical
                        )
                        continue
                    relabels = segment_relabels_shards(
                        payload, logical_to_physical, local
                    )
                    shards = shard_slices(state, local)
                    out_shards = (
                        shard_slices(state_scratch, local) if relabels else shards
                    )
                    self._run_segment_supervised(
                        width,
                        num_shards,
                        quarantined,
                        shards,
                        out_shards,
                        segment_ops,
                        payload,
                        logical_to_physical,
                        local,
                        stats,
                        deadline,
                    )
                    stage_loads += num_shards
                    if relabels:
                        state, state_scratch = state_scratch, state
                stats.per_stage_loads.append(stage_loads)
                stats.num_stages += 1
                if mon is not None:
                    mon.stage_complete(state, stage_index)
                if (
                    ckpt is not None
                    and stage_index < num_stages - 1
                    and (stage_index + 1) % ckpt.every == 0
                ):
                    try:
                        write_checkpoint(
                            ckpt,
                            fingerprint=fingerprint,
                            num_qubits=n,
                            stage_index=stage_index,
                            layout=layout.logical_to_physical(),
                            state=state,
                        )
                        stats.checkpoints_written += 1
                    except (ReproError, OSError):
                        # Advisory: losing a snapshot costs resumability,
                        # never the run itself.
                        stats.checkpoint_errors += 1
                faults.crash_after_stage(stage_index)

            identity = {q: q for q in range(n)}
            if layout.logical_to_physical() != identity:
                permuted = permute_state(state, layout, identity, out=state_scratch)
                if permuted is not state:
                    state, state_scratch = permuted, state
        finally:
            for worker in stats.per_worker:
                stats.shard_loads += worker.shard_loads
                stats.shard_stores += worker.shard_stores
                stats.bytes_transferred += worker.bytes_loaded + worker.bytes_stored
                stats.retries += worker.retries
            self.retries += stats.retries

        if mon is not None:
            stats.integrity_checks = mon.stages_checked
            stats.max_norm_drift = mon.max_norm_drift
        if state is cached:
            # The caller gets the cached array; keep the fresh one instead.
            self._dram_scratch[n] = fresh
        return StateVector(n, state), stats

    def _run_segment_supervised(
        self,
        width: int,
        num_shards: int,
        quarantined: set[int],
        shards: list[np.ndarray],
        out_shards: list[np.ndarray],
        segment_ops: list | None,
        groups: list,
        logical_to_physical: dict[int, int],
        local: int,
        stats: OffloadStats,
        deadline: Deadline,
    ) -> None:
        """Dispatch one shards-segment across the non-quarantined workers.

        The barrier is failure-safe: **every** submitted future is awaited
        before any exception propagates, so no worker is still touching a
        shard buffer when the caller sees the error.  Workers that exhaust
        their transient-retry budget are quarantined and their unfinished
        shards redistributed round-robin across the survivors; the segment
        only completes once every shard index has been stored exactly once.
        When the last worker is quarantined the underlying transient error
        escalates to the caller.
        """
        active = [w for w in range(width) if w not in quarantined]
        if not active:
            # Every worker was quarantined by an earlier segment; execute()
            # can only get here if that segment still completed, which
            # cannot happen — quarantining the last worker escalates below.
            raise PermanentError(
                "no workers left to schedule"
            )  # pragma: no cover
        assignments = {
            w: list(range(j, num_shards, len(active)))
            for j, w in enumerate(active)
        }
        if len(active) == width:
            # Fault-free fast path keeps the documented ownership rule:
            # worker w owns shard indices w, w+W, w+2W, ...
            assignments = {
                w: list(range(w, num_shards, width)) for w in range(width)
            }
        while True:
            futures = {
                w: self._compute_pool.submit(
                    self._run_worker,
                    w,
                    indices,
                    shards,
                    out_shards,
                    segment_ops,
                    groups,
                    logical_to_physical,
                    local,
                    stats.per_worker[w],
                    deadline,
                )
                for w, indices in assignments.items()
                if indices
            }
            if not futures:
                return
            failed: dict[int, _WorkerFailed] = {}
            fatal: BaseException | None = None
            # Failure-safe barrier: await every future, collect outcomes.
            for w, future in futures.items():
                try:
                    future.result()
                except _WorkerFailed as exc:
                    failed[w] = exc
                except BaseException as exc:
                    if fatal is None:
                        fatal = exc
            if fatal is not None:
                # Permanent (or unexpected) failure: propagate promptly —
                # all workers have drained, buffers are quiescent.
                raise fatal
            if not failed:
                return
            # Transient exhaustion: quarantine the failed workers and
            # redistribute exactly their unfinished shards.
            leftover: list[int] = []
            last_cause: TransientError | None = None
            for w, exc in failed.items():
                quarantined.add(w)
                stats.quarantined_workers += 1
                self.quarantined_workers += 1
                leftover.extend(exc.remaining)
                last_cause = exc.cause
            leftover.sort()
            active = [w for w in range(width) if w not in quarantined]
            if not active:
                if last_cause is None:  # pragma: no cover - defensive
                    raise PermanentError(
                        "every worker quarantined but no failure cause recorded"
                    )
                raise last_cause
            assignments = {
                w: leftover[j :: len(active)] for j, w in enumerate(active)
            }

    def run_batch(
        self,
        plans: ExecutionPlan | Iterable,
        initial_states: Sequence[StateVector | None] | None = None,
        schedule_keys: str | Sequence[str | None] | None = None,
        deadline: "Deadline | float | None" = None,
        checkpoint: "CheckpointConfig | str | None" = None,
        resume_from=None,
        monitor=None,
    ) -> list[tuple[StateVector, OffloadStats]]:
        """Execute a batch of problems, amortising planning and buffers.

        Three call shapes are supported:

        * ``run_batch(plan, initial_states=[s0, s1, ...])`` — one plan
          replayed over many initial states (planning, segmentation, and
          all buffers shared; the heavy-traffic scenario);
        * ``run_batch([plan0, plan1, ...])`` — many plans from |0...0>;
        * ``run_batch([(plan0, s0), (plan1, s1), ...])`` — explicit pairs.

        ``schedule_keys`` is either one structure key shared by every item
        (a parameter sweep of structurally identical plans) or one key per
        item (see :meth:`execute`); ``None`` entries fall back to per-plan
        identity caching.  ``deadline`` bounds the *whole batch*: one
        budget shared by every item, checked at every stage/segment/shard
        boundary of each execution.

        ``checkpoint`` / ``resume_from`` / ``monitor`` apply the
        durability layer per item: each batch item checkpoints under its
        own derived tag (``<tag>-i<index>`` once the batch has more than
        one item), so snapshots of different items sharing a directory
        never collide and each item resumes from its own latest boundary.

        Returns one ``(final_state, stats)`` per problem, in order.  The
        problems run back to back — shards are the parallel dimension, so
        each problem already occupies every worker.
        """
        items: list[tuple[ExecutionPlan, StateVector | None]] = []
        if isinstance(plans, ExecutionPlan):
            if initial_states is None:
                raise ValueError(  # lint: config-error
                    "run_batch(plan, ...) needs initial_states; pass a list "
                    "of plans to run several circuits"
                )
            items = [(plans, state) for state in initial_states]
        elif initial_states is not None:
            plan_list = list(plans)
            if len(plan_list) != len(initial_states):
                raise ValueError(  # lint: config-error
                    f"{len(plan_list)} plans but {len(initial_states)} "
                    f"initial states"
                )
            items = list(zip(plan_list, initial_states))
        else:
            for item in plans:
                if isinstance(item, ExecutionPlan):
                    items.append((item, None))
                else:
                    plan, state = item
                    items.append((plan, state))
        if schedule_keys is None or isinstance(schedule_keys, str):
            keys: list[str | None] = [schedule_keys] * len(items)
        else:
            keys = list(schedule_keys)
            if len(keys) != len(items):
                raise ValueError(  # lint: config-error
                    f"{len(keys)} schedule keys but {len(items)} batch items"
                )
        deadline = Deadline.resolve(deadline)
        base_ckpt = (
            CheckpointConfig.coerce(checkpoint) if checkpoint is not None else None
        )
        results = []
        for i, ((plan, state), key) in enumerate(zip(items, keys)):
            item_ckpt = base_ckpt
            if base_ckpt is not None and len(items) > 1:
                item_ckpt = dataclasses.replace(
                    base_ckpt, tag=f"{base_ckpt.tag}-i{i}"
                )
            results.append(
                self.execute(
                    plan, state, schedule_key=key, deadline=deadline,
                    checkpoint=item_ckpt, resume_from=resume_from,
                    monitor=monitor,
                )
            )
        return results


def execute_plan_parallel(
    plan: ExecutionPlan,
    machine: MachineConfig,
    initial_state: StateVector | None = None,
    num_workers: int | None = None,
) -> tuple[StateVector, OffloadStats]:
    """One-shot parallel execution (see :class:`ParallelRuntime`).

    Spins up a runtime, executes *plan*, and tears the workers down again.
    Prefer a long-lived :class:`ParallelRuntime` (or its
    :meth:`~ParallelRuntime.run_batch`) when executing more than once.
    """
    with ParallelRuntime(machine, num_workers=num_workers) as runtime:
        return runtime.execute(plan, initial_state)

"""Deterministic, seedable fault injection for the execution layer.

Every recovery path in the runtime — shard retry, worker quarantine,
compiled-program fallback, cache eviction-and-replan — is only trustworthy
if it can be *exercised on demand*.  This module plants named **injection
sites** at the failure-prone boundaries of the execution layer; a
:class:`FaultInjector` activated for a run decides, deterministically,
which site occurrences raise which typed error.

Sites (:data:`SITES`):

===============  ===========================================================
``shard_load``   a shard streaming from DRAM into a device buffer
``shard_store``  a computed shard streaming back to DRAM
``kernel_apply`` a (compiled) kernel stream applied to a shard or state
``compile``      plan → :class:`CompiledProgram` / segment-op lowering
``worker_start`` a worker thread picking up its shard assignment
``cache_rebind`` a structural-cache hit re-binding a cached plan
``checkpoint_write`` a stage-boundary checkpoint streaming to disk
``checkpoint_load``  a checkpoint read back for ``resume_from=``
``journal_append``   a service write-ahead journal record append
===============  ===========================================================

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers.  Each spec
matches one site (optionally filtered by ``worker``/``shard`` context),
skips its first ``after`` matching occurrences, then fires ``times`` times,
raising the named error class.  Occurrence counting is global per spec and
thread-safe, so a plan is deterministic for a fixed execution schedule; the
optional ``probability`` gate draws from a generator seeded per plan, so
even randomized chaos runs are reproducible.

Activation is explicit and scoped: ``Session(faults=...)`` activates its
injector for the duration of each ``run`` (via :func:`activate` /
:func:`deactivate`), and the process-wide ``REPRO_FAULTS`` environment
variable installs a baseline injector for chaos smoke runs::

    REPRO_FAULTS="shard_load:transient:2" python examples/dram_offloading.py

Spec strings are comma-separated ``site[:error[:times[:after]]]`` entries
where *error* is ``transient``, ``permanent``, or any class name from
:mod:`repro.errors` (``ShardIOError``, ``KernelError``, ...); append
``@worker=N`` / ``@shard=N`` to filter by context::

    REPRO_FAULTS="worker_start:transient:99@worker=0,compile:KernelError:1"

Sites are checked through :func:`check`, a no-op costing one global read
when no injector is active — the hot paths stay hot.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from .. import errors as _errors
from ..errors import ReproError, TransientError, PermanentError

__all__ = [
    "CRASH_EXIT_CODE",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_injector",
    "check",
    "crash_after_stage",
    "deactivate",
]

#: The named injection sites planted in the execution layer.
SITES = (
    "shard_load",
    "shard_store",
    "kernel_apply",
    "compile",
    "worker_start",
    "cache_rebind",
    "checkpoint_write",
    "checkpoint_load",
    "journal_append",
)

#: Default error class raised per site when a spec just says "transient" /
#: "permanent" — the typed error that site's real failures would surface.
_SITE_TRANSIENT_DEFAULT = {
    "shard_load": _errors.ShardIOError,
    "shard_store": _errors.ShardIOError,
    "kernel_apply": TransientError,
    "compile": TransientError,
    "worker_start": TransientError,
    "cache_rebind": _errors.CacheCorruptionError,
    "checkpoint_write": _errors.ShardIOError,
    "checkpoint_load": _errors.CacheCorruptionError,
    "journal_append": _errors.ShardIOError,
}
_SITE_PERMANENT_DEFAULT = {
    "shard_load": PermanentError,
    "shard_store": PermanentError,
    "kernel_apply": _errors.KernelError,
    "compile": _errors.KernelError,
    "worker_start": PermanentError,
    "cache_rebind": _errors.CacheCorruptionError,
    "checkpoint_write": PermanentError,
    "checkpoint_load": _errors.CacheCorruptionError,
    "journal_append": _errors.IntegrityError,
}


def _resolve_error_class(site: str, name: str) -> type[ReproError]:
    """Map a spec's error name onto a taxonomy class for *site*."""
    lowered = name.lower()
    if lowered == "transient":
        return _SITE_TRANSIENT_DEFAULT[site]
    if lowered == "permanent":
        return _SITE_PERMANENT_DEFAULT[site]
    cls = getattr(_errors, name, None)
    if cls is None or not (isinstance(cls, type) and issubclass(cls, ReproError)):
        raise ValueError(  # lint: config-error
            f"unknown fault error {name!r}; use 'transient', 'permanent', or a "
            f"class name from repro.errors"
        )
    return cls


@dataclass(frozen=True)
class FaultSpec:
    """One injection trigger: where, what, and how often to fail.

    Attributes
    ----------
    site:
        Injection site name (one of :data:`SITES`).
    error:
        ``"transient"`` / ``"permanent"`` (resolved to the site's natural
        typed error) or a :mod:`repro.errors` class name.
    times:
        How many matching occurrences fire before the spec is exhausted.
    after:
        Skip this many matching occurrences first (fire on the
        ``after+1``-th).
    worker / shard:
        Optional context filters: only occurrences reporting this worker /
        shard index match.  ``None`` matches everything.
    probability:
        Fire each matching occurrence only with this probability, drawn
        from the plan's seeded generator (1.0 = always).
    """

    site: str
    error: str = "transient"
    times: int = 1
    after: int = 0
    worker: int | None = None
    shard: int | None = None
    probability: float = 1.0

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")  # lint: config-error
        if self.times < 1:
            raise ValueError("times must be at least 1")  # lint: config-error
        if self.after < 0:
            raise ValueError("after must be non-negative")  # lint: config-error
        if not (0.0 < self.probability <= 1.0):
            raise ValueError("probability must be in (0, 1]")  # lint: config-error
        _resolve_error_class(self.site, self.error)  # validate eagerly

    def error_class(self) -> type[ReproError]:
        return _resolve_error_class(self.site, self.error)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault triggers plus the randomness seed."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style spec string (see module docs)."""
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            filters: dict[str, int] = {}
            if "@" in chunk:
                chunk, _, raw_filters = chunk.partition("@")
                for clause in raw_filters.split("@"):
                    key, _, value = clause.partition("=")
                    key = key.strip()
                    if key not in ("worker", "shard") or not value.strip().isdigit():
                        raise ValueError(  # lint: config-error
                            f"bad fault filter {clause!r}; expected worker=N or shard=N"
                        )
                    filters[key] = int(value)
            parts = chunk.split(":")
            if not 1 <= len(parts) <= 4:
                raise ValueError(  # lint: config-error
                    f"bad fault spec {chunk!r}; expected site[:error[:times[:after]]]"
                )
            site = parts[0].strip()
            error = parts[1].strip() if len(parts) > 1 else "transient"
            times = int(parts[2]) if len(parts) > 2 else 1
            after = int(parts[3]) if len(parts) > 3 else 0
            specs.append(FaultSpec(site, error, times, after, **filters))
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def coerce(cls, value) -> "FaultPlan":
        """Coerce a plan/spec-string/spec-list into a :class:`FaultPlan`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, FaultSpec):
            return cls(specs=(value,))
        return cls(specs=tuple(value))


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against site occurrences, thread-safely.

    One injector carries the mutable firing state (per-spec occurrence and
    fire counters, plus the seeded RNG for probabilistic specs); create a
    fresh injector (or call :meth:`reset`) to replay a plan from the start.
    """

    def __init__(self, plan: FaultPlan | str | FaultSpec | list | tuple):
        self.plan = FaultPlan.coerce(plan)
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Forget all firing state; the plan replays from occurrence zero."""
        with self._lock:
            self._seen = [0] * len(self.plan.specs)
            self._fired = [0] * len(self.plan.specs)
            self._rng = np.random.default_rng(self.plan.seed)
            #: Total faults raised, by site.
            self.fired_by_site: dict[str, int] = {}

    @property
    def total_fired(self) -> int:
        return sum(self.fired_by_site.values())

    def exhausted(self) -> bool:
        """True once every spec has fired its full ``times`` budget."""
        with self._lock:
            return all(
                fired >= spec.times
                for spec, fired in zip(self.plan.specs, self._fired)
            )

    def check(self, site: str, worker: int | None = None, shard: int | None = None) -> None:
        """Raise the configured typed error if a spec fires at *site*."""
        to_raise: ReproError | None = None
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if spec.site != site:
                    continue
                if spec.worker is not None and spec.worker != worker:
                    continue
                if spec.shard is not None and spec.shard != shard:
                    continue
                if self._fired[i] >= spec.times:
                    continue
                self._seen[i] += 1
                if self._seen[i] <= spec.after:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                self._fired[i] += 1
                self.fired_by_site[site] = self.fired_by_site.get(site, 0) + 1
                to_raise = spec.error_class()(
                    f"injected {spec.error} fault at {site}"
                    + (f" (worker={worker})" if worker is not None else "")
                    + (f" (shard={shard})" if shard is not None else ""),
                    site=site,
                    worker=worker,
                    shard=shard,
                    injected=True,
                )
                break
        if to_raise is not None:
            raise to_raise


# ---------------------------------------------------------------------------
# Activation — one process-wide slot, plus the REPRO_FAULTS baseline
# ---------------------------------------------------------------------------

_active: FaultInjector | None = None
_activation_lock = threading.Lock()
_env_injector: FaultInjector | None = None
_env_loaded = False


def _load_env_injector() -> FaultInjector | None:
    global _env_injector, _env_loaded
    if not _env_loaded:
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        _env_injector = FaultInjector(FaultPlan.parse(spec)) if spec else None
        _env_loaded = True
    return _env_injector


def activate(injector: FaultInjector) -> None:
    """Install *injector* as the process-wide active injector.

    Worker and loader threads consult the same slot, so one activation
    covers the whole execution no matter which thread hits a site.  Nested
    activation (two Sessions injecting concurrently) is rejected —
    interleaved occurrence counting would make both plans meaningless.
    """
    global _active
    with _activation_lock:
        if _active is not None and _active is not injector:
            raise RuntimeError(  # lint: config-error
                "another fault injector is already active; fault-injecting "
                "Sessions cannot run concurrently in one process"
            )
        _active = injector


def deactivate(injector: FaultInjector | None = None) -> None:
    """Remove the active injector (a no-op when none is active)."""
    global _active
    with _activation_lock:
        if injector is None or _active is injector:
            _active = None


def active_injector() -> FaultInjector | None:
    """The injector sites consult: the activated one, else ``REPRO_FAULTS``."""
    return _active if _active is not None else _load_env_injector()


def check(site: str, worker: int | None = None, shard: int | None = None) -> None:
    """Injection-site hook: raise the configured fault, if any is due.

    This is the call planted in the runtimes.  With no injector configured
    it costs one global read and a ``None`` comparison.
    """
    injector = _active if _active is not None else _load_env_injector()
    if injector is not None:
        injector.check(site, worker=worker, shard=shard)


# ---------------------------------------------------------------------------
# Crash harness — deterministic hard kill for durability tests
# ---------------------------------------------------------------------------

#: Exit status used by :func:`crash_after_stage` so a harness parent can
#: distinguish the deliberate crash from any organic failure.
CRASH_EXIT_CODE = 87

_crash_stage: int | None = None
_crash_loaded = False


def _load_crash_stage() -> int | None:
    """Parse ``REPRO_CRASH`` once (format ``after_stage:<k>``)."""
    global _crash_stage, _crash_loaded
    if not _crash_loaded:
        spec = os.environ.get("REPRO_CRASH", "").strip()
        if spec:
            kind, _, value = spec.partition(":")
            if kind.strip() != "after_stage" or not value.strip().lstrip("-").isdigit():
                raise ValueError(  # lint: config-error
                    f"bad REPRO_CRASH spec {spec!r}; expected after_stage:<k>"
                )
            _crash_stage = int(value)
        _crash_loaded = True
    return _crash_stage


def crash_after_stage(stage_index: int) -> None:
    """Hard-kill the process after completing *stage_index*, if armed.

    Unlike the fault sites above this is not a :data:`SITES` entry — it is
    a separate harness armed only through the ``REPRO_CRASH`` environment
    variable (``after_stage:<k>``), because it does not *raise*: it calls
    ``os._exit`` with :data:`CRASH_EXIT_CODE`, simulating a power loss /
    SIGKILL with no chance to run cleanup.  The executors call it at each
    stage boundary *after* the checkpoint write, so a crashed run's latest
    checkpoint covers stage ``k`` exactly.  Deliberately process-global and
    single-shot semantics-free: the armed process dies at the first
    matching boundary.
    """
    if _load_crash_stage() == stage_index:
        os._exit(CRASH_EXIT_CODE)

"""Plan compiler: lower :class:`ExecutionPlan` to a :class:`CompiledProgram`.

:func:`compile_plan` performs, **once**, everything the staged interpreter
(:func:`repro.runtime.execute_plan`) re-derives on every execution:

* the stage-by-stage layout walk — each boundary permutation becomes a
  precomputed axis-transpose op (and no-op permutations are elided);
* the staging-invariant locality check;
* kernel fusion (through the bounded fused-unitary cache) and the
  logical→physical index translation;
* matrix structure analysis, dense gemm planning, diagonal broadcast
  vectors, permutation cycle tables, controlled-block reduction.

The result is a flat stream of :class:`repro.sim.program.CompiledOp` whose
execution is a tight loop with zero per-gate analysis, hashing or dict
lookups — and which also executes **batched** against a ``(B, 2^n)`` state
stack (see :meth:`CompiledProgram.run_batched`).

Rebinds: ``compile_plan(new_plan, reuse=program)`` compiles a structurally
identical plan (a parameter-sweep rebind from the Session plan cache) while
reusing every op whose source gates compare equal — constant-structure
gates (H, CX, …) keep their compiled payload verbatim; only angle-dependent
ops are recomputed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..circuits.gates import Gate
from ..cluster.machine import MachineConfig
from ..core.kernel import KernelType
from ..core.plan import ExecutionPlan
from ..errors import PlanValidationError
from ..sim.fusion import fused_unitary_cached
from ..sim.program import (
    CompiledOp,
    CompiledProgram,
    Workspace,
    compile_layout_op,
    compile_unitary_op,
)
from . import faults
from .sharding import QubitLayout, permutation_axes

__all__ = [
    "check_gate_locality",
    "clear_program_cache",
    "compile_plan",
    "compiled_program_for",
]


def check_gate_locality(
    gate: Gate, logical_to_physical: dict[int, int], local_qubits: int
) -> None:
    """Raise when a non-insular qubit of *gate* is mapped non-locally."""
    for q in gate.non_insular_qubits():
        if logical_to_physical[q] >= local_qubits:
            raise PlanValidationError(
                f"staging invariant violated: non-insular qubit {q} of gate "
                f"{gate} is mapped to non-local physical position "
                f"{logical_to_physical[q]} (L={local_qubits})"
            )


def compile_plan(
    plan: ExecutionPlan,
    machine: MachineConfig | None = None,
    check_locality: bool = True,
    reuse: CompiledProgram | None = None,
    workspace: Workspace | None = None,
) -> CompiledProgram:
    """Lower *plan* into a :class:`CompiledProgram`.

    Parameters
    ----------
    plan:
        A kernelized execution plan (or a rebound copy of one).
    machine:
        Optional machine config; its ``local_qubits`` drives the locality
        check, otherwise each stage's partition local-set size is used.
    check_locality:
        Verify the staging invariant (at compile time — executions pay
        nothing).
    reuse:
        A program compiled from a *structurally identical* plan (same
        :meth:`~repro.circuits.circuit.Circuit.structural_key`, e.g. the
        cached base of a parameter sweep).  Ops whose source gates compare
        equal are taken verbatim; only changed payloads recompile.
    workspace:
        Buffer set for the program; defaults to the reuse program's (so a
        rebound family shares one ping-pong pair) or a fresh one.
    """
    faults.check("compile")
    n = plan.num_qubits
    if workspace is None:
        workspace = reuse.workspace if reuse is not None else Workspace()
    reuse_map: dict[object, CompiledOp] = {}
    if reuse is not None:
        if reuse.num_qubits != n:
            raise PlanValidationError("reuse program spans a different qubit count")
        for op in reuse.ops:
            if op.source is not None:
                reuse_map[op.source] = op

    ops: list[CompiledOp] = []
    ops_reused = 0
    num_kernels = 0
    num_permutations = 0
    kernels_per_stage: list[int] = []

    def emit(source, gates: tuple[Gate, ...], build) -> None:
        """Append the op for *source*: the reuse program's verbatim when its
        gates compare equal (angles included — Gate equality covers params),
        else ``build()``.  *build* is a thunk so reused fused kernels never
        re-fuse."""
        nonlocal ops_reused
        old = reuse_map.get(source)
        if old is not None and old.gates == gates:
            ops.append(old)
            ops_reused += 1
            return
        ops.append(build())

    layout = QubitLayout(n)
    for stage_idx, stage in enumerate(plan.stages):
        target = stage.partition.logical_to_physical()
        if target != layout.logical_to_physical():
            axes = permutation_axes(layout.logical_to_physical(), target, n)
            if axes != list(range(n)):
                ops.append(compile_layout_op(axes, n, ("layout", stage_idx)))
            layout.update(target)
            num_permutations += 1
        logical_to_physical = layout.logical_to_physical()

        local_count = (
            machine.local_qubits if machine is not None else stage.partition.num_local
        )
        if check_locality:
            for gate in stage.gates:
                check_gate_locality(gate, logical_to_physical, local_count)

        def gate_op(gate: Gate, l2p: dict[int, int], source):
            physical = tuple(l2p[q] for q in gate.qubits)
            return compile_unitary_op(gate.matrix(), physical, n, source, (gate,))

        def fused_op(gates: tuple[Gate, ...], l2p: dict[int, int], source):
            matrix, logical_qubits = fused_unitary_cached(gates)
            physical = tuple(l2p[q] for q in logical_qubits)
            return compile_unitary_op(matrix, physical, n, source, gates)

        if stage.kernels is None:
            for offset, gate in enumerate(stage.gates):
                source = ("gate", stage_idx, offset)
                emit(
                    source, (gate,),
                    lambda g=gate, l2p=logical_to_physical, s=source: gate_op(g, l2p, s),
                )
            kernels_per_stage.append(0)
            continue

        for group_idx, kernel in enumerate(stage.kernels):
            gates = tuple(kernel.gates)
            if kernel.kernel_type is KernelType.FUSION:
                source = ("kernel", stage_idx, group_idx)
                emit(
                    source, gates,
                    lambda g=gates, l2p=logical_to_physical, s=source: fused_op(g, l2p, s),
                )
            else:
                # Shared-memory kernels apply their gates one by one.
                for offset, gate in enumerate(gates):
                    source = ("sm", stage_idx, group_idx, offset)
                    emit(
                        source, (gate,),
                        lambda g=gate, l2p=logical_to_physical, s=source: gate_op(g, l2p, s),
                    )
        kernels_per_stage.append(len(stage.kernels))
        num_kernels += len(stage.kernels)

    # Permute back to the identity layout so callers see logical ordering.
    identity = {q: q for q in range(n)}
    if layout.logical_to_physical() != identity:
        axes = permutation_axes(layout.logical_to_physical(), identity, n)
        if axes != list(range(n)):
            ops.append(compile_layout_op(axes, n, ("layout", "final")))
        num_permutations += 1

    return CompiledProgram(
        num_qubits=n,
        ops=ops,
        workspace=workspace,
        num_stages=len(plan.stages),
        num_kernels=num_kernels,
        num_permutations=num_permutations,
        kernels_per_stage=kernels_per_stage,
        locality_checked=check_locality,
        ops_reused=ops_reused,
        provenance=plan.provenance,
    )


# ---------------------------------------------------------------------------
# Per-plan program memo (for the execute_plan fast path)
# ---------------------------------------------------------------------------

#: Bounded: each cached program's workspace lazily holds up to one
#: state-sized buffer pair, so the memo is kept small.
_PROGRAM_CACHE_MAX = 4
_PROGRAM_CACHE: "OrderedDict[tuple, tuple[ExecutionPlan, CompiledProgram]]" = (
    OrderedDict()
)
_PROGRAM_CACHE_LOCK = threading.Lock()


def compiled_program_for(
    plan: ExecutionPlan,
    machine: MachineConfig | None = None,
    check_locality: bool = True,
) -> CompiledProgram:
    """The memoized compiled program of *plan* (keyed by plan identity).

    Repeated ``execute_plan(plan)`` calls — a benchmark loop, a shots
    fan-out over one plan — compile once.  The memo validates object
    identity (ids can be recycled) and holds only a handful of entries;
    cross-circuit amortisation belongs to the Session plan cache, which
    stores programs alongside plans and rebinds them explicitly.  A lock
    guards the memo (concurrent ``execute_plan`` callers share it);
    compilation itself runs outside the lock — racing threads at worst
    both compile and the later store wins.
    """
    key = (
        id(plan),
        machine.local_qubits if machine is not None else None,
        check_locality,
    )
    with _PROGRAM_CACHE_LOCK:
        hit = _PROGRAM_CACHE.get(key)
        if hit is not None and hit[0] is plan:
            _PROGRAM_CACHE.move_to_end(key)
            return hit[1]
    program = compile_plan(plan, machine=machine, check_locality=check_locality)
    with _PROGRAM_CACHE_LOCK:
        if key not in _PROGRAM_CACHE and len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.popitem(last=False)
        _PROGRAM_CACHE[key] = (plan, program)
    return program


def clear_program_cache() -> None:
    """Drop the ``execute_plan`` program memo (each entry retains a plan,
    its compiled op stream, and the program's lazily-built workspace
    buffers).  Pair with
    :func:`repro.sim.program.release_thread_workspace` to fully release
    the compiled path's memory in a long-lived process that occasionally
    simulates very large states."""
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE.clear()

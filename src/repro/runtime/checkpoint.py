"""Stage-boundary checkpointing for the shard executors.

A long offloaded/parallel run is a sequence of stages, and the DRAM state
between two stages is a complete, self-describing snapshot: the amplitude
array in the *physical* qubit layout that the just-completed stage left
behind.  This module persists exactly that — after stage ``k`` completes,
the executor writes a **checkpoint** holding the state bytes, the layout,
and the plan's structural fingerprint; a later ``resume_from=`` run
validates the fingerprint, restores the state + layout, skips stages
``0..k`` and continues bit-exact with an uninterrupted run (the stage
``k+1`` permute sees precisely the layout it would have seen live).

File format (version :data:`CHECKPOINT_VERSION`)::

    <header JSON, one line>\\n<raw state bytes>

The header carries ``version``, ``plan_fingerprint``, ``num_qubits``,
``stage_index`` (the last *completed* stage), ``layout`` (physical qubit
per logical index), ``dtype``/``shape``, and ``check`` — a blake2b digest
over the canonical header-sans-check JSON plus the state bytes.  Every
write goes through :func:`atomic_write_bytes` (tmp + flush + fsync +
rename + directory fsync), so a crash mid-write can never leave a torn
file that parses; a tampered file fails its digest and is **evicted,
never trusted** (:class:`repro.errors.CacheCorruptionError`).

:func:`find_checkpoint` implements the resume policy: given a directory it
returns the newest valid checkpoint matching the plan fingerprint and tag
(corrupt or stale files are skipped and deleted); given an explicit file
it loads strictly, raising on corruption or fingerprint mismatch.

The durable-write helpers (:func:`fsync_file`, :func:`fsync_directory`,
:func:`atomic_write_bytes`) are shared with the service's journal and
plan-store persistence — one fsync discipline across every durable
artifact in the tree.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..errors import CacheCorruptionError, PlanValidationError
from . import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime ← session)
    from ..core.plan import ExecutionPlan

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointConfig",
    "atomic_write_bytes",
    "checkpoint_fingerprint",
    "find_checkpoint",
    "fsync_directory",
    "fsync_file",
    "load_checkpoint",
    "write_checkpoint",
]

#: On-disk format version; bumping it invalidates every older checkpoint.
CHECKPOINT_VERSION = 1

_SUFFIX = ".ckpt"


# ---------------------------------------------------------------------------
# Durable-write helpers (shared with journal + plan-store persistence)
# ---------------------------------------------------------------------------


def fsync_file(handle) -> None:
    """Flush and fsync an open file object to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_directory(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some filesystems (and all of Windows) refuse directory
    fds; the rename itself is still atomic there, we just lose the
    durability of the directory entry — never correctness.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Durably write *payload* to *path*: tmp + fsync + rename + dir fsync.

    Readers either see the old content or the complete new content, never
    a torn mix — and once this returns, the new content survives power
    loss (the tmp file is fsynced before the rename, the directory entry
    after).  The tmp file is cleaned up on any failure.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            fsync_file(handle)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)


# ---------------------------------------------------------------------------
# Configuration + snapshot value
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often an executor snapshots stage boundaries.

    Attributes
    ----------
    directory:
        Directory the checkpoint files live in (created on first write).
    every:
        Snapshot after every ``every``-th completed stage (1 = all).  The
        final stage is never snapshotted — the run's result supersedes it.
    keep:
        How many most-recent checkpoints to retain per tag; older ones are
        pruned after each successful write.
    tag:
        Filename prefix isolating concurrent runs sharing a directory
        (the service uses ``job<id>``).
    """

    directory: Path
    every: int = 1
    keep: int = 2
    tag: str = "run"

    def __post_init__(self):
        object.__setattr__(self, "directory", Path(self.directory))
        if self.every < 1:
            raise ValueError("checkpoint interval 'every' must be >= 1")  # lint: config-error
        if self.keep < 1:
            raise ValueError("checkpoint 'keep' must be >= 1")  # lint: config-error
        if not self.tag or "/" in self.tag or self.tag != self.tag.strip():
            raise ValueError(f"bad checkpoint tag {self.tag!r}")  # lint: config-error

    @classmethod
    def coerce(cls, value) -> "CheckpointConfig":
        """``str``/``Path`` → config with defaults; configs pass through."""
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(directory=Path(value))
        raise TypeError(  # lint: config-error
            f"checkpoint must be a CheckpointConfig or a directory path, "
            f"got {type(value).__name__}"
        )

    def path_for(self, stage_index: int) -> Path:
        return self.directory / f"{self.tag}-stage{stage_index:04d}{_SUFFIX}"


@dataclass(frozen=True)
class Checkpoint:
    """One loaded stage-boundary snapshot.

    ``stage_index`` is the last **completed** stage; ``layout`` maps each
    logical qubit (list index) to its physical position in ``state``, i.e.
    the layout stage ``stage_index`` finished in.
    """

    version: int
    plan_fingerprint: str
    num_qubits: int
    stage_index: int
    layout: tuple[int, ...]
    state: np.ndarray
    path: Path

    def layout_mapping(self) -> dict[int, int]:
        """The layout as the ``{logical: physical}`` dict the runtime uses."""
        return {logical: physical for logical, physical in enumerate(self.layout)}


def checkpoint_fingerprint(plan: "ExecutionPlan") -> str:
    """The fingerprint a checkpoint is validated against.

    Deliberately *stricter* than the plan cache's structural
    :func:`~repro.session.cache.plan_fingerprint` (imported lazily — the
    session package imports this runtime package): the structural
    fingerprint ignores rotation angles so a parameter sweep shares one
    cache entry, but resuming a sweep sibling's state would silently
    compute garbage.  Checkpoints therefore also hash every gate's
    parameters — a resume is valid only for the bit-identical computation.
    """
    from ..session.cache import plan_fingerprint

    h = hashlib.blake2b(plan_fingerprint(plan).encode(), digest_size=16)
    for gate in plan.all_gates():
        h.update(b"|")
        h.update(gate.name.encode())
        h.update(np.asarray(gate.qubits, dtype=np.int32).tobytes())
        if gate.params:
            h.update(np.asarray(gate.params, dtype=np.float64).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Write / load / find
# ---------------------------------------------------------------------------


def _digest(header: dict, state_bytes: bytes) -> str:
    """blake2b over the canonical header-sans-check JSON + state bytes."""
    core = {k: v for k, v in header.items() if k != "check"}
    h = hashlib.blake2b(digest_size=16)
    h.update(json.dumps(core, sort_keys=True, separators=(",", ":")).encode())
    h.update(state_bytes)
    return h.hexdigest()


def write_checkpoint(
    config: CheckpointConfig,
    *,
    fingerprint: str,
    num_qubits: int,
    stage_index: int,
    layout: dict[int, int],
    state: np.ndarray,
) -> Path:
    """Durably snapshot *state* as the boundary after *stage_index*.

    Returns the checkpoint path.  Prunes same-tag checkpoints beyond
    ``config.keep`` afterwards (best-effort).  Raises ``ShardIOError`` /
    ``OSError`` on failure — callers treat checkpointing as advisory and
    must not fail the run over it.
    """
    faults.check("checkpoint_write", shard=stage_index)
    config.directory.mkdir(parents=True, exist_ok=True)
    state = np.ascontiguousarray(state)
    state_bytes = state.tobytes()
    header = {
        "version": CHECKPOINT_VERSION,
        "plan_fingerprint": fingerprint,
        "num_qubits": int(num_qubits),
        "stage_index": int(stage_index),
        "layout": [int(layout[q]) for q in range(num_qubits)],
        "dtype": str(state.dtype),
        "shape": list(state.shape),
    }
    header["check"] = _digest(header, state_bytes)
    path = config.path_for(stage_index)
    atomic_write_bytes(
        path,
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode() + b"\n"
        + state_bytes,
    )
    _prune(config)
    return path


def _prune(config: CheckpointConfig) -> None:
    """Drop all but the ``keep`` highest-stage checkpoints for the tag."""
    try:
        files = sorted(config.directory.glob(f"{config.tag}-stage*{_SUFFIX}"))
    except OSError:  # pragma: no cover - directory vanished underneath us
        return
    for stale in files[: -config.keep] if len(files) > config.keep else []:
        stale.unlink(missing_ok=True)


def load_checkpoint(path: Path) -> Checkpoint:
    """Read and verify one checkpoint file.

    Raises :class:`CacheCorruptionError` on any structural or digest
    failure — a bad checkpoint is indistinguishable from a tampered one
    and is never trusted.
    """
    path = Path(path)
    faults.check("checkpoint_load")
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CacheCorruptionError(
            f"checkpoint {path.name} unreadable: {exc}", site="checkpoint_load"
        ) from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CacheCorruptionError(
            f"checkpoint {path.name} has no header", site="checkpoint_load"
        )
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise CacheCorruptionError(
            f"checkpoint {path.name} header is not JSON", site="checkpoint_load"
        ) from exc
    state_bytes = raw[newline + 1 :]
    required = {
        "version", "plan_fingerprint", "num_qubits", "stage_index",
        "layout", "dtype", "shape", "check",
    }
    if not isinstance(header, dict) or not required.issubset(header):
        raise CacheCorruptionError(
            f"checkpoint {path.name} header is missing fields",
            site="checkpoint_load",
        )
    if header["version"] != CHECKPOINT_VERSION:
        raise CacheCorruptionError(
            f"checkpoint {path.name} has version {header['version']}, "
            f"expected {CHECKPOINT_VERSION}",
            site="checkpoint_load",
        )
    if header["check"] != _digest(header, state_bytes):
        raise CacheCorruptionError(
            f"checkpoint {path.name} failed its integrity digest",
            site="checkpoint_load",
        )
    try:
        state = np.frombuffer(state_bytes, dtype=np.dtype(header["dtype"]))
        state = state.reshape(header["shape"]).copy()
    except (TypeError, ValueError) as exc:
        raise CacheCorruptionError(
            f"checkpoint {path.name} state does not match its header: {exc}",
            site="checkpoint_load",
        ) from exc
    layout = tuple(int(q) for q in header["layout"])
    if sorted(layout) != list(range(header["num_qubits"])):
        raise CacheCorruptionError(
            f"checkpoint {path.name} layout is not a permutation",
            site="checkpoint_load",
        )
    return Checkpoint(
        version=header["version"],
        plan_fingerprint=header["plan_fingerprint"],
        num_qubits=int(header["num_qubits"]),
        stage_index=int(header["stage_index"]),
        layout=layout,
        state=state,
        path=path,
    )


def find_checkpoint(
    source,
    *,
    fingerprint: str,
    tag: str = "run",
    evict: bool = True,
) -> Checkpoint | None:
    """Resolve a ``resume_from=`` value into a validated checkpoint.

    * An explicit **file** path loads strictly: corruption raises
      :class:`CacheCorruptionError`, a fingerprint mismatch raises
      :class:`PlanValidationError` — resuming a different plan's state
      would silently compute garbage.
    * A **directory** returns the newest (highest completed stage) valid
      checkpoint matching *fingerprint* and *tag*; corrupt or mismatched
      files are skipped (and deleted when *evict*), and ``None`` means
      "nothing usable — start from scratch".
    """
    source = Path(source)
    if source.is_file():
        ck = load_checkpoint(source)
        if ck.plan_fingerprint != fingerprint:
            raise PlanValidationError(
                f"checkpoint {source.name} belongs to a different plan "
                f"(fingerprint {ck.plan_fingerprint} != {fingerprint})",
                site="checkpoint_load",
            )
        return ck
    if not source.is_dir():
        return None
    best: Checkpoint | None = None
    for path in sorted(source.glob(f"{tag}-stage*{_SUFFIX}")):
        try:
            ck = load_checkpoint(path)
        except CacheCorruptionError:
            if evict:
                path.unlink(missing_ok=True)
            continue
        if ck.plan_fingerprint != fingerprint:
            continue
        if best is None or ck.stage_index > best.stage_index:
            best = ck
    return best

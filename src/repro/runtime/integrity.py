"""Runtime integrity monitoring: per-stage norm drift + state checksums.

A multi-hour shard run can go numerically bad long before it finishes —
a miscompiled kernel, a DRAM bit-flip, a buggy relabel — and nothing in
the hot path would notice: every stage happily transforms garbage into
more garbage.  The :class:`IntegrityMonitor` watches two cheap invariants
at stage boundaries:

* **Norm drift** — every gate is unitary, so ``‖state‖₂`` is conserved.
  After each stage the monitor compares the norm against the baseline
  recorded at the first check; drift beyond ``norm_tolerance`` means the
  computation itself is corrupt.
* **Inter-stage checksum** — between the end of stage ``k`` (checked in
  ``stage_complete``) and the start of stage ``k+1`` (checked in
  ``stage_begin``) the state must be *bit-identical*: nothing is allowed
  to touch it.  A blake2b digest over the raw bytes catches any torn
  write, stray mutation, or offload round-trip corruption in the gap.

Violations raise :class:`repro.errors.IntegrityError` (permanent branch —
retrying on corrupt state propagates garbage).  The monitor is optional
and opt-in (``Session(monitor=True)`` / ``monitor=`` on the executors);
the digest costs one pass over the state per boundary, which is noise
next to a stage's kernel work but not free, hence not the default.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import IntegrityError

__all__ = ["IntegrityConfig", "IntegrityMonitor"]


@dataclass(frozen=True)
class IntegrityConfig:
    """Tolerances for the runtime integrity monitor.

    ``norm_tolerance`` bounds the allowed relative drift of the state's
    2-norm from its baseline; ``checksum`` enables the inter-stage
    bit-identity digest.
    """

    norm_tolerance: float = 1e-6
    checksum: bool = True

    def __post_init__(self):
        if self.norm_tolerance <= 0:
            raise ValueError("norm_tolerance must be positive")  # lint: config-error


class IntegrityMonitor:
    """Stage-boundary invariant checks for one execution.

    Not thread-safe; the executors call it from the (single) stage loop.
    Create a fresh monitor per run — the norm baseline and digest carry
    state across stages of *one* execution only.
    """

    def __init__(self, config: IntegrityConfig | None = None):
        self.config = config or IntegrityConfig()
        self._baseline_norm: float | None = None
        self._last_digest: str | None = None
        self._last_stage: int | None = None
        #: Boundary checks performed (telemetry, surfaced in stats).
        self.stages_checked = 0
        #: Worst relative norm drift observed (telemetry).
        self.max_norm_drift = 0.0

    @classmethod
    def coerce(cls, value) -> "IntegrityMonitor | None":
        """``True``/config/monitor → monitor; ``False``/``None`` → None."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, IntegrityConfig):
            return cls(value)
        if isinstance(value, cls):
            return value
        raise TypeError(  # lint: config-error
            f"monitor must be a bool, IntegrityConfig or IntegrityMonitor, "
            f"got {type(value).__name__}"
        )

    # ------------------------------------------------------------------
    # Stage hooks
    # ------------------------------------------------------------------

    def _digest(self, state: np.ndarray) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(np.ascontiguousarray(state).view(np.uint8))
        return h.hexdigest()

    def stage_begin(self, state: np.ndarray, stage_index: int) -> None:
        """Verify the state was untouched since the previous boundary."""
        if not self.config.checksum or self._last_digest is None:
            return
        if self._digest(state) != self._last_digest:
            raise IntegrityError(
                f"state mutated between stage {self._last_stage} and stage "
                f"{stage_index}: inter-stage checksum mismatch",
                site="integrity_checksum",
                stage=stage_index,
            )

    def stage_complete(self, state: np.ndarray, stage_index: int) -> None:
        """Check norm conservation and record the boundary digest."""
        self.stages_checked += 1
        norm = float(np.linalg.norm(state))
        if self._baseline_norm is None:
            self._baseline_norm = norm
        else:
            drift = abs(norm - self._baseline_norm) / max(self._baseline_norm, 1e-300)
            self.max_norm_drift = max(self.max_norm_drift, drift)
            if drift > self.config.norm_tolerance:
                raise IntegrityError(
                    f"state norm drifted {drift:.3e} (tolerance "
                    f"{self.config.norm_tolerance:.3e}) after stage {stage_index}",
                    site="integrity_norm",
                    stage=stage_index,
                    drift=drift,
                )
        if self.config.checksum:
            self._last_digest = self._digest(state)
            self._last_stage = stage_index

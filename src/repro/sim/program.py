"""Compiled op streams: pre-resolved gate application with batched execution.

:mod:`repro.sim.apply` makes a *single* gate application fast, but every
call still pays Python-side dispatch: matrix structure analysis, dense-plan
cache lookups, and branchy kind selection.  This module hoists all of that
to *compile time*.  :func:`compile_unitary_op` classifies a matrix once and
returns a :class:`CompiledOp` whose closures carry the fully-resolved
payload — the broadcast diagonal vector, the permutation cycle table, the
reduced controlled block, or the dense gemm plan with its prepared small
matrices — so executing the op is a tight sequence of NumPy/BLAS calls with
zero analysis, zero hashing and zero dict lookups.

Ops follow the same ping-pong buffer contract as
:func:`repro.sim.apply.apply_gate_buffered` and make the *same* in-place vs
stream decisions, so a compiled stream is bit-exact with the interpreted
one.  Every op also has a **batched** form: the same payload applied to a
``(B, 2^n)`` stack of states with single B-wide GEMM/broadcast calls per op
instead of ``B`` independent passes.  The batch dimension folds into the
leading gemm axis; structured (copy/broadcast) ops are bit-identical to
``B`` single runs, while GEMM ops hand BLAS a different matrix shape and
may differ by summation-order rounding (~1e-16 per op) — batched and
looped results agree to tight tolerance, and often exactly.

:class:`CompiledProgram` strings ops into an executable program.  Its
:class:`Workspace` preallocates and owns every buffer the program needs —
the state/scratch ping-pong pair (per batch width) and the per-op
temporaries — so steady-state re-execution performs **zero** engine
allocations (see the allocation-log regression tests).  Plan-level
compilation lives in :mod:`repro.runtime.compile`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np

from ..errors import StateValidationError
from .apply import (
    MatrixInfo,
    _basis_views,
    _controlled_gather_gemm_inplace,
    _dense_accumulate,
    _dense_plan,
    _dense_views_inplace,
    _diag_broadcast,
    _effective_kind,
    _inplace_preferred,
    _big_to_out,
    analyze_matrix,
    qubit_axis,
    run_dense_plan,
    tracked_empty,
)
from .statevector import StateVector

__all__ = [
    "CompiledOp",
    "CompiledProgram",
    "INPLACE_KINDS",
    "STREAM_KINDS",
    "Workspace",
    "compile_unitary_op",
    "compile_layout_op",
    "run_dense_plan_batched",
    "release_thread_workspace",
    "thread_workspace",
]


class Workspace:
    """Preallocated, reusable buffer set for compiled-program execution.

    All buffers come from :func:`repro.sim.apply.tracked_empty` (so the
    allocation log stays honest) and are cached by size with a small LRU
    bound per pool — a fixed batch-width workload re-executes with zero
    allocations, while a workload cycling through many distinct batch
    widths evicts the least-recently-used pair instead of accumulating
    state-sized buffers without bound (workspaces are retained by the
    Session plan cache).  One workspace may be shared by a whole family of
    rebound programs — execution is sequential within a session — but must
    **not** be shared between threads; concurrent executors use
    :func:`thread_workspace`.
    """

    __slots__ = ("_pairs", "_pairs2d", "_tmps", "_views")

    #: LRU bounds per pool.  Pairs are state-sized (the expensive ones);
    #: tmps are at most half a (possibly batched) state and more varied in
    #: size, so they get a roomier bound — eviction mid-steady-state would
    #: show up as allocation-log noise in the regression tests.  Batched
    #: pairs are B× a full state and workspaces are retained by the
    #: Session plan cache, so only the most recent batch width is kept: a
    #: fan-out at B=16, n=24 would otherwise pin gigabytes per width long
    #: after the job finished.  The view memo is bounded by entry count
    #: only (one entry per (op, buffer) — views are cheap); entries for
    #: evicted buffers are dropped eagerly so they never pin dead pairs.
    _MAX_PAIRS = 4
    _MAX_PAIRS2D = 1
    _MAX_TMPS = 64
    _MAX_VIEWS = 4096

    def __init__(self) -> None:
        #: size -> [state, scratch] flat ping-pong pair.
        self._pairs: "OrderedDict[int, list[np.ndarray]]" = OrderedDict()
        #: (batch, size) -> [(B, size) states, scratch] ping-pong pair.
        #: Persistent array objects (not per-call reshapes) so the view
        #: memo keyed by buffer identity stays warm across runs.
        self._pairs2d: "OrderedDict[tuple[int, int], list[np.ndarray]]" = (
            OrderedDict()
        )
        #: (size, slot) -> flat temporary.
        self._tmps: "OrderedDict[tuple[int, int], np.ndarray]" = OrderedDict()
        #: (op token, buffer id) -> (buffer, views).  Per-workspace — and a
        #: workspace belongs to exactly one thread — so the memo needs no
        #: lock and scales with however many workers exist, each warming
        #: its own entries (a shared fixed-size cache would thrash once
        #: worker buffers outnumbered it).
        self._views: "OrderedDict[tuple, tuple]" = OrderedDict()

    def pair(self, size: int) -> list[np.ndarray]:
        """The ping-pong buffer pair for *size* amplitudes (a mutable list,
        so callers can persist the swapped roles)."""
        got = self._pairs.get(size)
        if got is None:
            if len(self._pairs) >= self._MAX_PAIRS:
                self._drop_views_for(self._pairs.popitem(last=False)[1])
            got = self._pairs[size] = [tracked_empty(size), tracked_empty(size)]
        else:
            self._pairs.move_to_end(size)
        return got

    def pair2d(self, batch: int, size: int) -> list[np.ndarray]:
        """The ``(batch, size)`` ping-pong pair for batched execution."""
        key = (batch, size)
        got = self._pairs2d.get(key)
        if got is None:
            if len(self._pairs2d) >= self._MAX_PAIRS2D:
                self._drop_views_for(self._pairs2d.popitem(last=False)[1])
            got = self._pairs2d[key] = [
                tracked_empty(batch * size).reshape(batch, size),
                tracked_empty(batch * size).reshape(batch, size),
            ]
        else:
            self._pairs2d.move_to_end(key)
        return got

    def tmp(self, size: int, slot: int = 0) -> np.ndarray:
        """A flat temporary of *size* elements; slots never alias."""
        key = (size, slot)
        buf = self._tmps.get(key)
        if buf is None:
            if len(self._tmps) >= self._MAX_TMPS:
                self._tmps.popitem(last=False)
            buf = self._tmps[key] = tracked_empty(size)
        else:
            self._tmps.move_to_end(key)
        return buf

    def views(
        self,
        token: object,
        buf: np.ndarray,
        build: "Callable[[np.ndarray], tuple[np.ndarray, ...]]",
    ) -> tuple[np.ndarray, ...]:
        """Memoized slice views of *buf* for the op identified by *token*.

        A program's ping-pong buffers (and a shard worker's device
        buffers) are stable across executions, so the 2^k views a
        structured op needs are built once per (op, buffer) — the dominant
        Python overhead of in-place ops on small states.  Entries are
        verified by buffer identity and evicted LRU.
        """
        key = (token, id(buf))
        hit = self._views.get(key)
        if hit is not None and hit[0] is buf:
            self._views.move_to_end(key)
            return hit[1]
        value = build(buf)
        while len(self._views) >= self._MAX_VIEWS:
            self._views.popitem(last=False)
        self._views[key] = (buf, value)
        return value

    def _drop_views_for(self, bufs: list[np.ndarray]) -> None:
        """Forget view entries over evicted buffers (views hold their base
        array alive — without this, dead pairs would stay pinned)."""
        dead = [
            key for key, (buf, _views) in self._views.items()
            if any(buf is b for b in bufs)
        ]
        for key in dead:
            del self._views[key]

    def clear(self) -> None:
        self._pairs.clear()
        self._pairs2d.clear()
        self._tmps.clear()
        self._views.clear()


_WS_TLS = threading.local()


def thread_workspace() -> Workspace:
    """The calling thread's private :class:`Workspace` (created on first
    use).  Shard-runtime workers use this so compiled segment ops stay
    thread-safe while still reusing buffers across shards and stages;
    ``execute_plan``'s compiled path runs on it too.  The buffers persist
    for the thread's lifetime (that is what makes steady-state
    re-execution allocation-free) — long-lived services that only
    occasionally simulate very large states can reclaim the memory with
    :func:`release_thread_workspace`."""
    ws = getattr(_WS_TLS, "ws", None)
    if ws is None:
        ws = _WS_TLS.ws = Workspace()
    return ws


def release_thread_workspace() -> None:
    """Drop the calling thread's workspace buffers (state-sized ping-pong
    pairs, batch pairs, temporaries, view memos).  The next compiled
    execution on this thread re-allocates them."""
    ws = getattr(_WS_TLS, "ws", None)
    if ws is not None:
        ws.clear()
        _WS_TLS.ws = None


#: Buffer discipline per op kind: structured kinds update the state buffer
#: in place; streaming kinds read the state buffer and write the scratch
#: buffer in full, swapping the ping-pong roles.  The static verifier
#: (:mod:`repro.check`) proves each op's declared ``mode`` against this
#: table without executing anything.
INPLACE_KINDS = frozenset({"diagonal", "permutation", "controlled"})
STREAM_KINDS = frozenset({"dense", "big", "layout"})


class CompiledOp:
    """One fully-resolved operation of a compiled stream.

    ``run(state, scratch, ws)`` operates on flat ``(2^n,)`` buffers,
    ``run_batched(states, scratch, ws)`` on ``(B, 2^n)`` stacks; both
    return the ``(state, scratch)`` pair with roles possibly swapped
    (streaming ops write into scratch, structured ops update in place).
    ``source`` names where in the plan the op came from and ``gates`` the
    gate objects its payload was resolved from — the rebind machinery
    reuses an op verbatim when a structurally identical plan binds equal
    gates at the same source.

    The remaining slots are *static metadata* mirroring what the closures
    actually do, consumed by :mod:`repro.check` to verify the stream
    without executing it: ``mode`` declares the ping-pong discipline
    (``"inplace"`` or ``"stream"``), ``qubits`` the physical qubit
    positions the payload touches (``None`` for whole-state layout ops)
    and ``tmp_slots`` the workspace temporary slots the closures borrow
    (slots must never alias within one op).
    """

    __slots__ = (
        "kind", "run", "run_batched", "source", "gates",
        "mode", "qubits", "tmp_slots",
    )

    def __init__(
        self,
        kind: str,
        run: "Callable[..., tuple[np.ndarray, np.ndarray]]",
        run_batched: "Callable[..., tuple[np.ndarray, np.ndarray]]",
        source: tuple | None = None,
        gates: "tuple | None" = None,
        mode: str | None = None,
        qubits: tuple[int, ...] | None = None,
        tmp_slots: tuple[int, ...] = (),
    ) -> None:
        self.kind = kind
        self.run = run
        self.run_batched = run_batched
        self.source = source
        self.gates = gates
        self.mode = mode if mode is not None else (
            "inplace" if kind in INPLACE_KINDS else "stream"
        )
        self.qubits = qubits
        self.tmp_slots = tmp_slots

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CompiledOp {self.kind} source={self.source}>"


# ---------------------------------------------------------------------------
# Batched dense-plan execution
# ---------------------------------------------------------------------------


def run_dense_plan_batched(
    plan: tuple, states: np.ndarray, out: np.ndarray, ws: Workspace
) -> None:
    """Execute a dense gemm *plan* against a ``(B, 2^n)`` state stack.

    The batch folds into the leading gemm dimension (``gemm_right`` /
    ``stacked`` / split plans) or broadcasts over a batched matmul
    (``gemm_left``), so each op is one B-wide BLAS call.  Each output
    amplitude is the same mathematical dot product a single-state run
    computes, but the folded shape can change BLAS blocking and therefore
    summation order — per-state results match looped runs to ~1e-16 per
    op, not necessarily bit for bit.
    """
    kind = plan[0]
    if kind == "gemm_right":
        _, bt, cols = plan
        np.matmul(states.reshape(-1, cols), bt, out=out.reshape(-1, cols))
    elif kind == "gemm_left":
        _, b, rows = plan
        shape = (states.shape[0], rows, states.shape[-1] // rows)
        np.matmul(b, states.reshape(shape), out=out.reshape(shape))
    elif kind == "stacked":
        _, m, _pre, d, post = plan
        shape = (-1, d, post)
        np.matmul(m, states.reshape(shape), out=out.reshape(shape))
    elif kind == "split_stacked":
        _, mats, _pre, mid, post = plan
        src = states.reshape(-1, 2, mid, 2, post)
        dst = out.reshape(-1, 2, mid, 2, post)
        tmp = ws.tmp(states.size // 2, slot=1).reshape(-1, mid, 2, post)
        for a in (0, 1):
            dst_a = dst[:, a]
            np.matmul(mats[a][0], src[:, 0], out=dst_a)
            np.matmul(mats[a][1], src[:, 1], out=tmp)
            dst_a += tmp
    else:  # split_gemm
        _, bts, _pre, mid, cols = plan
        src = states.reshape(-1, 2, mid, cols)
        dst = out.reshape(-1, 2, mid, cols)
        tmp = ws.tmp(states.size // 2, slot=1).reshape(-1, mid, cols)
        for a in (0, 1):
            dst_a = dst[:, a]
            np.matmul(src[:, 0], bts[a][0], out=dst_a)
            np.matmul(src[:, 1], bts[a][1], out=tmp)
            dst_a += tmp


# ---------------------------------------------------------------------------
# Op builders
# ---------------------------------------------------------------------------


def compile_unitary_op(
    matrix: np.ndarray,
    qubits: Sequence[int],
    n: int,
    source: tuple | None = None,
    gates: "tuple | None" = None,
) -> CompiledOp:
    """Lower one unitary application to a :class:`CompiledOp`.

    Classification (:func:`repro.sim.apply.analyze_matrix` plus the
    position-aware refinements) runs here, once; the returned closures
    perform the update with the resolved payload only.  The in-place vs
    stream decision mirrors :func:`repro.sim.apply.apply_gate_buffered`
    exactly, so compiled and interpreted executions are bit-exact.
    """
    qubits = tuple(qubits)
    info = analyze_matrix(matrix)
    kind = _effective_kind(info, qubits, n)
    if _inplace_preferred(info, qubits, n):
        if info.kind == "diagonal":
            return _diag_op(info, qubits, n, source, gates)
        if kind == "permutation":
            return _perm_op(info, qubits, n, source, gates)
        return _controlled_op(info, qubits, n, source, gates)
    if kind == "dense":
        return _dense_op(matrix, qubits, n, source, gates)
    return _big_op(matrix, qubits, n, source, gates)


def _diag_op(
    info: MatrixInfo, qubits: Sequence[int], n: int, source: tuple | None, gates: "tuple | None"
) -> CompiledOp:
    diag_b = _diag_broadcast(info.diagonal, n, qubits)
    shape = (2,) * n
    bshape = (-1,) + shape

    def run(state, scratch, ws):
        t = state.reshape(shape)
        np.multiply(t, diag_b, out=t)
        return state, scratch

    def run_batched(states, scratch, ws):
        t = states.reshape(bshape)
        np.multiply(t, diag_b, out=t)
        return states, scratch

    return CompiledOp("diagonal", run, run_batched, source, gates, qubits=qubits)


def _compile_permutation_moves(
    perm, phases
) -> list[tuple[int, int, int, complex]]:
    """Lower a phased permutation to a flat move sequence.

    Mirrors the cycle walk of
    :func:`repro.sim.apply._permutation_inplace` instruction for
    instruction (same sources, destinations and order — bit-exact), but
    hoists the cycle discovery to compile time.  Codes: 0 = copy view
    ``b``→``a`` (phase-scaled), 1 = save view ``a`` to tmp, 2 = restore
    tmp to view ``a`` (phase-scaled), 3 = scale view ``a`` in place.
    """
    d = len(perm)
    visited = [False] * d
    moves: list[tuple[int, int, int, complex]] = []
    for start in range(d):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        nxt = perm[start]
        while nxt != start:
            cycle.append(nxt)
            visited[nxt] = True
            nxt = perm[nxt]
        if len(cycle) == 1:
            if phases[start] != 1:
                moves.append((3, start, 0, phases[start]))
            continue
        last = cycle[-1]
        moves.append((1, last, 0, 1))
        for i in range(len(cycle) - 1, 0, -1):
            src, dst = cycle[i - 1], cycle[i]
            moves.append((0, dst, src, phases[src]))
        moves.append((2, cycle[0], 0, phases[last]))
    return moves


def _run_moves(views, moves, tmp) -> None:
    for code, a, b, phase in moves:
        if code == 0:
            if phase == 1:
                np.copyto(views[a], views[b])
            else:
                np.multiply(views[b], phase, out=views[a])
        elif code == 1:
            np.copyto(tmp, views[a])
        elif code == 2:
            if phase == 1:
                np.copyto(views[a], tmp)
            else:
                np.multiply(tmp, phase, out=views[a])
        else:
            views[a] *= phase


def _perm_op(
    info: MatrixInfo, qubits: Sequence[int], n: int, source: tuple | None, gates: "tuple | None"
) -> CompiledOp:
    moves = _compile_permutation_moves(info.perm, info.phases)
    shape = (2,) * n
    view_size = 1 << (n - len(qubits))
    # Distinct tokens name this op's single/batched entries in each
    # workspace's view memo (per-thread, so no cross-worker sharing).
    single_token, batch_token = object(), object()

    def run(state, scratch, ws):
        views = ws.views(
            single_token, state,
            lambda buf: _basis_views(buf.reshape(shape), n, qubits),
        )
        tmp = ws.tmp(view_size, slot=1).reshape(views[0].shape)
        _run_moves(views, moves, tmp)
        return state, scratch

    def run_batched(states, scratch, ws):
        views = ws.views(
            batch_token, states,
            lambda buf: _basis_views(buf.reshape((-1,) + shape), n, qubits, lead=1),
        )
        tmp = ws.tmp(states.shape[0] * view_size, slot=1).reshape(views[0].shape)
        _run_moves(views, moves, tmp)
        return states, scratch

    return CompiledOp(
        "permutation", run, run_batched, source, gates,
        qubits=tuple(qubits), tmp_slots=(1,),
    )


def _controlled_op(
    info: MatrixInfo, qubits: Sequence[int], n: int, source: tuple | None, gates: "tuple | None"
) -> CompiledOp:
    red = info.reduced_info
    reduced_matrix = info.reduced_matrix
    target_qubits = [qubits[p] for p in info.targets]
    control_qubit = qubits[info.controls[0]] if info.controls else None

    if (
        len(info.controls) == 1
        and len(info.targets) == 1
        and red.kind == "dense"
        and target_qubits[0] < control_qubit
    ):
        # Gather + one streaming gemm; the batch folds into the row count.
        plan = _dense_plan(reduced_matrix, control_qubit, (target_qubits[0],))
        ctrl = control_qubit
        tgt = target_qubits[0]

        def run(state, scratch, ws):
            _controlled_gather_gemm_inplace(
                state, n, ctrl, tgt, reduced_matrix,
                plan=plan, compact=ws.tmp(state.size // 2, slot=0),
            )
            return state, scratch

        def run_batched(states, scratch, ws):
            _controlled_gather_gemm_inplace(
                states, n, ctrl, tgt, reduced_matrix,
                plan=plan, compact=ws.tmp(states.size // 2, slot=0),
            )
            return states, scratch

        return CompiledOp(
            "controlled", run, run_batched, source, gates,
            qubits=tuple(qubits), tmp_slots=(0,),
        )

    ctrl_axes = [qubit_axis(n, qubits[p]) for p in info.controls]
    shape = (2,) * n
    d = 1 << len(target_qubits)
    view_size = 1 << (n - len(qubits))
    red_kind = red.kind
    red_diag = red.diagonal
    red_moves = (
        _compile_permutation_moves(red.perm, red.phases)
        if red_kind == "permutation"
        else None
    )
    single_token, batch_token = object(), object()

    def _apply(views, snap, tmp):
        if red_kind == "diagonal":
            for b, view in enumerate(views):
                if red_diag[b] != 1:
                    view *= red_diag[b]
        elif red_kind == "permutation":
            _run_moves(views, red_moves, tmp.reshape(views[0].shape))
        else:
            _dense_views_inplace(views, reduced_matrix, snap=snap, tmp=tmp)

    def run(state, scratch, ws):
        views = ws.views(
            single_token, state,
            lambda buf: _basis_views(
                buf.reshape(shape), n, target_qubits,
                [(ax, 1) for ax in ctrl_axes],
            ),
        )
        _apply(views, ws.tmp(d * view_size, slot=0), ws.tmp(view_size, slot=1))
        return state, scratch

    def run_batched(states, scratch, ws):
        batch = states.shape[0]
        views = ws.views(
            batch_token, states,
            lambda buf: _basis_views(
                buf.reshape((-1,) + shape), n, target_qubits,
                [(1 + ax, 1) for ax in ctrl_axes], lead=1,
            ),
        )
        _apply(
            views,
            ws.tmp(batch * d * view_size, slot=0),
            ws.tmp(batch * view_size, slot=1),
        )
        return states, scratch

    return CompiledOp(
        "controlled", run, run_batched, source, gates,
        qubits=tuple(qubits), tmp_slots=(0, 1),
    )


def _dense_op(
    matrix: np.ndarray, qubits: Sequence[int], n: int, source: tuple | None, gates: "tuple | None"
) -> CompiledOp:
    plan = _dense_plan(matrix, n, qubits)
    needs_tmp = plan[0] in ("split_stacked", "split_gemm")

    def run(state, scratch, ws):
        tmp = ws.tmp(state.size // 2, slot=1) if needs_tmp else None
        run_dense_plan(plan, state, scratch, tmp=tmp)
        return scratch, state

    def run_batched(states, scratch, ws):
        run_dense_plan_batched(plan, states, scratch, ws)
        return scratch, states

    return CompiledOp(
        "dense", run, run_batched, source, gates,
        qubits=tuple(qubits), tmp_slots=(1,) if needs_tmp else (),
    )


def _big_op(
    matrix: np.ndarray, qubits: Sequence[int], n: int, source: tuple | None, gates: "tuple | None"
) -> CompiledOp:
    # Genuinely scattered wide matrix: the tensordot fallback (the one op
    # kind whose application is not allocation-free — tensordot builds its
    # own result; the cost is logged, matching the interpreted path).
    def run(state, scratch, ws):
        _big_to_out(state, matrix, qubits, n, scratch)
        return scratch, state

    def run_batched(states, scratch, ws):
        for b in range(states.shape[0]):
            _big_to_out(states[b], matrix, qubits, n, scratch[b])
        return scratch, states

    return CompiledOp("big", run, run_batched, source, gates, qubits=tuple(qubits))


def compile_layout_op(
    axes: Sequence[int], n: int, source: tuple | None = None
) -> CompiledOp:
    """A stage-boundary layout permutation as a precomputed axis transpose.

    *axes* is the tensor-axis permutation produced by
    :func:`repro.runtime.sharding.permutation_axes`; identity permutations
    must be elided by the caller (the compiler never emits them).
    """
    axes = list(axes)
    shape = (2,) * n
    baxes = [0] + [a + 1 for a in axes]

    def run(state, scratch, ws):
        permuted = np.transpose(state.reshape(shape), axes=axes)
        np.copyto(scratch.reshape(permuted.shape), permuted)
        return scratch, state

    def run_batched(states, scratch, ws):
        permuted = np.transpose(states.reshape((-1,) + shape), axes=baxes)
        np.copyto(scratch.reshape(permuted.shape), permuted)
        return scratch, states

    return CompiledOp("layout", run, run_batched, source, None, qubits=None)


# ---------------------------------------------------------------------------
# The program container
# ---------------------------------------------------------------------------


class CompiledProgram:
    """A plan lowered to a flat, re-executable op stream.

    Built by :func:`repro.runtime.compile.compile_plan`.  The program owns
    (lazily, through its :class:`Workspace`) every buffer execution needs;
    repeated :meth:`run_view` / :meth:`run_batched_view` calls perform zero
    engine allocations once warm.  Programs are cheap to rebind: a
    structurally identical plan reuses every op whose source gates are
    unchanged (see ``compile_plan(reuse=...)``), so only angle-dependent
    payloads are recomputed.

    The op stream is immutable and may be executed from several threads
    concurrently, but **each concurrent caller must pass its own
    workspace** (``run(..., workspace=thread_workspace())``) — the default
    program-owned workspace belongs to one executing thread at a time.
    `execute_plan` does exactly this, so its compiled path stays as
    thread-safe as the interpreter.
    """

    def __init__(
        self,
        num_qubits: int,
        ops: list[CompiledOp],
        workspace: Workspace | None = None,
        num_stages: int = 0,
        num_kernels: int = 0,
        num_permutations: int = 0,
        kernels_per_stage: list[int] | None = None,
        locality_checked: bool = True,
        ops_reused: int = 0,
        provenance: dict | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.ops = ops
        self.workspace = workspace if workspace is not None else Workspace()
        self.num_stages = num_stages
        self.num_kernels = num_kernels
        self.num_permutations = num_permutations
        self.kernels_per_stage = kernels_per_stage or []
        self.locality_checked = locality_checked
        #: How many ops were taken verbatim from the reuse program (rebind).
        self.ops_reused = ops_reused
        #: Planning provenance of the source plan (preset, pipeline, skips)
        #: — carried through compilation and rebinds so runtime consumers
        #: can attribute an executing program to the pipeline that planned it.
        self.provenance = dict(provenance) if provenance else {}

    def __len__(self) -> int:
        return len(self.ops)

    def op_counts(self) -> dict[str, int]:
        """Ops per kind — what the plan lowered to (tests/diagnostics)."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _load(
        self, buf: np.ndarray, initial_state: "StateVector | np.ndarray | None"
    ) -> None:
        if initial_state is None:
            buf[:] = 0.0
            buf.reshape(-1)[0] = 1.0
            return
        if isinstance(initial_state, StateVector):
            if initial_state.num_qubits != self.num_qubits:
                raise StateValidationError(
                    "initial state size does not match program"
                )
            initial_state.copy_into(buf)
            return
        data = np.asarray(initial_state)
        if data.size != buf.size:
            raise StateValidationError("initial state size does not match program")
        np.copyto(buf, data.reshape(buf.shape))

    def run_view(
        self,
        initial_state: StateVector | np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> np.ndarray:
        """Execute and return the final state as a **view** into the
        workspace buffer (invalidated by the next run on that workspace).
        Steady-state calls allocate nothing.

        ``workspace`` overrides the program-owned default; concurrent
        callers sharing one program must each pass their own (e.g.
        :func:`thread_workspace`) — the op stream itself is immutable and
        thread-safe, the buffers are not.
        """
        ws = workspace if workspace is not None else self.workspace
        size = 1 << self.num_qubits
        pair = ws.pair(size)
        state, scratch = pair
        self._load(state, initial_state)
        for op in self.ops:
            state, scratch = op.run(state, scratch, ws)
        pair[0], pair[1] = state, scratch
        return state

    def run(
        self,
        initial_state: StateVector | np.ndarray | None = None,
        workspace: Workspace | None = None,
    ) -> StateVector:
        """Execute and return a fresh :class:`StateVector` (one tracked
        state-sized allocation for the caller-owned copy)."""
        final = self.run_view(initial_state, workspace=workspace)
        out = tracked_empty(final.size)
        np.copyto(out, final)
        return StateVector(self.num_qubits, out)

    def run_batched_view(
        self, initial_states: Sequence, workspace: Workspace | None = None
    ) -> np.ndarray:
        """Execute the program once against a ``(B, 2^n)`` stack of initial
        states; returns the stacked final states as a view into the
        workspace batch buffer (invalidated by the next run)."""
        batch = len(initial_states)
        if batch == 0:
            raise ValueError("empty batch")  # lint: config-error
        ws = workspace if workspace is not None else self.workspace
        size = 1 << self.num_qubits
        pair = ws.pair2d(batch, size)
        states, scratch = pair
        for b, initial in enumerate(initial_states):
            self._load(states[b], initial)
        for op in self.ops:
            states, scratch = op.run_batched(states, scratch, ws)
        pair[0], pair[1] = states, scratch
        return states

    def run_batched(
        self, initial_states: Sequence, workspace: Workspace | None = None
    ) -> list[StateVector]:
        """Batched execution returning caller-owned :class:`StateVector`
        copies, one per initial state, in order."""
        finals = self.run_batched_view(initial_states, workspace=workspace)
        out = []
        for b in range(finals.shape[0]):
            buf = tracked_empty(finals.shape[1])
            np.copyto(buf, finals[b])
            out.append(StateVector(self.num_qubits, buf))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledProgram {self.num_qubits}q {len(self.ops)} ops "
            f"{self.num_stages} stages>"
        )

"""Kernel fusion: build the fused unitary of a group of gates.

A *fusion kernel* (Section VI-B of the paper) executes a group of gates as
a single matrix: the product of all gate matrices embedded into the space
of the kernel's qubit set.  This module implements that embedding and
product, and is used both by the functional executor (to apply kernels) and
by tests that validate the kernelizer against the reference simulator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..circuits.gates import Gate
from .apply import apply_matrix, expand_matrix

__all__ = ["fused_unitary", "kernel_qubits", "apply_gate_sequence"]


def kernel_qubits(gates: Iterable[Gate]) -> tuple[int, ...]:
    """The sorted union of qubits touched by *gates*."""
    qubits: set[int] = set()
    for gate in gates:
        qubits.update(gate.qubits)
    return tuple(sorted(qubits))


def fused_unitary(gates: Sequence[Gate], qubits: Sequence[int] | None = None) -> tuple[np.ndarray, tuple[int, ...]]:
    """Compute the fused unitary of *gates* over their combined qubit set.

    Parameters
    ----------
    gates:
        Gate sequence, applied left-to-right (``gates[0]`` first).
    qubits:
        Optional explicit qubit ordering for the fused matrix; defaults to
        the sorted union of the gates' qubits.

    Returns
    -------
    (matrix, qubits):
        The little-endian fused unitary and the qubit tuple it acts on.
    """
    if qubits is None:
        qubits = kernel_qubits(gates)
    qubits = tuple(qubits)
    dim = 1 << len(qubits)
    fused = np.eye(dim, dtype=np.complex128)
    for gate in gates:
        g = expand_matrix(gate.matrix(), gate.qubits, qubits)
        fused = g @ fused
    return fused, qubits


def apply_gate_sequence(state: np.ndarray, gates: Sequence[Gate]) -> np.ndarray:
    """Apply *gates* one by one to a flat state vector (no fusion)."""
    for gate in gates:
        state = apply_matrix(state, gate.matrix(), gate.qubits)
    return state

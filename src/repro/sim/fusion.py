"""Kernel fusion: build the fused unitary of a group of gates.

A *fusion kernel* (Section VI-B of the paper) executes a group of gates as
a single matrix: the product of all gate matrices embedded into the space
of the kernel's qubit set.

The fused matrix is built by applying each gate to the columns of a
``2^m × 2^m`` identity, viewed as a state on ``2m`` qubits whose high bits
are the matrix rows.  Each gate therefore costs ``O(2^m · 4^k)`` through
the specialized kernels of :mod:`repro.sim.apply` instead of the
``O(8^m)`` dense matmul per gate (``expand_matrix`` + ``@``) the seed
implementation paid, and the two work buffers are the only allocations.

:func:`fused_unitary_cached` memoizes the result keyed by the gate tuple
(kernel identity), so a kernel that is applied repeatedly — every stage of
every shard in the offload executor — pays for fusion once.  The memo is
an explicit bounded LRU (:class:`FusionCache`, replacing an opaque
``functools.lru_cache`` of the same default bound): long-running sweep
services can now watch its hit/miss/eviction counters (surfaced through
:class:`repro.session.SessionStats`) and resize or flush it at runtime
(:func:`configure_fusion_cache`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from ..circuits.gates import Gate
from .apply import apply_gate_buffered, tracked_empty

__all__ = [
    "FusionCache",
    "fused_unitary",
    "fused_unitary_cached",
    "fusion_cache_stats",
    "configure_fusion_cache",
    "kernel_qubits",
    "apply_gate_sequence",
]


def kernel_qubits(gates: Iterable[Gate]) -> tuple[int, ...]:
    """The sorted union of qubits touched by *gates*."""
    qubits: set[int] = set()
    for gate in gates:
        qubits.update(gate.qubits)
    return tuple(sorted(qubits))


def fused_unitary(
    gates: Sequence[Gate], qubits: Sequence[int] | None = None
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Compute the fused unitary of *gates* over their combined qubit set.

    Parameters
    ----------
    gates:
        Gate sequence, applied left-to-right (``gates[0]`` first).
    qubits:
        Optional explicit qubit ordering for the fused matrix; defaults to
        the sorted union of the gates' qubits.

    Returns
    -------
    (matrix, qubits):
        The little-endian fused unitary and the qubit tuple it acts on.
    """
    if qubits is None:
        qubits = kernel_qubits(gates)
    qubits = tuple(qubits)
    m = len(qubits)
    dim = 1 << m
    # Flat view of the identity as a state on 2m qubits: flat index bit j
    # (j < m) is matrix-column bit j, bit m+j is matrix-row bit j.  A gate
    # left-multiplying the fused matrix acts on the row bits.
    buf = np.eye(dim, dtype=np.complex128).reshape(-1)
    scratch = tracked_empty(dim * dim)
    pos = {q: i for i, q in enumerate(qubits)}
    for gate in gates:
        row_qubits = [m + pos[q] for q in gate.qubits]
        buf, scratch = apply_gate_buffered(buf, scratch, gate.matrix(), row_qubits)
    return buf.reshape(dim, dim), qubits


class FusionCache:
    """Bounded, thread-safe LRU cache for fused kernel unitaries.

    The ``functools.lru_cache`` it replaces was bounded too, but opaque:
    this cache counts hits, misses and evictions so services can watch
    steady-state behaviour (:func:`fusion_cache_stats` /
    :class:`repro.session.SessionStats`), and its bound is adjustable at
    runtime (:func:`configure_fusion_cache`) — a sweep service whose
    working set outgrows the default no longer silently thrashes.  A lock
    guards the bookkeeping: the parallel shard runtime's workers share
    this cache.  Fusion itself runs outside the lock — two threads racing
    on the same key at worst both build the matrix and one result wins.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")  # lint: config-error
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple[np.ndarray, tuple[int, ...]]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> tuple[np.ndarray, tuple[int, ...]] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: tuple, value: tuple[np.ndarray, tuple[int, ...]]) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            # A while-loop, not a single pop: after configure_fusion_cache
            # shrinks maxsize, the cache must actually drain below its old
            # high-water mark as new kernels arrive.
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


_FUSION_CACHE = FusionCache(maxsize=1024)


def fusion_cache_stats() -> dict:
    """Counters of the process-wide fused-unitary cache (hits, misses,
    evictions, size, maxsize)."""
    return _FUSION_CACHE.stats()


def configure_fusion_cache(maxsize: int | None = None, clear: bool = False) -> None:
    """Resize (``maxsize``) and/or ``clear`` the process-wide fusion cache.

    Shrinking takes effect lazily: existing entries beyond the new bound
    are evicted as new kernels arrive.
    """
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")  # lint: config-error
        _FUSION_CACHE.maxsize = maxsize
    if clear:
        _FUSION_CACHE.clear()


def fused_unitary_cached(
    gates: Sequence[Gate], qubits: Sequence[int] | None = None
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Memoized :func:`fused_unitary` keyed by kernel identity.

    The returned matrix is a shared read-only instance; because the object
    is stable across calls, the dispatch analysis in :mod:`repro.sim.apply`
    is also computed only once per kernel.  Backed by the bounded
    :class:`FusionCache` (see :func:`configure_fusion_cache`).
    """
    key = (tuple(gates), None if qubits is None else tuple(qubits))
    hit = _FUSION_CACHE.lookup(key)
    if hit is not None:
        return hit
    matrix, out_qubits = fused_unitary(gates, qubits)
    matrix.setflags(write=False)
    value = (matrix, out_qubits)
    _FUSION_CACHE.store(key, value)
    return value


def apply_gate_sequence(state: np.ndarray, gates: Sequence[Gate]) -> np.ndarray:
    """Apply *gates* in order to a flat state vector (no fusion).

    The input array is not modified; the returned array is freshly
    allocated.  Internally the gates ping-pong between two buffers, so the
    whole sequence costs O(1) state-sized allocations.
    """
    buf = tracked_empty(state.size)
    np.copyto(buf, state)
    scratch = tracked_empty(state.size)
    for gate in gates:
        buf, scratch = apply_gate_buffered(buf, scratch, gate.matrix(), gate.qubits)
    return buf

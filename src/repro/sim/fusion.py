"""Kernel fusion: build the fused unitary of a group of gates.

A *fusion kernel* (Section VI-B of the paper) executes a group of gates as
a single matrix: the product of all gate matrices embedded into the space
of the kernel's qubit set.

The fused matrix is built by applying each gate to the columns of a
``2^m × 2^m`` identity, viewed as a state on ``2m`` qubits whose high bits
are the matrix rows.  Each gate therefore costs ``O(2^m · 4^k)`` through
the specialized kernels of :mod:`repro.sim.apply` instead of the
``O(8^m)`` dense matmul per gate (``expand_matrix`` + ``@``) the seed
implementation paid, and the two work buffers are the only allocations.

:func:`fused_unitary_cached` memoizes the result keyed by the gate tuple
(kernel identity), so a kernel that is applied repeatedly — every stage of
every shard in the offload executor — pays for fusion once.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from ..circuits.gates import Gate
from .apply import apply_gate_buffered, tracked_empty

__all__ = [
    "fused_unitary",
    "fused_unitary_cached",
    "kernel_qubits",
    "apply_gate_sequence",
]


def kernel_qubits(gates: Iterable[Gate]) -> tuple[int, ...]:
    """The sorted union of qubits touched by *gates*."""
    qubits: set[int] = set()
    for gate in gates:
        qubits.update(gate.qubits)
    return tuple(sorted(qubits))


def fused_unitary(
    gates: Sequence[Gate], qubits: Sequence[int] | None = None
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Compute the fused unitary of *gates* over their combined qubit set.

    Parameters
    ----------
    gates:
        Gate sequence, applied left-to-right (``gates[0]`` first).
    qubits:
        Optional explicit qubit ordering for the fused matrix; defaults to
        the sorted union of the gates' qubits.

    Returns
    -------
    (matrix, qubits):
        The little-endian fused unitary and the qubit tuple it acts on.
    """
    if qubits is None:
        qubits = kernel_qubits(gates)
    qubits = tuple(qubits)
    m = len(qubits)
    dim = 1 << m
    # Flat view of the identity as a state on 2m qubits: flat index bit j
    # (j < m) is matrix-column bit j, bit m+j is matrix-row bit j.  A gate
    # left-multiplying the fused matrix acts on the row bits.
    buf = np.eye(dim, dtype=np.complex128).reshape(-1)
    scratch = tracked_empty(dim * dim)
    pos = {q: i for i, q in enumerate(qubits)}
    for gate in gates:
        row_qubits = [m + pos[q] for q in gate.qubits]
        buf, scratch = apply_gate_buffered(buf, scratch, gate.matrix(), row_qubits)
    return buf.reshape(dim, dim), qubits


@lru_cache(maxsize=1024)
def _fused_cached(
    gates: tuple[Gate, ...], qubits: tuple[int, ...] | None
) -> tuple[np.ndarray, tuple[int, ...]]:
    matrix, out_qubits = fused_unitary(gates, qubits)
    matrix.setflags(write=False)
    return matrix, out_qubits


def fused_unitary_cached(
    gates: Sequence[Gate], qubits: Sequence[int] | None = None
) -> tuple[np.ndarray, tuple[int, ...]]:
    """Memoized :func:`fused_unitary` keyed by kernel identity.

    The returned matrix is a shared read-only instance; because the object
    is stable across calls, the dispatch analysis in :mod:`repro.sim.apply`
    is also computed only once per kernel.
    """
    return _fused_cached(tuple(gates), None if qubits is None else tuple(qubits))


def apply_gate_sequence(state: np.ndarray, gates: Sequence[Gate]) -> np.ndarray:
    """Apply *gates* in order to a flat state vector (no fusion).

    The input array is not modified; the returned array is freshly
    allocated.  Internally the gates ping-pong between two buffers, so the
    whole sequence costs O(1) state-sized allocations.
    """
    buf = tracked_empty(state.size)
    np.copyto(buf, state)
    scratch = tracked_empty(state.size)
    for gate in gates:
        buf, scratch = apply_gate_buffered(buf, scratch, gate.matrix(), gate.qubits)
    return buf

"""Low-level zero-copy gate application on dense state vectors.

The routines in this module are the computational core of the functional
simulator.  Every gate is dispatched to the cheapest kernel its matrix
structure allows:

``diagonal``
    Elementwise multiply — one pass over the state, no data movement.
``permutation``
    The matrix has exactly one non-zero per row/column (X, Y, CX, SWAP,
    CCX, ...).  Applied as slice copies: in place only the moved slices
    are touched (a CX touches half the state, never the control-0 half).
``controlled``
    Identity except on the subspace where every control bit is 1 (CH,
    CRX, CRY, CU, ...).  The reduced target unitary is applied on the
    controlled subspace only — a 2× flop/byte win per control qubit.
``dense`` (k ≤ 2)
    Slice-pair update via a single ``einsum`` pass writing straight into
    the output buffer — no intermediate copies.
``big`` (k ≥ 3)
    Wide fused matrices.  When the qubit tuple is single-GEMM plannable
    (all qubits in a low or high index window, or a contiguous run) the
    update runs as one streaming BLAS ``matmul`` exactly like the 1q/2q
    dense path; only genuinely scattered wide tuples fall back to the
    original ``tensordot`` contraction.

Buffer contract
---------------
All application functions take an optional ``out`` buffer:

* ``out is None`` — a freshly allocated array is returned and ``state``
  is **never** modified (pure).
* ``out`` is a distinct array of the same size — the result is written
  into ``out`` and ``out`` is returned; ``state`` is not modified.
  ``out`` must not overlap ``state`` (other than being the same array).
* ``out is state`` — true in-place update; ``state`` is returned.

:func:`apply_gate_buffered` wraps this contract into the ping-pong idiom
used by the executor: structured gates (diagonal / permutation /
controlled) are applied in place, dense gates write into the scratch
buffer and the roles swap.  A full circuit therefore runs with O(1)
state-sized allocations.

Small temporaries (half-state slices used by in-place updates) come from
a per-thread scratch pool that is reused across calls, so worker threads
of the parallel shard runtime never share mutable temporaries (the
dispatch caches hold immutable values and tolerate benign races).  Every
buffer the engine allocates is recorded in an allocation log so tests can
regression-check allocation counts.

Conventions
-----------
* Amplitude index ``i`` encodes qubit ``q`` in bit ``q`` (little-endian):
  qubit 0 is the least-significant bit.
* When the state of ``n`` qubits is reshaped to shape ``(2,)*n`` in C order,
  qubit ``q`` corresponds to tensor axis ``n - 1 - q``.
* Gate matrices are little-endian over their ``qubits`` tuple: matrix index
  bit ``k`` corresponds to ``qubits[k]``.
* Matrices passed to the engine must not be mutated afterwards: dispatch
  analysis is memoized per matrix object (gate matrices are cached
  read-only instances, so this holds throughout the package).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "apply_matrix",
    "apply_diagonal",
    "apply_matrix_reference",
    "apply_gate_buffered",
    "apply_permutation_x",
    "qubit_axis",
    "expand_matrix",
    "analyze_matrix",
    "run_dense_plan",
    "MatrixInfo",
    "tracked_empty",
    "reset_allocation_log",
    "allocation_log",
    "clear_scratch",
]


def qubit_axis(num_qubits: int, qubit: int) -> int:
    """Tensor axis corresponding to *qubit* for a C-ordered ``(2,)*n`` tensor."""
    return num_qubits - 1 - qubit


# ---------------------------------------------------------------------------
# Allocation tracking and the scratch pool
# ---------------------------------------------------------------------------

#: Sizes (element counts) of every buffer the engine has allocated since the
#: last :func:`reset_allocation_log`.  Scratch-pool hits do not allocate.
_ALLOCATION_LOG: list[int] = []

#: Reusable temporaries keyed per thread by ``(size, slot)``.  Slot 0 holds
#: snapshot buffers, slot 1 holds multiply-accumulate temporaries; the two
#: never alias each other.  The pool is thread-local so concurrent shard
#: workers each own their temporaries (pool threads are long-lived, so the
#: per-thread buffers are reused across calls exactly like before).
_SCRATCH_TLS = threading.local()


def tracked_empty(size: int) -> np.ndarray:
    """Allocate a flat complex128 buffer, recording it in the allocation log."""
    _ALLOCATION_LOG.append(int(size))
    return np.empty(int(size), dtype=np.complex128)


def reset_allocation_log() -> None:
    """Clear the engine allocation log (see :func:`allocation_log`)."""
    _ALLOCATION_LOG.clear()


def allocation_log() -> list[int]:
    """Element counts of engine allocations since the last reset."""
    return list(_ALLOCATION_LOG)


def clear_scratch() -> None:
    """Drop the calling thread's pooled scratch buffers (frees memory,
    forces re-allocation)."""
    _SCRATCH_TLS.pool = {}


def _scratch(size: int, slot: int = 0) -> np.ndarray:
    pool: dict[tuple[int, int], np.ndarray] | None = getattr(
        _SCRATCH_TLS, "pool", None
    )
    if pool is None:
        pool = _SCRATCH_TLS.pool = {}
    key = (size, slot)
    buf = pool.get(key)
    if buf is None:
        buf = tracked_empty(size)
        pool[key] = buf
    return buf


# ---------------------------------------------------------------------------
# Matrix structure analysis (memoized per matrix object)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixInfo:
    """Dispatch classification of a gate matrix.

    ``kind`` is one of ``"diagonal"``, ``"permutation"``, ``"controlled"``,
    ``"dense"`` (k ≤ 2) or ``"big"`` (tensordot fallback).  For
    ``controlled``, ``controls``/``targets`` are bit positions within the
    gate's little-endian index and ``reduced_info`` classifies the target
    block (never itself ``controlled``: control detection is maximal).
    """

    kind: str
    k: int
    diagonal: np.ndarray | None = None
    perm: tuple[int, ...] | None = None
    phases: np.ndarray | None = None
    controls: tuple[int, ...] = ()
    targets: tuple[int, ...] = ()
    reduced_matrix: np.ndarray | None = None
    reduced_info: "MatrixInfo | None" = None


# Shared across threads: entries are immutable and CPython dict get/set are
# atomic, so concurrent workers at worst recompute an entry.
_ANALYSIS_CACHE: dict[int, tuple[np.ndarray, MatrixInfo]] = {}
_ANALYSIS_CACHE_MAX = 4096


def analyze_matrix(matrix: np.ndarray) -> MatrixInfo:
    """Classify *matrix* for dispatch.  Memoized by matrix object identity."""
    key = id(matrix)
    hit = _ANALYSIS_CACHE.get(key)
    if hit is not None and hit[0] is matrix:
        return hit[1]
    info = _analyze_impl(matrix)
    if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_MAX:
        _ANALYSIS_CACHE.clear()
    _ANALYSIS_CACHE[key] = (matrix, info)
    return info


def _analyze_impl(matrix: np.ndarray) -> MatrixInfo:
    dim = matrix.shape[0]
    k = dim.bit_length() - 1

    # Structure detection is exact (== 0), not tolerance-based: library gate
    # matrices have exact zeros, and a numerically-noisy fused matrix must
    # fall through to the dense paths to stay correct.
    diag = np.diag(matrix)
    if np.count_nonzero(matrix) == np.count_nonzero(diag) and np.array_equal(
        np.diag(diag), matrix
    ):
        d = np.ascontiguousarray(diag)
        return MatrixInfo(kind="diagonal", k=k, diagonal=d)

    if np.all(np.count_nonzero(matrix, axis=0) == 1) and np.all(
        np.count_nonzero(matrix, axis=1) == 1
    ):
        cols = np.arange(dim)
        rows = np.argmax(matrix != 0, axis=0)
        phases = np.ascontiguousarray(matrix[rows, cols])
        return MatrixInfo(
            kind="permutation", k=k, perm=tuple(int(r) for r in rows), phases=phases
        )

    if k >= 2:
        eye = np.eye(dim, dtype=matrix.dtype)
        controls = []
        for p in range(k):
            zero = (np.arange(dim) >> p) & 1 == 0
            if np.array_equal(matrix[zero], eye[zero]) and np.array_equal(
                matrix[:, zero], eye[:, zero]
            ):
                controls.append(p)
        if controls and len(controls) < k:
            targets = tuple(p for p in range(k) if p not in controls)
            all_ones = np.all(
                [((np.arange(dim) >> p) & 1).astype(bool) for p in controls], axis=0
            )
            sel = np.flatnonzero(all_ones)
            reduced = np.ascontiguousarray(matrix[np.ix_(sel, sel)])
            reduced_info = _analyze_impl(reduced)
            if reduced_info.kind in ("diagonal", "permutation", "dense"):
                return MatrixInfo(
                    kind="controlled",
                    k=k,
                    controls=tuple(controls),
                    targets=targets,
                    reduced_matrix=reduced,
                    reduced_info=reduced_info,
                )

    if k <= 2:
        return MatrixInfo(kind="dense", k=k)
    return MatrixInfo(kind="big", k=k)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _validate(state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]) -> int:
    k = len(qubits)
    n = int(state.size).bit_length() - 1
    if state.size != 1 << n:
        raise ValueError("state length is not a power of two")  # lint: config-error
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError(f"matrix shape {matrix.shape} does not match {k} qubits")  # lint: config-error
    if any(not 0 <= q < n for q in qubits):
        raise ValueError(f"qubit indices {qubits} out of range for {n} qubits")  # lint: config-error
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits")  # lint: config-error
    return n


def _basis_views(
    tensor: np.ndarray,
    n: int,
    qubits: Sequence[int],
    fixed: Sequence[tuple[int, int]] = (),
    lead: int = 0,
) -> list[np.ndarray]:
    """The ``2^k`` sub-views of *tensor* indexed by the basis of *qubits*.

    ``fixed`` pins additional ``(axis, bit)`` pairs (used to restrict to a
    controlled subspace); the axes in ``fixed`` must already include the
    ``lead`` offset.  ``lead`` counts extra leading axes (a batch dimension)
    kept whole in every view.  View ``b`` fixes qubit ``qubits[j]`` to bit
    ``j`` of ``b``.
    """
    axes = [lead + qubit_axis(n, q) for q in qubits]
    # Trailing dummy axis so a fully-indexed result is still a (1,)-shaped
    # writable view rather than a 0-d scalar copy.
    tensor = tensor.reshape(tensor.shape + (1,))
    base: list = [slice(None)] * (lead + n + 1)
    for ax, bit in fixed:
        base[ax] = bit
    views = []
    for b in range(1 << len(qubits)):
        idx = list(base)
        for j, ax in enumerate(axes):
            idx[ax] = (b >> j) & 1
        views.append(tensor[tuple(idx)])
    return views


def _diag_broadcast(diagonal: np.ndarray, n: int, qubits: Sequence[int]) -> np.ndarray:
    """Reshape ``2^k`` diagonal entries to broadcast over the state tensor."""
    k = len(qubits)
    diag_tensor = diagonal.reshape((2,) * k)
    # diag index bit k-1 (first axis) is qubits[k-1]; align to state axes.
    src = list(range(k))
    dst_axes = [qubit_axis(n, q) for q in reversed(qubits)]
    order = np.argsort(dst_axes)
    diag_tensor = np.transpose(diag_tensor, axes=[src[i] for i in order])
    full_shape = [1] * n
    for axis in sorted(dst_axes):
        full_shape[axis] = 2
    return diag_tensor.reshape(full_shape)


# ---------------------------------------------------------------------------
# Specialized kernels
# ---------------------------------------------------------------------------


def _dense_accumulate(
    in_views: list[np.ndarray],
    out_views: list[np.ndarray],
    matrix: np.ndarray,
    tmp: np.ndarray,
) -> None:
    """``out_views[r] = Σ_c matrix[r, c] · in_views[c]`` with zero-skipping.

    ``out_views`` must not alias ``in_views``; ``tmp`` is a work buffer of
    the common view shape.
    """
    d = len(in_views)
    for r in range(d):
        ov = out_views[r]
        started = False
        for c in range(d):
            coef = matrix[r, c]
            if coef == 0:
                continue
            if not started:
                np.multiply(in_views[c], coef, out=ov)
                started = True
            else:
                np.multiply(in_views[c], coef, out=tmp)
                ov += tmp
        if not started:
            ov[...] = 0


def _dense_views_inplace(
    views: list[np.ndarray],
    matrix: np.ndarray,
    snap: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> None:
    """In-place dense update of basis *views* via a scratch snapshot.

    ``snap`` (``d · view.size`` elements) and ``tmp`` (``view.size``) default
    to the per-thread scratch pool; compiled programs pass their own
    preallocated workspace buffers instead.
    """
    d = len(views)
    vsize = views[0].size
    vshape = views[0].shape
    if snap is None:
        snap = _scratch(d * vsize, slot=0)
    snap_views = [snap[c * vsize : (c + 1) * vsize].reshape(vshape) for c in range(d)]
    for c in range(d):
        np.copyto(snap_views[c], views[c])
    if tmp is None:
        tmp = _scratch(vsize, slot=1)
    _dense_accumulate(snap_views, views, matrix, tmp.reshape(vshape))


def _permutation_to_out(
    in_views: list[np.ndarray],
    out_views: list[np.ndarray],
    perm: Sequence[int],
    phases: np.ndarray,
) -> None:
    for c, r in enumerate(perm):
        if phases[c] == 1:
            np.copyto(out_views[r], in_views[c])
        else:
            np.multiply(in_views[c], phases[c], out=out_views[r])


def _permutation_inplace(
    views: list[np.ndarray],
    perm: Sequence[int],
    phases: np.ndarray,
    tmp: np.ndarray | None = None,
) -> None:
    """Apply a phased permutation cycle-by-cycle; fixed points are untouched
    (or phase-scaled), so e.g. an in-place CX only moves half the state.
    ``tmp`` (one view's worth of elements) defaults to the per-thread
    scratch pool."""
    d = len(views)
    visited = [False] * d
    if tmp is None:
        tmp = _scratch(views[0].size, slot=1)
    tmp = tmp.reshape(views[0].shape)
    for start in range(d):
        if visited[start]:
            continue
        cycle = [start]
        visited[start] = True
        nxt = perm[start]
        while nxt != start:
            cycle.append(nxt)
            visited[nxt] = True
            nxt = perm[nxt]
        if len(cycle) == 1:
            if phases[start] != 1:
                views[start] *= phases[start]
            continue
        # Amplitudes flow cycle[i] -> cycle[i+1]; walk backwards so each
        # source is still unmodified when read.
        last = cycle[-1]
        np.copyto(tmp, views[last])
        for i in range(len(cycle) - 1, 0, -1):
            src, dst = cycle[i - 1], cycle[i]
            if phases[src] == 1:
                np.copyto(views[dst], views[src])
            else:
                np.multiply(views[src], phases[src], out=views[dst])
        if phases[last] == 1:
            np.copyto(views[cycle[0]], tmp)
        else:
            np.multiply(tmp, phases[last], out=views[cycle[0]])


#: Below this qubit index, a gate is applied by a single right-multiply gemm
#: with the matrix expanded over all lower index bits (the expanded matrix
#: stays ≤ 64×64); at or above it, the stacked-matmul post dimension is at
#: least 2**_GEMM_EDGE and batched matmul runs at streaming speed.
_GEMM_EDGE = 5

_DENSE_PLAN_CACHE: dict[tuple, tuple] = {}
_DENSE_PLAN_CACHE_MAX = 4096

#: Widest contiguous run the stacked wide-gemm plan accepts.  Beyond it the
#: batched matmul's short post dimension starves BLAS (measured: 1.35x over
#: tensordot at k=8, 0.86x at k=10) and the tensordot fallback wins.
_WIDE_STACKED_MAX = 8

#: Widest gate for which a one-spare-bit (2x flop inflation) low/high
#: window is accepted: the doubled gemm only beats tensordot's transpose
#: overhead while the expanded matrix is small (≤ 2^6 = 64 columns).
_WIDE_HOLE_MAX = 6


def _dense_plan(matrix: np.ndarray, n: int, qubits: tuple[int, ...]) -> tuple:
    """Choose and precompute the gemm strategy for a dense 1q/2q gate.

    All strategies perform the update as one or a few BLAS ``matmul`` calls
    writing directly into the output buffer — no transpose copies of the
    state.  Plans (including the prepared small matrices) are memoized per
    ``(matrix, n, qubits)``; the matrix object is kept referenced so its id
    stays valid.
    """
    key = (id(matrix), n, qubits)
    hit = _DENSE_PLAN_CACHE.get(key)
    if hit is not None and hit[0] is matrix:
        return hit[1]
    plan = _dense_plan_impl(matrix, n, qubits)
    if len(_DENSE_PLAN_CACHE) >= _DENSE_PLAN_CACHE_MAX:
        _DENSE_PLAN_CACHE.clear()
    _DENSE_PLAN_CACHE[key] = (matrix, plan)
    return plan


def _reorder_matrix_bits(matrix: np.ndarray, qubits: tuple[int, ...]) -> np.ndarray:
    """Permute *matrix* index bits so bit ``p`` maps to ``sorted(qubits)[p]``.

    The engine's little-endian convention ties matrix index bit ``j`` to
    ``qubits[j]``; the stacked wide-gemm plan needs the bits in ascending
    qubit order so the contiguous qubit run merges into one tensor axis.
    """
    if list(qubits) == sorted(qubits):
        return matrix
    k = len(qubits)
    pos = {q: p for p, q in enumerate(sorted(qubits))}
    ar = np.arange(1 << k)
    idx = np.zeros(1 << k, dtype=np.int64)
    for j, q in enumerate(qubits):
        idx |= ((ar >> pos[q]) & 1) << j
    return matrix[np.ix_(idx, idx)]


def _dense_plan_impl(matrix: np.ndarray, n: int, qubits: tuple[int, ...]) -> tuple:
    if len(qubits) >= 3:
        # Wide (fused-kernel) matrices: contiguous runs plan inflation-free
        # (one exact gemm at a register edge, stacked in the middle); only
        # non-contiguous tuples fall through to the one-spare-bit windows
        # (2x flop inflation, gated by _WIDE_HOLE_MAX in the plannable
        # check).  Ordering mirrors _single_gemm_plannable.
        k = len(qubits)
        qs = sorted(qubits)
        q0, q1 = qs[0], qs[-1]
        if q1 - q0 + 1 == k:
            if q0 == 0:
                b = expand_matrix(matrix, qubits, range(k))
                return ("gemm_right", np.ascontiguousarray(b.T), 1 << k)
            if q1 == n - 1:
                b = expand_matrix(matrix, [q - q0 for q in qubits], range(k))
                return ("gemm_left", np.ascontiguousarray(b), 1 << k)
            # Mid-register run: the k qubits merge into one length-2^k axis.
            m = np.ascontiguousarray(_reorder_matrix_bits(matrix, tuple(qubits)))
            return ("stacked", m, 1 << (n - q1 - 1), 1 << k, 1 << q0)
        if q1 + 1 <= k + 1:
            b = expand_matrix(matrix, qubits, range(q1 + 1))
            return ("gemm_right", np.ascontiguousarray(b.T), 1 << (q1 + 1))
        b = expand_matrix(matrix, [q - q0 for q in qubits], range(n - q0))
        return ("gemm_left", np.ascontiguousarray(b), 1 << (n - q0))

    if len(qubits) == 1:
        q = qubits[0]
        if q < _GEMM_EDGE:
            # out_row = state_row @ B^T with B over index bits 0..q.
            b = expand_matrix(matrix, [q], range(q + 1))
            return ("gemm_right", np.ascontiguousarray(b.T), 1 << (q + 1))
        # Batched (2,2) @ (2, post) with post = 2^q.
        m = np.ascontiguousarray(matrix)
        return ("stacked", m, 1 << (n - q - 1), 2, 1 << q)

    q0, q1 = sorted(qubits)
    if q1 < _GEMM_EDGE + 1:
        b = expand_matrix(matrix, qubits, range(q1 + 1))
        return ("gemm_right", np.ascontiguousarray(b.T), 1 << (q1 + 1))
    if q0 >= n - (_GEMM_EDGE + 1):
        # out_col = B @ state_col with B over index bits q0..n-1.
        b = expand_matrix(matrix, [q - q0 for q in qubits], range(n - q0))
        return ("gemm_left", np.ascontiguousarray(b), 1 << (n - q0))
    if q1 == q0 + 1:
        # Adjacent bits merge into one length-4 axis; reorder the matrix so
        # its high index bit is the high qubit.
        m = matrix
        if qubits[0] == q1:
            m = matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        return ("stacked", np.ascontiguousarray(m), 1 << (n - q1 - 1), 4, 1 << q0)
    # Non-adjacent: block over the high qubit (outer axis, so each block is
    # a reshapeable view) and contract the low qubit inside each block.
    g = matrix.reshape(2, 2, 2, 2)  # (out_b1, out_b0, in_b1, in_b0)
    if qubits[1] == q1:
        blocks = [[g[a, :, c, :] for c in (0, 1)] for a in (0, 1)]
    else:
        blocks = [[g[:, a, :, c] for c in (0, 1)] for a in (0, 1)]
    pre = 1 << (n - q1 - 1)
    if q0 >= _GEMM_EDGE:
        mats = [[np.ascontiguousarray(blocks[a][c]) for c in (0, 1)] for a in (0, 1)]
        return ("split_stacked", mats, pre, 1 << (q1 - q0 - 1), 1 << q0)
    cols = 1 << (q0 + 1)
    bts = [
        [
            np.ascontiguousarray(expand_matrix(blocks[a][c], [q0], range(q0 + 1)).T)
            for c in (0, 1)
        ]
        for a in (0, 1)
    ]
    return ("split_gemm", bts, pre, (1 << q1) // cols, cols)


def run_dense_plan(
    plan: tuple, state: np.ndarray, out: np.ndarray, tmp: np.ndarray | None = None
) -> None:
    """Execute a precomputed dense gemm *plan*, writing straight into *out*.

    ``tmp`` (split plans only) is a work buffer of ``state.size // 2``
    elements; when omitted it comes from the per-thread scratch pool.  This
    is the run-time half of the dense path: compiled programs store the
    plan tuple per op and call this with their preallocated workspace.
    """
    kind = plan[0]
    if kind == "gemm_right":
        _, bt, cols = plan
        np.matmul(state.reshape(-1, cols), bt, out=out.reshape(-1, cols))
    elif kind == "gemm_left":
        _, b, rows = plan
        np.matmul(b, state.reshape(rows, -1), out=out.reshape(rows, -1))
    elif kind == "stacked":
        _, m, pre, d, post = plan
        np.matmul(m, state.reshape(pre, d, post), out=out.reshape(pre, d, post))
    elif kind == "split_stacked":
        _, mats, pre, mid, post = plan
        src = state.reshape(pre, 2, mid, 2, post)
        dst = out.reshape(pre, 2, mid, 2, post)
        if tmp is None:
            tmp = _scratch(pre * mid * 2 * post, slot=1)
        tmp = tmp.reshape(pre, mid, 2, post)
        for a in (0, 1):
            dst_a = dst[:, a]
            np.matmul(mats[a][0], src[:, 0], out=dst_a)
            np.matmul(mats[a][1], src[:, 1], out=tmp)
            dst_a += tmp
    else:  # split_gemm
        _, bts, pre, mid, cols = plan
        src = state.reshape(pre, 2, mid, cols)
        dst = out.reshape(pre, 2, mid, cols)
        if tmp is None:
            tmp = _scratch(pre * mid * cols, slot=1)
        tmp = tmp.reshape(pre, mid, cols)
        for a in (0, 1):
            dst_a = dst[:, a]
            np.matmul(src[:, 0], bts[a][0], out=dst_a)
            np.matmul(src[:, 1], bts[a][1], out=tmp)
            dst_a += tmp


def _dense_small_to_out(
    state: np.ndarray,
    out: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    n: int,
) -> None:
    """Dense gemm update (1q/2q and plannable wide), writing into *out*."""
    run_dense_plan(_dense_plan(matrix, n, tuple(qubits)), state, out)


def _big_to_out(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    n: int,
    out: np.ndarray | None,
) -> np.ndarray:
    """Reference tensordot contraction (k ≥ 3 dense fallback)."""
    k = len(qubits)
    tensor = state.reshape((2,) * n)
    gate_tensor = np.ascontiguousarray(matrix).reshape((2,) * (2 * k))
    # Contract gate input axes with the state axes of the target qubits.
    # Matrix tensor axis order is (out_{k-1},...,out_0, in_{k-1},...,in_0):
    # the most-significant matrix bit comes first in C order.
    axes = [qubit_axis(n, q) for q in reversed(qubits)]
    # tensordot allocates its state-sized result (plus internal transpose
    # workspace); record it so the allocation log stays honest — the k >= 3
    # fallback is the one dispatch path that is not allocation-free.
    _ALLOCATION_LOG.append(int(state.size))
    result = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    result = np.moveaxis(result, range(k), axes)
    if out is None:
        return np.ascontiguousarray(result).reshape(-1)
    # tensordot produced a fresh array, so writing into out is safe even
    # when out is state.
    np.copyto(out.reshape(result.shape), result)
    return out


# ---------------------------------------------------------------------------
# Public application functions
# ---------------------------------------------------------------------------


def _single_gemm_plannable(qubits: Sequence[int], n: int) -> bool:
    """True when the dense gemm planner covers *qubits* with one matmul.

    1q gates always plan; 2q gates plan inside the measured position
    windows or when adjacent.  Wide (k ≥ 3) tuples plan when all qubits
    sit in a low/high window with at most one spare index bit (≤ 2x flop
    inflation) or form a contiguous run (no inflation); anything else
    falls back to the tensordot contraction.
    """
    k = len(qubits)
    if k == 1:
        return True
    qs = sorted(qubits)
    q0, q1 = qs[0], qs[-1]
    if k == 2:
        return q1 <= _GEMM_EDGE or q0 >= n - (_GEMM_EDGE + 1) or q1 == q0 + 1
    if q1 - q0 + 1 == k:
        # Contiguous: one inflation-free gemm.  Register-edge runs plan at
        # any width; mid-register runs only while the stacked matmul's post
        # dimension stays BLAS-friendly.
        return q0 == 0 or q1 == n - 1 or k <= _WIDE_STACKED_MAX
    # One spare index bit in a low/high window (2x flop inflation): only
    # worthwhile while the expanded matrix stays small.
    if k + 1 <= _WIDE_HOLE_MAX:
        return q1 + 1 <= k + 1 or q0 >= n - (k + 1)
    return False


def _effective_kind(info: MatrixInfo, qubits: Sequence[int], n: int) -> str:
    """Position-aware dispatch refinement (measured on 20-qubit states).

    The slice-based structured kernels operate on views whose contiguous
    runs have length ``2^min(qubits)``; for very low positions a streaming
    BLAS gemm beats them.  Permutation cycles tolerate short runs well
    (they are plain strided copies), so they reroute only at the very
    bottom; controlled subspace updates reroute whenever the dense planner
    has a single-gemm strategy for the position pair.  Wide (k ≥ 3) dense
    matrices reroute to the streaming gemm path whenever the planner covers
    their qubit tuple (see :func:`_single_gemm_plannable`).
    """
    if info.kind == "big":
        return "dense" if _single_gemm_plannable(qubits, n) else "big"
    if info.k > 2 or info.kind in ("diagonal", "dense"):
        return info.kind
    if info.kind == "permutation":
        if max(qubits) <= 2:
            return "dense"
        return info.kind
    # controlled
    if _single_gemm_plannable(qubits, n):
        return "dense"
    return info.kind


def _inplace_preferred(info: MatrixInfo, qubits: Sequence[int], n: int) -> bool:
    """Whether in-place application beats streaming into a second buffer."""
    return info.kind == "diagonal" or _effective_kind(info, qubits, n) in (
        "permutation",
        "controlled",
    )


def apply_matrix_reference(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply a unitary via the dense tensordot contraction, unconditionally.

    This is the seed implementation of :func:`apply_matrix`, kept as the
    correctness oracle for the specialized kernels and as the baseline the
    benchmarks measure speedups against.  Same ``out`` contract as
    :func:`apply_matrix`.
    """
    n = _validate(state, matrix, qubits)
    return _big_to_out(state, matrix, qubits, n, out)


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply a ``2^k × 2^k`` unitary to the given *qubits* of *state*.

    Parameters
    ----------
    state:
        Flat complex array of length ``2^n``.  Never modified unless
        ``out is state``.
    matrix:
        Little-endian unitary over *qubits*; must not be mutated later
        (dispatch analysis is memoized per matrix object).
    qubits:
        Target qubit indices; ``qubits[0]`` is the least-significant bit of
        the matrix index.
    out:
        Output buffer (see the module docstring for the full contract):
        ``None`` allocates, a distinct same-size array receives the result,
        and ``out is state`` updates in place.

    Returns
    -------
    numpy.ndarray
        The array holding the transformed state: ``out`` when provided,
        otherwise a new C-contiguous array.
    """
    n = _validate(state, matrix, qubits)
    if out is not None and out.size != state.size:
        raise ValueError(  # lint: config-error
            f"out has {out.size} amplitudes, expected {state.size}"
        )
    info = analyze_matrix(matrix)
    inplace = out is state
    kind = _effective_kind(info, qubits, n)

    if kind == "big" or (kind == "dense" and inplace):
        # In-place dense: snapshot the state into scratch, then stream back.
        if kind == "dense":
            snap = _scratch(state.size, slot=0)
            np.copyto(snap, state)
            _dense_small_to_out(snap, state, matrix, qubits, n)
            return state
        return _big_to_out(state, matrix, qubits, n, out)

    if out is None:
        out = tracked_empty(state.size)

    if kind == "dense":
        _dense_small_to_out(state, out, matrix, qubits, n)
        return out

    tensor = state.reshape((2,) * n)
    if kind == "diagonal":
        diag_b = _diag_broadcast(info.diagonal, n, qubits)
        if inplace:
            tensor *= diag_b
        else:
            np.multiply(tensor, diag_b, out=out.reshape(tensor.shape))
        return state if inplace else out

    if kind == "permutation":
        if inplace:
            views = _basis_views(tensor, n, qubits)
            _permutation_inplace(views, info.perm, info.phases)
            return state
        out_tensor = out.reshape(tensor.shape)
        in_views = _basis_views(tensor, n, qubits)
        out_views = _basis_views(out_tensor, n, qubits)
        _permutation_to_out(in_views, out_views, info.perm, info.phases)
        return out

    # Controlled: identity outside the all-controls-1 subspace.
    ctrl_axes = [qubit_axis(n, qubits[p]) for p in info.controls]
    fixed = [(ax, 1) for ax in ctrl_axes]
    target_qubits = [qubits[p] for p in info.targets]
    red = info.reduced_info
    if inplace:
        if (
            len(info.controls) == 1
            and len(info.targets) == 1
            and red.kind == "dense"
            and target_qubits[0] < qubits[info.controls[0]]
        ):
            _controlled_gather_gemm_inplace(
                state, n, qubits[info.controls[0]], target_qubits[0],
                info.reduced_matrix,
            )
            return state
        views = _basis_views(tensor, n, target_qubits, fixed)
        _apply_reduced_inplace(views, red, info.reduced_matrix)
        return state
    out_tensor = out.reshape(tensor.shape)
    # Copy the untouched complement (any control bit 0) slice by slice.
    c = len(ctrl_axes)
    for assign in range((1 << c) - 1):
        idx: list = [slice(None)] * n
        for j, ax in enumerate(ctrl_axes):
            idx[ax] = (assign >> j) & 1
        np.copyto(out_tensor[tuple(idx)], tensor[tuple(idx)])
    in_views = _basis_views(tensor, n, target_qubits, fixed)
    out_views = _basis_views(out_tensor, n, target_qubits, fixed)
    _apply_reduced_to_out(in_views, out_views, red, info.reduced_matrix)
    return out


def _controlled_gather_gemm_inplace(
    state: np.ndarray,
    n: int,
    control_qubit: int,
    target_qubit: int,
    reduced_matrix: np.ndarray,
    plan: tuple | None = None,
    compact: np.ndarray | None = None,
) -> None:
    """In-place controlled-1q update via gather + one streaming gemm.

    The control-1 subspace (a strided half-state view whose rows are the
    contiguous low ``2^control_qubit`` blocks) is compacted into scratch,
    then the target unitary is applied with a single batched matmul writing
    straight back into the strided view.  Requires ``target < control`` so
    the target bit lives inside the contiguous rows.

    *state* may carry a leading batch dimension (total size ``B · 2^n``):
    the batch folds into the row count unchanged.  ``plan``/``compact`` let
    compiled programs pass the precomputed gemm plan and a preallocated
    gather buffer (``state.size // 2`` elements).
    """
    post_c = 1 << control_qubit
    # pre_c for a single state; B·pre_c when state is a (B, 2^n) batch.
    rows = state.size // (2 * post_c)
    subspace = state.reshape(rows, 2, post_c)[:, 1, :]
    if compact is None:
        compact = _scratch(rows * post_c, slot=0)
    compact = compact[: rows * post_c].reshape(rows, post_c)
    np.copyto(compact, subspace)
    # Each compact row is a `control_qubit`-qubit sub-state with the target
    # at its original position; reuse the dense 1q gemm planner on it.
    if plan is None:
        plan = _dense_plan(reduced_matrix, control_qubit, (target_qubit,))
    if plan[0] == "gemm_right":
        _, bt, cols = plan
        shape = (rows, post_c // cols, cols)
        np.matmul(compact.reshape(shape), bt, out=subspace.reshape(shape))
    else:  # stacked
        _, m, pre_t, _, post_t = plan
        shape = (rows, pre_t, 2, post_t)
        np.matmul(m, compact.reshape(shape), out=subspace.reshape(shape))


def _apply_reduced_to_out(
    in_views: list[np.ndarray],
    out_views: list[np.ndarray],
    red: MatrixInfo,
    reduced_matrix: np.ndarray,
) -> None:
    if red.kind == "diagonal":
        for b, view in enumerate(in_views):
            np.multiply(view, red.diagonal[b], out=out_views[b])
    elif red.kind == "permutation":
        _permutation_to_out(in_views, out_views, red.perm, red.phases)
    else:
        tmp = _scratch(in_views[0].size, slot=1).reshape(in_views[0].shape)
        _dense_accumulate(in_views, out_views, reduced_matrix, tmp)


def _apply_reduced_inplace(
    views: list[np.ndarray], red: MatrixInfo, reduced_matrix: np.ndarray
) -> None:
    if red.kind == "diagonal":
        for b, view in enumerate(views):
            if red.diagonal[b] != 1:
                view *= red.diagonal[b]
    elif red.kind == "permutation":
        _permutation_inplace(views, red.perm, red.phases)
    else:
        _dense_views_inplace(views, reduced_matrix)


def apply_diagonal(
    state: np.ndarray,
    diagonal: np.ndarray,
    qubits: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply a diagonal gate given by its ``2^k`` diagonal entries.

    Diagonal gates multiply each amplitude by a phase that depends only on
    the bits of the target qubits — a single broadcasted elementwise
    multiply, no data movement.  Same ``out`` contract as
    :func:`apply_matrix`: pass ``out=state`` for the in-place update (the
    historical behaviour of this function), ``out=None`` for a pure call.
    """
    k = len(qubits)
    n = int(state.size).bit_length() - 1
    if state.size != 1 << n:
        raise ValueError("state length is not a power of two")  # lint: config-error
    if diagonal.size != 1 << k:
        raise ValueError("diagonal length does not match qubit count")  # lint: config-error
    tensor = state.reshape((2,) * n)
    diag_b = _diag_broadcast(diagonal, n, qubits)
    if out is state:
        tensor *= diag_b
        return state
    if out is None:
        out = tracked_empty(state.size)
    elif out.size != state.size:
        raise ValueError(f"out has {out.size} amplitudes, expected {state.size}")  # lint: config-error
    np.multiply(tensor, diag_b, out=out.reshape(tensor.shape))
    return out


def apply_gate_buffered(
    state: np.ndarray,
    scratch: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Ping-pong gate application: returns ``(new_state, new_scratch)``.

    Structured gates on high qubit positions run in place on *state*
    (touching only the amplitudes they move); everything else streams
    *state* into *scratch* and the buffers swap roles.  Callers must thread
    both returned arrays into the next call — after a swap the old
    ``state`` array holds stale data.
    """
    info = analyze_matrix(matrix)
    n = int(state.size).bit_length() - 1
    if _inplace_preferred(info, qubits, n):
        apply_matrix(state, matrix, qubits, out=state)
        return state, scratch
    apply_matrix(state, matrix, qubits, out=scratch)
    return scratch, state


def apply_permutation_x(state: np.ndarray, qubit: int) -> np.ndarray:
    """Apply an X (bit-flip) on *qubit* by swapping slices — returns a new array."""
    n = int(np.log2(state.size))
    tensor = state.reshape((2,) * n)
    axis = qubit_axis(n, qubit)
    return np.ascontiguousarray(np.flip(tensor, axis=axis)).reshape(-1)


def expand_matrix(
    matrix: np.ndarray, gate_qubits: Sequence[int], target_qubits: Sequence[int]
) -> np.ndarray:
    """Embed *matrix* (over *gate_qubits*) into the space of *target_qubits*.

    ``target_qubits`` must be a superset of ``gate_qubits``.  The returned
    matrix is little-endian over ``target_qubits`` and acts as the identity
    on the extra qubits.
    """
    target = list(target_qubits)
    missing = [q for q in gate_qubits if q not in target]
    if missing:
        raise ValueError(f"gate qubits {missing} not contained in target {target}")  # lint: config-error
    k = len(gate_qubits)
    m = len(target)
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError("matrix shape does not match gate qubits")  # lint: config-error

    # Positions of the gate qubits within the target ordering.
    pos = [target.index(q) for q in gate_qubits]
    dim = 1 << m
    out = np.zeros((dim, dim), dtype=np.complex128)

    other_pos = [p for p in range(m) if p not in pos]
    gate_dim = 1 << k
    # Index contribution of the gate bits and of every non-gate assignment;
    # one broadcasted fancy assignment places all 2^(m-k) diagonal blocks.
    row_idx = np.zeros(gate_dim, dtype=np.int64)
    for bit_k in range(k):
        row_idx |= (((np.arange(gate_dim) >> bit_k) & 1) << pos[bit_k]).astype(np.int64)
    rest_count = 1 << len(other_pos)
    rest_idx = np.zeros(rest_count, dtype=np.int64)
    for j, p in enumerate(other_pos):
        rest_idx |= (((np.arange(rest_count) >> j) & 1) << p).astype(np.int64)
    rows = rest_idx[:, None] + row_idx[None, :]
    out[rows[:, :, None], rows[:, None, :]] = matrix
    return out

"""Low-level vectorised gate application on dense state vectors.

The routines in this module are the computational core of the functional
simulator.  They follow the NumPy optimisation guidance for this project:
no Python-level loops over amplitudes, views instead of copies wherever the
semantics allow, and contiguous (C-ordered) access patterns obtained by
reshaping the state into a rank-``n`` tensor and contracting with
:func:`numpy.tensordot`.

Conventions
-----------
* Amplitude index ``i`` encodes qubit ``q`` in bit ``q`` (little-endian):
  qubit 0 is the least-significant bit.
* When the state of ``n`` qubits is reshaped to shape ``(2,)*n`` in C order,
  qubit ``q`` corresponds to tensor axis ``n - 1 - q``.
* Gate matrices are little-endian over their ``qubits`` tuple: matrix index
  bit ``k`` corresponds to ``qubits[k]``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "apply_matrix",
    "apply_diagonal",
    "apply_permutation_x",
    "qubit_axis",
    "expand_matrix",
]


def qubit_axis(num_qubits: int, qubit: int) -> int:
    """Tensor axis corresponding to *qubit* for a C-ordered ``(2,)*n`` tensor."""
    return num_qubits - 1 - qubit


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply a ``2^k × 2^k`` unitary to the given *qubits* of *state*.

    Parameters
    ----------
    state:
        Flat complex array of length ``2^n`` (not modified).
    matrix:
        Little-endian unitary over *qubits*.
    qubits:
        Target qubit indices; ``qubits[0]`` is the least-significant bit of
        the matrix index.
    out:
        Ignored (kept for API symmetry); a new array is always returned
        because :func:`numpy.tensordot` allocates its result.

    Returns
    -------
    numpy.ndarray
        The transformed state, flat, C-contiguous.
    """
    k = len(qubits)
    n = int(np.log2(state.size))
    if state.size != 1 << n:
        raise ValueError("state length is not a power of two")
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {k} qubits"
        )
    if any(not 0 <= q < n for q in qubits):
        raise ValueError(f"qubit indices {qubits} out of range for {n} qubits")
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits")

    tensor = state.reshape((2,) * n)
    gate_tensor = np.ascontiguousarray(matrix).reshape((2,) * (2 * k))
    # Contract gate input axes with the state axes of the target qubits.
    # Matrix tensor axis order is (out_{k-1},...,out_0, in_{k-1},...,in_0):
    # the most-significant matrix bit comes first in C order.
    axes = [qubit_axis(n, q) for q in reversed(qubits)]
    result = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), axes))
    # The gate's output axes are now the first k axes (in the same
    # most-significant-first order); move them back into place.
    result = np.moveaxis(result, range(k), axes)
    return np.ascontiguousarray(result).reshape(-1)


def apply_diagonal(
    state: np.ndarray, diagonal: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a diagonal gate given by its ``2^k`` diagonal entries in place.

    Diagonal gates multiply each amplitude by a phase that depends only on
    the bits of the target qubits, so they can be applied with a broadcasted
    elementwise multiply — no data movement.
    """
    k = len(qubits)
    n = int(np.log2(state.size))
    if diagonal.size != 1 << k:
        raise ValueError("diagonal length does not match qubit count")
    tensor = state.reshape((2,) * n)
    # Build a broadcastable phase tensor: shape 2 along each target axis,
    # 1 elsewhere.
    shape = [1] * n
    for q in qubits:
        shape[qubit_axis(n, q)] = 2
    diag_tensor = diagonal.reshape((2,) * k)
    # diag index bit k-1 (first axis) is qubits[k-1]; align to state axes.
    src = list(range(k))
    dst_axes = [qubit_axis(n, q) for q in reversed(qubits)]
    order = np.argsort(dst_axes)
    # Permute diag axes so they appear in increasing state-axis order, then
    # reshape with broadcasting 1s in between.
    diag_tensor = np.transpose(diag_tensor, axes=[src[i] for i in order])
    full_shape = [1] * n
    for axis in sorted(dst_axes):
        full_shape[axis] = 2
    tensor *= diag_tensor.reshape(full_shape)
    return state


def apply_permutation_x(state: np.ndarray, qubit: int) -> np.ndarray:
    """Apply an X (bit-flip) on *qubit* by swapping slices — returns a new view-copy."""
    n = int(np.log2(state.size))
    tensor = state.reshape((2,) * n)
    axis = qubit_axis(n, qubit)
    return np.ascontiguousarray(np.flip(tensor, axis=axis)).reshape(-1)


def expand_matrix(
    matrix: np.ndarray, gate_qubits: Sequence[int], target_qubits: Sequence[int]
) -> np.ndarray:
    """Embed *matrix* (over *gate_qubits*) into the space of *target_qubits*.

    ``target_qubits`` must be a superset of ``gate_qubits``.  The returned
    matrix is little-endian over ``target_qubits`` and acts as the identity
    on the extra qubits.  This is the primitive used by kernel fusion.
    """
    target = list(target_qubits)
    missing = [q for q in gate_qubits if q not in target]
    if missing:
        raise ValueError(f"gate qubits {missing} not contained in target {target}")
    k = len(gate_qubits)
    m = len(target)
    if matrix.shape != (1 << k, 1 << k):
        raise ValueError("matrix shape does not match gate qubits")

    # Positions of the gate qubits within the target ordering.
    pos = [target.index(q) for q in gate_qubits]
    dim = 1 << m
    out = np.zeros((dim, dim), dtype=np.complex128)

    other_pos = [p for p in range(m) if p not in pos]
    # Enumerate the 2^k × 2^k blocks: for every assignment of the
    # non-gate bits, place the gate matrix on the corresponding sub-indices.
    gate_dim = 1 << k
    # Precompute index contributions.
    row_idx = np.zeros(gate_dim, dtype=np.int64)
    for bit_k in range(k):
        mask = ((np.arange(gate_dim) >> bit_k) & 1).astype(np.int64)
        row_idx += mask << pos[bit_k]
    for rest in range(1 << len(other_pos)):
        base = 0
        for j, p in enumerate(other_pos):
            if (rest >> j) & 1:
                base |= 1 << p
        rows = row_idx + base
        out[np.ix_(rows, rows)] = matrix
    return out

"""Reference simulator.

The slowest, simplest possible Schrödinger-style simulator: apply every
gate of the circuit to the full state vector, one at a time, with no
partitioning, no fusion and no cleverness.  Every other execution path in
this repository (staged execution, kernel fusion, DRAM offloading, the
baseline simulator models) is validated against this implementation.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..errors import StateValidationError
from .statevector import StateVector

__all__ = ["simulate_reference"]


def simulate_reference(circuit: Circuit, initial_state: StateVector | None = None) -> StateVector:
    """Simulate *circuit* gate-by-gate and return the final state.

    Parameters
    ----------
    circuit:
        Input circuit.
    initial_state:
        Optional starting state; defaults to |0...0>.  The input state is
        not modified.
    """
    if initial_state is None:
        state = StateVector.zero_state(circuit.num_qubits)
    else:
        if initial_state.num_qubits != circuit.num_qubits:
            raise StateValidationError("initial state size does not match circuit")
        state = initial_state.copy()
    for gate in circuit:
        state.apply_gate(gate)
    return state

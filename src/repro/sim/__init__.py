"""Dense state-vector simulation substrate (NumPy backend)."""

from .apply import (
    apply_diagonal,
    apply_gate_buffered,
    apply_matrix,
    apply_matrix_reference,
    expand_matrix,
)
from .fusion import (
    apply_gate_sequence,
    fused_unitary,
    fused_unitary_cached,
    kernel_qubits,
)
from .reference import simulate_reference
from .statevector import StateVector

__all__ = [
    "StateVector",
    "apply_matrix",
    "apply_matrix_reference",
    "apply_diagonal",
    "apply_gate_buffered",
    "expand_matrix",
    "fused_unitary",
    "fused_unitary_cached",
    "kernel_qubits",
    "apply_gate_sequence",
    "simulate_reference",
]

"""Dense state-vector simulation substrate (NumPy backend)."""

from .apply import apply_diagonal, apply_matrix, expand_matrix
from .fusion import apply_gate_sequence, fused_unitary, kernel_qubits
from .reference import simulate_reference
from .statevector import StateVector

__all__ = [
    "StateVector",
    "apply_matrix",
    "apply_diagonal",
    "expand_matrix",
    "fused_unitary",
    "kernel_qubits",
    "apply_gate_sequence",
    "simulate_reference",
]

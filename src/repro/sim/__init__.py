"""Dense state-vector simulation substrate (NumPy backend)."""

from .apply import (
    apply_diagonal,
    apply_gate_buffered,
    apply_matrix,
    apply_matrix_reference,
    expand_matrix,
)
from .fusion import (
    FusionCache,
    apply_gate_sequence,
    configure_fusion_cache,
    fused_unitary,
    fused_unitary_cached,
    fusion_cache_stats,
    kernel_qubits,
)
from .program import (
    CompiledOp,
    CompiledProgram,
    Workspace,
    compile_unitary_op,
    release_thread_workspace,
)
from .reference import simulate_reference
from .statevector import StateVector

__all__ = [
    "StateVector",
    "CompiledOp",
    "CompiledProgram",
    "Workspace",
    "compile_unitary_op",
    "release_thread_workspace",
    "FusionCache",
    "configure_fusion_cache",
    "fusion_cache_stats",
    "apply_matrix",
    "apply_matrix_reference",
    "apply_diagonal",
    "apply_gate_buffered",
    "expand_matrix",
    "fused_unitary",
    "fused_unitary_cached",
    "kernel_qubits",
    "apply_gate_sequence",
    "simulate_reference",
]

"""Dense state-vector container.

:class:`StateVector` owns a flat complex array of ``2^n`` amplitudes and
provides gate application (delegating to :mod:`repro.sim.apply`),
measurement statistics, fidelity and sampling utilities.  The distributed
executor operates directly on the underlying NumPy array through shard
views; this class is the convenient front-end used by examples and tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..circuits.gates import Gate
from ..errors import StateValidationError
from .apply import apply_diagonal, apply_gate_buffered, tracked_empty

__all__ = ["StateVector"]


class StateVector:
    """A dense ``n``-qubit quantum state."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")  # lint: config-error
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros(dim, dtype=np.complex128)
            self._data[0] = 1.0
        else:
            data = np.asarray(data, dtype=np.complex128)
            if data.size != dim:
                raise StateValidationError(
                    f"data has {data.size} amplitudes, expected {dim}"
                )
            self._data = np.ascontiguousarray(data.reshape(-1))
        # Ping-pong partner for dense gate application; allocated lazily so
        # read-only uses (sampling, fidelity checks) stay at one buffer.
        self._scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "StateVector":
        """|0...0> computational basis state."""
        return cls(num_qubits)

    @classmethod
    def basis_state(cls, num_qubits: int, index: int) -> "StateVector":
        """Computational basis state |index>."""
        dim = 1 << num_qubits
        if not 0 <= index < dim:
            raise ValueError(f"basis index {index} out of range")  # lint: config-error
        data = np.zeros(dim, dtype=np.complex128)
        data[index] = 1.0
        return cls(num_qubits, data)

    @classmethod
    def random_state(cls, num_qubits: int, seed: int = 0) -> "StateVector":
        """Haar-ish random normalized state (Gaussian amplitudes, normalised)."""
        rng = np.random.default_rng(seed)
        dim = 1 << num_qubits
        data = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        data /= np.linalg.norm(data)
        return cls(num_qubits, data)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying flat amplitude array (a view, not a copy).

        Gate application ping-pongs between two internal buffers, so any
        array obtained here is invalidated by the next mutating call
        (``apply_gate``/``apply_matrix``/``apply_circuit``): it may end up
        holding scratch contents.  Copy it if you need a stable snapshot.
        """
        return self._data

    def copy(self) -> "StateVector":
        return StateVector(self.num_qubits, self._data.copy())

    def copy_into(self, out: np.ndarray) -> np.ndarray:
        """Copy the amplitudes into *out* (a flat array of the same size).

        This is the safe way to seed an external buffer (e.g. the offload
        executors' DRAM-resident arrays) from a state: unlike holding on to
        :attr:`data`, the snapshot stays valid when this state mutates.
        """
        if out.size != self._data.size:
            raise StateValidationError(
                f"out has {out.size} amplitudes, expected {self._data.size}"
            )
        # Write through *out* itself (reshaping the source, which is always
        # contiguous) so non-contiguous destinations are filled rather than
        # a silently discarded flattened copy.
        np.copyto(out, self._data.reshape(out.shape))
        return out

    def norm(self) -> float:
        return float(np.linalg.norm(self._data))

    def is_normalized(self, atol: float = 1e-9) -> bool:
        return abs(self.norm() - 1.0) < atol

    def amplitude(self, index: int) -> complex:
        return complex(self._data[index])

    def __len__(self) -> int:
        return self._data.size

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------

    def _ensure_scratch(self) -> np.ndarray:
        if self._scratch is None or self._scratch.size != self._data.size:
            self._scratch = tracked_empty(self._data.size)
        return self._scratch

    def apply_gate(self, gate: Gate) -> "StateVector":
        """Apply *gate* (logical qubit indices) to this state in place."""
        if gate.is_diagonal():
            apply_diagonal(self._data, gate.diagonal(), gate.qubits, out=self._data)
        else:
            self._data, self._scratch = apply_gate_buffered(
                self._data, self._ensure_scratch(), gate.matrix(), gate.qubits
            )
        return self

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "StateVector":
        """Apply an arbitrary unitary on *qubits* in place."""
        self._data, self._scratch = apply_gate_buffered(
            self._data, self._ensure_scratch(), matrix, qubits
        )
        return self

    def apply_circuit(self, gates: Iterable[Gate]) -> "StateVector":
        """Apply a sequence of gates in order."""
        for gate in gates:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    # Measurement statistics
    # ------------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self._data) ** 2

    def marginal_probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Marginal distribution over the listed qubits (little-endian)."""
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        keep_axes = [self.num_qubits - 1 - q for q in qubits]
        sum_axes = tuple(a for a in range(self.num_qubits) if a not in keep_axes)
        marg = probs.sum(axis=sum_axes) if sum_axes else probs
        # Reorder the remaining axes so qubits[0] is the least-significant bit.
        remaining = [a for a in range(self.num_qubits) if a not in sum_axes]
        perm = [remaining.index(a) for a in keep_axes]
        marg = np.transpose(marg, axes=perm)
        return np.ascontiguousarray(marg).reshape(-1)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on *qubit*."""
        marg = self.marginal_probabilities([qubit])
        return float(marg[0] - marg[1])

    def expectation_z_product(self, qubits: Sequence[int]) -> float:
        """Expectation value of the Pauli-Z product over *qubits*.

        ``<Z_{q0} Z_{q1} ...>`` — each basis state contributes its
        probability signed by the parity of its bits at the listed qubits.
        An empty qubit list is the identity observable (always 1.0), and a
        qubit listed twice cancels (``Z_q Z_q = I``), so only qubits with
        odd multiplicity contribute.
        """
        mask = 0
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range [0, {self.num_qubits})")  # lint: config-error
            mask ^= 1 << q
        if not mask:
            return 1.0
        indices = np.arange(self._data.size, dtype=np.uint64) & np.uint64(mask)
        parity = np.zeros(self._data.size, dtype=np.uint64)
        while mask:
            parity ^= indices & np.uint64(1)
            indices >>= np.uint64(1)
            mask >>= 1
        signs = 1.0 - 2.0 * parity.astype(np.float64)
        return float(np.dot(self.probabilities(), signs))

    def sample(
        self, shots: int, seed: int | np.random.Generator = 0
    ) -> np.ndarray:
        """Sample basis-state indices according to the Born rule.

        The distribution is normalized and scanned once (cumulative sum +
        ``searchsorted``) regardless of the shot count, instead of the
        per-call re-normalization ``rng.choice(p=...)`` performs.

        *seed* is either an integer (a fresh ``np.random.default_rng`` per
        call, so equal seeds give equal samples) or a
        ``np.random.Generator``, which is advanced in place — pass a shared
        generator to draw independent but reproducible batches across calls
        (what :meth:`repro.session.Session.run` does for repeated
        ``shots=`` jobs).
        """
        if isinstance(seed, np.random.Generator):
            rng = seed
        else:
            rng = np.random.default_rng(seed)
        cdf = np.cumsum(self.probabilities())
        if cdf[-1] <= 0.0:
            raise ValueError("cannot sample from a zero-norm state")  # lint: config-error
        uniform = rng.random(shots) * cdf[-1]
        # A draw landing exactly on cdf[-1] would index past the end.
        return np.minimum(
            np.searchsorted(cdf, uniform, side="right"), len(cdf) - 1
        )

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def fidelity(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if other.num_qubits != self.num_qubits:
            raise StateValidationError("qubit counts differ")
        return float(abs(np.vdot(self._data, other._data)) ** 2)

    def allclose(self, other: "StateVector", atol: float = 1e-9, up_to_global_phase: bool = True) -> bool:
        """Element-wise comparison, optionally modulo a global phase."""
        if other.num_qubits != self.num_qubits:
            return False
        a, b = self._data, other._data
        if up_to_global_phase:
            # Align phases using the largest-magnitude amplitude.
            idx = int(np.argmax(np.abs(a)))
            if abs(a[idx]) < atol or abs(b[idx]) < atol:
                return bool(np.allclose(a, b, atol=atol))
            phase = (b[idx] / abs(b[idx])) / (a[idx] / abs(a[idx]))
            return bool(np.allclose(a * phase, b, atol=atol))
        return bool(np.allclose(a, b, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StateVector {self.num_qubits} qubits, norm={self.norm():.6f}>"

"""Cross-tenant shared plan store with an optional on-disk persistence tier.

:class:`SharedPlanStore` is the object a :class:`~repro.session.Session`
consults on a local plan-cache miss (``Session(shared_cache=store)``) and
the object the :class:`~repro.service.SimulationService` shares across
every tenant.  It maps a *shared plan key* — the qubit-relabel-invariant
key built by :func:`repro.session.cache.shared_plan_key` — to a JSON-able
*plan skeleton* (:func:`repro.session.cache.plan_skeleton`).

Two tiers:

* **Memory** — a plain dict guarded by one lock; every ``get``/``put``
  goes through it.
* **Disk** (optional, ``persist_dir=...``) — one JSON file per entry named
  by a blake2b digest of the key's repr.  ``put`` writes through; a new
  store loads every readable entry at construction so a restarted service
  warms from the previous run's plans.

Nothing loaded from disk is ever trusted blindly: every entry must carry
the current :data:`~repro.session.cache.SKELETON_VERSION` and a
``fingerprint`` that matches :func:`~repro.session.cache.skeleton_fingerprint`
recomputed over the payload.  A mismatch — truncated file, bit rot, a
hand-edited entry — evicts the entry (memory and disk) and surfaces as
:class:`~repro.errors.CacheCorruptionError`, which the session catches and
answers with a cold replan.  Corruption is therefore a performance event,
never a correctness event.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CacheCorruptionError
from ..runtime.checkpoint import atomic_write_bytes
from ..session.cache import SKELETON_VERSION, skeleton_fingerprint

__all__ = ["SharedPlanStore", "SharedStoreStats"]


@dataclass
class SharedStoreStats:
    """Counters of one :class:`SharedPlanStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries evicted after failing the version/fingerprint check.
    corruptions: int = 0
    evictions: int = 0
    #: Entries warm-loaded from ``persist_dir`` at construction.
    loaded: int = 0
    #: Entries rejected during the warm load (corrupt/unreadable/stale
    #: version); their files are removed so they are never retried.
    load_rejected: int = 0
    saved: int = 0
    save_errors: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "loaded": self.loaded,
            "load_rejected": self.load_rejected,
            "saved": self.saved,
            "save_errors": self.save_errors,
        }


def _digest(key: object) -> str:
    """Stable filename-safe digest of a shared plan key."""
    return hashlib.blake2b(repr(key).encode(), digest_size=16).hexdigest()


@dataclass
class _Entry:
    key_repr: str
    skeleton: dict
    hits: int = field(default=0)


class SharedPlanStore:
    """Thread-safe skeleton store shared by every session of a service.

    Parameters
    ----------
    persist_dir:
        Optional directory for the write-through disk tier.  Created on
        first use; existing entries are verified and loaded eagerly so a
        restarted service replans nothing it already planned.
    max_entries:
        Bound on the in-memory map (FIFO eviction of the oldest entry;
        evicted entries also leave the disk tier).  ``None`` = unbounded.
    """

    def __init__(
        self,
        persist_dir: "str | Path | None" = None,
        max_entries: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")  # lint: config-error
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._max_entries = max_entries
        self._dir = Path(persist_dir) if persist_dir is not None else None
        self.stats = SharedStoreStats()
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._load_all()

    # ------------------------------------------------------------------
    # Store protocol consumed by Session._bind_shared_plan
    # ------------------------------------------------------------------

    def get(self, key: object) -> "dict | None":
        """The skeleton stored under *key*, or ``None`` on a miss.

        Verifies the entry's fingerprint on every hit; a corrupt entry is
        evicted from both tiers and raised as
        :class:`~repro.errors.CacheCorruptionError` so the caller replans
        instead of executing a damaged plan.
        """
        digest = _digest(key)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.stats.misses += 1
                return None
            if not self._verify(entry.skeleton):
                self._evict_locked(digest)
                self.stats.corruptions += 1
                raise CacheCorruptionError(
                    "shared plan store entry failed its integrity check",
                    site="cache_rebind",
                    key=entry.key_repr,
                )
            entry.hits += 1
            self.stats.hits += 1
            return entry.skeleton

    def put(self, key: object, skeleton: dict) -> None:
        """Store *skeleton* under *key* (write-through to disk if enabled)."""
        digest = _digest(key)
        with self._lock:
            if self._max_entries is not None:
                while (
                    digest not in self._entries
                    and len(self._entries) >= self._max_entries
                ):
                    oldest = next(iter(self._entries))
                    self._evict_locked(oldest)
                    self.stats.evictions += 1
            self._entries[digest] = _Entry(key_repr=repr(key), skeleton=skeleton)
            self.stats.puts += 1
            self._save(digest, key, skeleton)

    def evict(self, key: object) -> None:
        """Drop *key* from both tiers (idempotent)."""
        with self._lock:
            if self._evict_locked(_digest(key)):
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return _digest(key) in self._entries

    def keys(self) -> list[str]:
        """Reprs of every stored key (diagnostic)."""
        with self._lock:
            return [e.key_repr for e in self._entries.values()]

    @property
    def persist_dir(self) -> "Path | None":
        return self._dir

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _verify(skeleton: dict) -> bool:
        try:
            if skeleton.get("version") != SKELETON_VERSION:
                return False
            return skeleton_fingerprint(skeleton) == skeleton["fingerprint"]
        except Exception:
            return False

    def _path(self, digest: str) -> Path:
        return self._dir / f"{digest}.json"

    def _evict_locked(self, digest: str) -> bool:
        entry = self._entries.pop(digest, None)
        if self._dir is not None:
            try:
                self._path(digest).unlink(missing_ok=True)
            except OSError:
                pass
        return entry is not None

    def _save(self, digest: str, key: object, skeleton: dict) -> None:
        if self._dir is None:
            return
        payload = {"key_repr": repr(key), "skeleton": skeleton}
        try:
            # Crash-safe write (tmp + fsync + rename + directory fsync),
            # same discipline as checkpoints and the job journal: a
            # power loss mid-save must never leave a torn entry that a
            # restarted service would reject and evict.
            atomic_write_bytes(
                self._path(digest),
                json.dumps(payload, sort_keys=True).encode(),
            )
            self.stats.saved += 1
        except OSError:
            # Persistence is an accelerator, not a dependency: a full or
            # read-only disk degrades to memory-only operation.
            self.stats.save_errors += 1

    def _load_all(self) -> None:
        for path in sorted(self._dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                skeleton = payload["skeleton"]
                key_repr = payload["key_repr"]
                if not self._verify(skeleton):
                    raise CacheCorruptionError(
                        "persisted entry failed verification", site="cache_rebind"
                    )
            except (OSError, ValueError, KeyError, TypeError, CacheCorruptionError):
                self.stats.load_rejected += 1
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                continue
            self._entries[path.stem] = _Entry(key_repr=key_repr, skeleton=skeleton)
            self.stats.loaded += 1

"""Admission control: reject work the service cannot responsibly queue.

Every ``submit`` passes through one :class:`AdmissionController` *before*
anything is enqueued, so rejection is synchronous and typed — clients get
the reason at the call site, never as a deferred failure:

* :class:`~repro.errors.QueueFullError` — the global pending queue is at
  capacity (``context`` carries ``depth``/``limit`` for backpressure).
* :class:`~repro.errors.TenantQuotaError` — this tenant's pending quota is
  exhausted; other tenants are unaffected.
* :class:`~repro.errors.AdmissionError` — the job itself is oversized:
  its modelled memory footprint exceeds the budget even on the most
  capable backend, its modelled runtime exceeds the ceiling, or it bundles
  more circuits than a single job may carry.

The memory check reuses the session's own cost model
(:meth:`~repro.session.Session.modelled_device_bytes`): a job is admitted
if *any* backend in the session's degradation chain can hold it, mirroring
exactly the fallback the session will perform at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AdmissionError, QueueFullError, TenantQuotaError

__all__ = ["AdmissionController", "AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits one :class:`~repro.service.SimulationService` enforces.

    ``None`` disables the corresponding check.
    """

    #: Global cap on jobs queued but not yet dispatched.
    max_pending_jobs: "int | None" = 256
    #: Per-tenant cap on queued jobs (per-tenant backpressure).
    max_pending_per_tenant: "int | None" = 64
    #: Ceiling on a job's modelled device footprint, bytes.  ``None``
    #: defers entirely to the session's own per-backend admission.
    memory_budget_bytes: "int | None" = None
    #: Ceiling on a job's modelled wall-clock, seconds.
    max_modelled_seconds: "float | None" = None
    #: Ceiling on circuits bundled into one job.
    max_circuits_per_job: "int | None" = 1024

    def __post_init__(self):
        for name in (
            "max_pending_jobs",
            "max_pending_per_tenant",
            "memory_budget_bytes",
            "max_circuits_per_job",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be positive")  # lint: config-error
        if self.max_modelled_seconds is not None and self.max_modelled_seconds <= 0:
            raise ValueError(
                "max_modelled_seconds must be positive"
            )  # lint: config-error


class AdmissionController:
    """Applies one :class:`AdmissionPolicy` at submission time.

    Stateless between calls — queue depths are supplied by the service,
    which owns the queues; the controller owns only the policy and the
    rejection taxonomy.
    """

    def __init__(self, policy: AdmissionPolicy, session):
        self.policy = policy
        self._session = session

    def admit(
        self,
        circuits,
        *,
        tenant: str,
        pending_total: int,
        pending_tenant: int,
        modelled_seconds: "float | None" = None,
    ) -> None:
        """Raise a typed admission error if this submission must be
        rejected; return silently if it may be queued."""
        policy = self.policy
        if (
            policy.max_circuits_per_job is not None
            and len(circuits) > policy.max_circuits_per_job
        ):
            raise AdmissionError(
                f"job bundles {len(circuits)} circuits, limit is "
                f"{policy.max_circuits_per_job}",
                site="service.admit",
                tenant=tenant,
                circuits=len(circuits),
                limit=policy.max_circuits_per_job,
            )
        if (
            policy.max_pending_jobs is not None
            and pending_total >= policy.max_pending_jobs
        ):
            raise QueueFullError(
                f"service queue is full ({pending_total} pending, limit "
                f"{policy.max_pending_jobs})",
                site="service.admit",
                tenant=tenant,
                depth=pending_total,
                limit=policy.max_pending_jobs,
            )
        if (
            policy.max_pending_per_tenant is not None
            and pending_tenant >= policy.max_pending_per_tenant
        ):
            raise TenantQuotaError(
                f"tenant {tenant!r} has {pending_tenant} jobs pending, quota "
                f"is {policy.max_pending_per_tenant}",
                site="service.admit",
                tenant=tenant,
                depth=pending_tenant,
                limit=policy.max_pending_per_tenant,
            )
        if policy.memory_budget_bytes is not None:
            self._check_memory(circuits, tenant)
        if (
            policy.max_modelled_seconds is not None
            and modelled_seconds is not None
            and modelled_seconds > policy.max_modelled_seconds
        ):
            raise AdmissionError(
                f"modelled runtime {modelled_seconds:.3g}s exceeds ceiling "
                f"{policy.max_modelled_seconds:.3g}s",
                site="service.admit",
                tenant=tenant,
                modelled_seconds=modelled_seconds,
                limit=policy.max_modelled_seconds,
            )

    def _check_memory(self, circuits, tenant: str) -> None:
        """Admit if any backend in the degradation chain fits the budget."""
        session = self._session
        budget = self.policy.memory_budget_bytes
        for circuit in circuits:
            fits = None
            for backend in ("incore", "offload", "parallel"):
                try:
                    bytes_needed = session.modelled_device_bytes(
                        backend, session.machine, circuit.num_qubits
                    )
                except Exception:
                    continue
                if bytes_needed <= budget:
                    fits = backend
                    break
            if fits is None:
                raise AdmissionError(
                    f"circuit {circuit.name!r} ({circuit.num_qubits} qubits) "
                    f"exceeds the service memory budget of {budget} bytes on "
                    "every backend",
                    site="service.admit",
                    tenant=tenant,
                    num_qubits=circuit.num_qubits,
                    budget_bytes=budget,
                )

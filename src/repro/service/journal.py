"""Write-ahead job journal: the service's crash-recovery substrate.

Every job a :class:`~repro.service.SimulationService` accepts is recorded
*before* it is queued, and every state transition afterwards — an
append-only JSONL file where each line is one checksummed record::

    {"v": 1, "seq": 12, "type": "running", "job": 7, ..., "check": "…"}

``check`` is a blake2b digest over the record's canonical JSON (sorted
keys, no whitespace, ``check`` excluded), so any tampered or torn line is
detected on replay.  Appends are flushed (and fsynced by default) before
the mutation they describe proceeds — hence *write-ahead*: after a crash
the journal is a superset of what actually happened, never a subset.

Record types
------------
``submitted``
    Admission succeeded.  Carries the tenant, priority/weight/cost, the
    circuits serialized as OpenQASM, and the run kwargs.  ``durable`` is
    false when the payload cannot be re-materialised from text (a circuit
    that fails QASM round-tripping, non-JSON run kwargs) — such jobs are
    journalled for accounting but *abandoned* on recovery.
``running`` / ``completed`` / ``failed`` / ``cancelled``
    State transitions, keyed by job id.
``recovered`` / ``abandoned``
    Written by a restarted service for every orphan it re-admits or gives
    up on, so a second crash replays correctly.

Replay (:func:`replay_journal`) tolerates a **torn tail** — a crash mid
append leaves at most one partial final line, which is counted and
skipped — but treats a bad record *before* the tail as corruption:
counted, skipped, and (with ``strict=True``) raised as
:class:`~repro.errors.IntegrityError`.  A corrupt record is never
trusted: its job simply keeps its last intact state.

Fault injection: appends pass through the ``journal_append`` site and are
retried under a bounded policy; when the budget is exhausted the journal
**degrades to non-durable** (counted in ``append_errors``, ``degraded``
flips) rather than failing submissions — unless ``strict=True``, where
the typed error propagates.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import IntegrityError, ReproError, RetryPolicy
from ..runtime import faults
from ..runtime.checkpoint import fsync_directory, fsync_file

__all__ = ["JOURNAL_VERSION", "JobJournal", "JournalReplay", "replay_journal"]

#: On-disk record version; replay rejects records from other versions.
JOURNAL_VERSION = 1

_FILENAME = "journal.jsonl"

#: Journal appends retry transient injected/OS failures under this bounded
#: policy before degrading (kept tiny: an append blocks a submission).
_APPEND_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


def _checked(record: dict) -> dict:
    """Return *record* with its ``check`` digest filled in."""
    core = {k: v for k, v in record.items() if k != "check"}
    digest = hashlib.blake2b(
        json.dumps(core, sort_keys=True, separators=(",", ":")).encode(),
        digest_size=16,
    ).hexdigest()
    return {**core, "check": digest}


def _verify(record: dict) -> bool:
    return (
        isinstance(record, dict)
        and isinstance(record.get("check"), str)
        and _checked(record)["check"] == record["check"]
    )


@dataclass
class JournalReplay:
    """The outcome of replaying one journal file."""

    #: Last intact record per job id (the job's terminal journal state),
    #: merged over the job's ``submitted`` payload.
    jobs: dict[int, dict] = field(default_factory=dict)
    records_read: int = 0
    #: Partial/garbled final line (a crash mid-append); tolerated.
    torn_records: int = 0
    #: Bad records *before* the tail — tampering or bit rot; skipped.
    corrupt_records: int = 0
    last_seq: int = -1
    last_job_id: int = -1

    def orphans(self) -> list[dict]:
        """Jobs the crashed process accepted but never finished.

        Sorted by job id (admission order).  Includes both queued
        (``submitted``) and in-flight (``running``) jobs; the caller
        decides re-admission vs abandonment via each record's
        ``durable`` flag.
        """
        return [
            payload
            for _jid, payload in sorted(self.jobs.items())
            if payload.get("type") in ("submitted", "running", "recovered")
        ]


def replay_journal(path: Path, strict: bool = False) -> JournalReplay:
    """Replay the journal at *path* (missing file → empty replay)."""
    replay = JournalReplay()
    path = Path(path)
    if not path.exists():
        return replay
    lines = path.read_bytes().split(b"\n")
    # A trailing newline leaves one empty chunk; drop it so the torn-tail
    # rule sees the real last record.
    if lines and not lines[-1]:
        lines.pop()
    for i, line in enumerate(lines):
        bad = None
        try:
            record = json.loads(line)
        except ValueError:
            bad = "not JSON"
            record = None
        if record is not None and (
            not _verify(record) or record.get("v") != JOURNAL_VERSION
        ):
            bad = "failed its integrity digest"
        if bad is not None:
            if i == len(lines) - 1:
                replay.torn_records += 1
                continue
            replay.corrupt_records += 1
            if strict:
                raise IntegrityError(
                    f"journal record {i} {bad}: {line[:80]!r}",
                    site="journal_append",
                    record=i,
                )
            continue
        replay.records_read += 1
        replay.last_seq = max(replay.last_seq, int(record.get("seq", -1)))
        jid = record.get("job")
        if not isinstance(jid, int):
            continue
        replay.last_job_id = max(replay.last_job_id, jid)
        previous = replay.jobs.get(jid, {})
        # Later records override the state but keep the submitted
        # payload's fields (circuits, kwargs, tenant, durable).
        replay.jobs[jid] = {**previous, **record}
    return replay


class JobJournal:
    """Append-only, checksummed, fsynced job journal for one service.

    Thread-safe: submissions and the scheduler thread append concurrently.
    ``fsync=False`` trades durability of the last few records for append
    latency (the tests use it; production keeps the default).
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        fsync: bool = True,
        strict: bool = False,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _FILENAME
        self.fsync = fsync
        self.strict = strict
        self._lock = threading.Lock()
        self._handle = None
        #: Append accounting (surfaced in service stats).
        self.appends = 0
        self.append_errors = 0
        #: Set once appends exhausted their retry budget and the journal
        #: stopped persisting (non-strict mode only).
        self.degraded = False
        self._seq = 0

    @property
    def checkpoint_dir(self) -> Path:
        """Where this journal's jobs write their stage checkpoints."""
        return self.directory / "checkpoints"

    def replay(self) -> JournalReplay:
        """Replay the existing file and continue its sequence numbering."""
        replay = replay_journal(self.path, strict=self.strict)
        self._seq = replay.last_seq + 1
        return replay

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, type: str, job: int, **fields) -> bool:
        """Durably append one record; True when it reached the journal.

        Never raises in non-strict mode: a failed append (after bounded
        retries) degrades the journal to non-durable and returns False —
        losing crash recoverability must not fail live submissions.
        """
        with self._lock:
            if self.degraded:
                self.append_errors += 1
                return False
            record = _checked(
                {"v": JOURNAL_VERSION, "seq": self._seq, "type": type,
                 "job": job, **fields}
            )
            line = (
                json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
                + b"\n"
            )
            attempt = 1
            while True:
                try:
                    faults.check("journal_append")
                    handle = self._ensure_handle()
                    handle.write(line)
                    if self.fsync:
                        fsync_file(handle)
                    else:
                        handle.flush()
                    self._seq += 1
                    self.appends += 1
                    return True
                except (ReproError, OSError) as exc:
                    if isinstance(exc, ReproError) and not exc.transient:
                        # A permanent typed failure (e.g. an injected
                        # IntegrityError): no retry can help.
                        self.append_errors += 1
                        if self.strict:
                            raise
                        self.degraded = True
                        return False
                    if attempt >= _APPEND_RETRY.max_attempts:
                        self.append_errors += 1
                        if self.strict:
                            raise
                        self.degraded = True
                        return False
                    _APPEND_RETRY.sleep(attempt)
                    attempt += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    if self.fsync:
                        os.fsync(self._handle.fileno())
                        fsync_directory(self.directory)
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                self._handle.close()
                self._handle = None

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "appends": self.appends,
                "append_errors": self.append_errors,
                "degraded": self.degraded,
            }

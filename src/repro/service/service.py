"""The multi-tenant simulation service.

:class:`SimulationService` fronts **one** shared
:class:`~repro.session.Session` (and therefore one
:class:`~repro.runtime.parallel.ParallelRuntime` worker pool and one plan
cache hierarchy) for many logical tenants:

* ``submit`` applies admission control synchronously (typed
  :class:`~repro.errors.AdmissionError` rejections at the call site),
  then enqueues and returns a genuinely deferred :class:`~repro.session.Job`
  — ``done()`` / ``result(timeout=...)`` / ``cancel()`` work from any
  thread while a dedicated scheduler thread drains the queues.
* Scheduling is priority + weighted fair-share: per-tenant queues ordered
  by ``(-priority, submission)``, dispatched under deficit round-robin
  (:mod:`repro.service.scheduling`) so no tenant can starve another.
* Every tenant's plans flow through one cross-tenant
  :class:`~repro.service.SharedPlanStore` keyed on relabel-invariant
  structural keys, optionally persisted to disk so a restarted service
  replans nothing it already planned.
* Per-tenant accounting (waits, turnarounds, cache hit rates) and global
  service counters are maintained continuously and snapshot via
  :meth:`SimulationService.stats`.
* With ``journal_dir=`` the service is **durable**: every accepted job is
  recorded in a write-ahead :class:`~repro.service.JobJournal` before it
  queues, every state transition after, and a restarted service replays
  the journal, re-admitting orphaned jobs (resuming in-flight work from
  their latest stage checkpoint).  A watchdog thread monitors the
  scheduler heartbeat and flags stuck jobs against their modelled time.

The scheduler thread is the only thread that executes on the shared
session; deferred jobs returned by ``Session.run(execute=False)`` resolve
through the session's own lock, so both paths compose safely.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..circuits import Circuit, from_qasm, to_qasm
from ..circuits.library import get_circuit
from ..errors import ServiceClosedError, SpecParseError
from ..runtime.checkpoint import CheckpointConfig
from ..session import Job, Session
from .admission import AdmissionController, AdmissionPolicy
from .journal import JobJournal
from .persistence import SharedPlanStore
from .scheduling import FairShareScheduler, QueuedJob

__all__ = ["SimulationService", "TenantStats"]


@dataclass
class TenantStats:
    """Continuous accounting for one tenant."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    circuits: int = 0
    #: Structurally deduplicated submissions (fan-out followers).
    deduplicated: int = 0
    #: Plan-cache hits attributed to this tenant's dispatched jobs —
    #: local structural hits and cross-tenant shared-store hits.
    cache_hits: int = 0
    shared_cache_hits: int = 0
    plans_built: int = 0
    wait_seconds: float = 0.0
    turnaround_seconds: float = 0.0
    #: Jobs the watchdog flagged as exceeding their modelled-time budget.
    stuck_jobs: int = 0

    def as_dict(self) -> dict:
        dispatched = self.completed + self.failed
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "circuits": self.circuits,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "shared_cache_hits": self.shared_cache_hits,
            "plans_built": self.plans_built,
            "stuck_jobs": self.stuck_jobs,
            "mean_wait_seconds": (
                self.wait_seconds / dispatched if dispatched else 0.0
            ),
            "mean_turnaround_seconds": (
                self.turnaround_seconds / dispatched if dispatched else 0.0
            ),
            "cache_hit_rate": (
                (self.cache_hits + self.shared_cache_hits)
                / max(1, self.cache_hits + self.shared_cache_hits + self.plans_built)
            ),
        }


@dataclass
class _WorkItem:
    """One scheduled unit: the circuits, the run kwargs, and every Job
    (primary + dedup followers) to complete with the shared results."""

    jobs: list
    circuits: list
    run_kwargs: dict
    tenant: str
    submitted_at: float
    entry: "QueuedJob | None" = field(default=None)
    #: Journal id (assigned at admission when journalling is on).
    job_id: "int | None" = None
    #: True when this item was re-admitted from a crashed service's
    #: journal — dispatch then resumes from the job's latest checkpoint.
    recovered: bool = False
    #: Admission-time modelled cluster seconds (the watchdog's budget
    #: baseline), when the policy priced the job.
    modelled_seconds: "float | None" = None


def parse_circuit_spec(spec: str) -> Circuit:
    """Build a circuit from a one-line textual spec.

    Accepted forms: ``family:nqubits`` (a named generator from
    :mod:`repro.circuits.library`, e.g. ``vqc:8``) or a path to an OpenQASM
    file.  Used by :meth:`SimulationService.submit_file` and for string
    entries in :meth:`SimulationService.submit_many`.

    A malformed spec raises :class:`~repro.errors.SpecParseError` — a
    typed, *per-job* admission failure: batch intake fails only the job
    for the bad line, never the rest of the batch.
    """
    spec = spec.strip()
    try:
        if ":" in spec and not Path(spec).exists():
            family, _, n = spec.partition(":")
            return get_circuit(family.strip(), int(n))
        return from_qasm(Path(spec).read_text(), name=Path(spec).stem)
    except SpecParseError:
        raise
    except Exception as exc:
        raise SpecParseError(
            f"cannot parse circuit spec {spec!r}: {exc}",
            site="service.parse",
            spec=spec,
        ) from exc


class SimulationService:
    """Multi-tenant front end over one shared simulation session.

    Parameters
    ----------
    machine:
        Cluster model for a service-owned session (ignored when *session*
        is given).
    session:
        An existing :class:`~repro.session.Session` to front.  The service
        wires its shared plan store into the session (replacing ``None``;
        an explicitly configured ``shared_cache`` is kept).
    policy:
        Admission limits (:class:`~repro.service.AdmissionPolicy`).
    store:
        Cross-tenant :class:`~repro.service.SharedPlanStore`; built
        automatically (persisting under *persist_dir* if given) when
        omitted.
    persist_dir:
        Directory for the store's disk tier — a service restarted with the
        same directory warms every previously planned structure.
    quantum:
        Deficit round-robin quantum (cost credited per tenant visit).
    journal_dir:
        Directory for the write-ahead job journal.  When given, every
        accepted submission is journalled before it queues, dispatched
        jobs checkpoint at stage boundaries under
        ``journal_dir/checkpoints``, and a *restarted* service with the
        same directory replays the journal: orphaned jobs (queued or
        running at the crash) are re-admitted and resume from their
        latest checkpoint; non-recoverable ones are recorded as
        abandoned.  ``None`` (default) disables durability.
    journal_fsync:
        fsync each journal append (default True; tests disable it).
    watchdog_interval:
        Seconds between watchdog sweeps (``0`` disables the watchdog).
    stuck_slack, stuck_grace_seconds:
        A running job is flagged *stuck* once its wall time exceeds
        ``stuck_grace_seconds + stuck_slack × modelled_seconds``.
    session_kwargs:
        Forwarded to the service-owned :class:`~repro.session.Session`.
    """

    def __init__(
        self,
        machine=None,
        session: "Session | None" = None,
        *,
        policy: "AdmissionPolicy | None" = None,
        store: "SharedPlanStore | None" = None,
        persist_dir: "str | Path | None" = None,
        quantum: float = 1.0,
        journal_dir: "str | Path | None" = None,
        journal_fsync: bool = True,
        watchdog_interval: float = 1.0,
        stuck_slack: float = 4.0,
        stuck_grace_seconds: float = 30.0,
        **session_kwargs,
    ):
        if store is None:
            store = SharedPlanStore(persist_dir=persist_dir)
        self.store = store
        if session is None:
            session = Session(machine, shared_cache=store, **session_kwargs)
            self._owns_session = True
        else:
            if session.shared_cache is None:
                session.shared_cache = store
            self._owns_session = False
        self.session = session
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._admission = AdmissionController(self.policy, session)
        self._scheduler = FairShareScheduler(quantum=quantum)
        self._cond = threading.Condition()
        self._tenants: dict[str, TenantStats] = {}
        self._closed = False
        self._stop = False
        self._inflight = 0
        # Global counters (guarded by the condition lock).
        self.submitted = 0
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.deduplicated = 0
        self.peak_queue_depth = 0
        # Durability: write-ahead journal, crash recovery, watchdog.
        self.recovered = 0
        self.abandoned = 0
        self.stuck_jobs = 0
        #: Old-journal-id → re-admitted Job, for clients re-attaching
        #: after a restart.
        self.recovered_jobs: dict[int, Job] = {}
        self._running_since: dict[int, tuple[float, "float | None", str]] = {}
        self._stuck_flagged: set[int] = set()
        self._heartbeat = time.monotonic()
        self._watchdog_interval = watchdog_interval
        self._stuck_slack = stuck_slack
        self._stuck_grace_seconds = stuck_grace_seconds
        self._watchdog_stop = threading.Event()
        self._watchdog: "threading.Thread | None" = None
        self._journal: "JobJournal | None" = None
        next_job_id = 0
        if journal_dir is not None:
            self._journal = JobJournal(journal_dir, fsync=journal_fsync)
            replay = self._journal.replay()
            next_job_id = replay.last_job_id + 1
            # Re-admit orphans before the scheduler thread exists — the
            # queue is still private, so no locking subtleties.
            self._recover(replay)
        self._job_ids = itertools.count(next_job_id)
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()
        if watchdog_interval > 0:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-service-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    def _recover(self, replay) -> None:
        """Re-admit every durable orphan from a replayed journal.

        Runs in ``__init__`` before the scheduler thread starts.  Orphans
        bypass admission control — they were already admitted by the
        crashed process; re-rejecting them would silently drop accepted
        work.  Each re-admitted item dispatches with ``resume_from``
        pointing at the journal's checkpoint directory, so work that
        crashed mid-plan restarts from its last completed stage.
        """
        for payload in replay.orphans():
            jid = payload["job"]
            tenant = payload.get("tenant", "default")
            circuits = None
            if payload.get("durable"):
                try:
                    circuits = [from_qasm(text) for text in payload["circuits"]]
                except Exception:
                    circuits = None
            if circuits is None:
                self.abandoned += 1
                self._journal.append("abandoned", jid, tenant=tenant)
                continue
            run_kwargs = dict(payload.get("run_kwargs") or {})
            job = Job.pending(
                len(circuits),
                backend=run_kwargs.get("backend") or "",
                tenant=tenant,
            )
            item = _WorkItem(
                jobs=[job],
                circuits=circuits,
                run_kwargs=run_kwargs,
                tenant=tenant,
                submitted_at=time.monotonic(),
                job_id=jid,
                recovered=True,
            )
            item.entry = self._scheduler.enqueue(
                tenant,
                item,
                priority=int(payload.get("priority", 0)),
                cost=len(circuits),
                weight=float(payload.get("weight", 1.0)),
            )
            stats = self._tenant(tenant)
            self.submitted += 1
            stats.submitted += 1
            stats.circuits += len(circuits)
            self.recovered += 1
            self.recovered_jobs[jid] = job
            self._journal.append("recovered", jid, tenant=tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Stop the service (idempotent).

        ``drain=True`` (default) waits for every queued job to finish
        first; ``drain=False`` cancels everything still pending.  A
        service-owned session is closed too; a caller-supplied session is
        left open.
        """
        with self._cond:
            if self._closed and not self._thread.is_alive():
                return
            self._closed = True
            if not drain:
                while True:
                    entry = self._scheduler.next_job()
                    if entry is None:
                        break
                    item = entry[1].payload
                    for job in item.jobs:
                        if job.cancel():
                            self.cancelled += 1
                            self._tenant(item.tenant).cancelled += 1
                    if self._journal is not None and item.job_id is not None:
                        self._journal.append(
                            "cancelled", item.job_id, tenant=item.tenant
                        )
            else:
                while self._scheduler.pending() or self._inflight:
                    self._cond.wait(timeout=0.1)
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
        if self._journal is not None:
            self._journal.close()
        if self._owns_session:
            self.session.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("service is closed", site="service.submit")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        circuits,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        **run_kwargs,
    ) -> Job:
        """Queue one job (one circuit or a batch) for *tenant*.

        Admission runs synchronously — the caller sees
        :class:`~repro.errors.QueueFullError` /
        :class:`~repro.errors.TenantQuotaError` /
        :class:`~repro.errors.AdmissionError` here, never deferred — and
        the returned :class:`~repro.session.Job` completes asynchronously
        once the fair-share scheduler dispatches it.  ``priority`` orders
        jobs *within* the tenant (higher first); ``weight`` sets the
        tenant's fair share (fixed at the tenant's first submission).
        ``run_kwargs`` are forwarded to :meth:`Session.run`.
        """
        circuit_list = (
            list(circuits) if isinstance(circuits, (list, tuple)) else [circuits]
        )
        modelled_seconds = None
        if self.policy.max_modelled_seconds is not None:
            # Plan now (cached for the execution) to price the job in
            # modelled cluster time before letting it occupy the queue.
            modelled_job = self.session.run(
                circuit_list, execute=False, **run_kwargs
            )
            modelled_seconds = sum(
                r.timing.total_seconds for r in modelled_job.modelled_results()
            )
        with self._cond:
            self._ensure_open()
            stats = self._tenant(tenant)
            try:
                self._admission.admit(
                    circuit_list,
                    tenant=tenant,
                    pending_total=self._scheduler.pending(),
                    pending_tenant=self._scheduler.pending_for(tenant),
                    modelled_seconds=modelled_seconds,
                )
            except Exception:
                self.rejected += 1
                stats.rejected += 1
                raise
            job_id = None
            if self._journal is not None:
                # Write-ahead: the acceptance record must be durable
                # before the job can queue, or a crash loses it.
                job_id = next(self._job_ids)
                self._journal.append(
                    "submitted",
                    job_id,
                    tenant=tenant,
                    priority=priority,
                    weight=weight,
                    **self._journal_payload(circuit_list, run_kwargs),
                )
            job = Job.pending(
                len(circuit_list),
                backend=run_kwargs.get("backend") or "",
                tenant=tenant,
            )
            item = _WorkItem(
                jobs=[job],
                circuits=circuit_list,
                run_kwargs=dict(run_kwargs),
                tenant=tenant,
                submitted_at=time.monotonic(),
                job_id=job_id,
                modelled_seconds=modelled_seconds,
            )
            item.entry = self._scheduler.enqueue(
                tenant,
                item,
                priority=priority,
                cost=len(circuit_list),
                weight=weight,
            )
            self.submitted += 1
            stats.submitted += 1
            stats.circuits += len(circuit_list)
            self.peak_queue_depth = max(
                self.peak_queue_depth, self._scheduler.pending()
            )
            self._cond.notify_all()
        return job

    @staticmethod
    def _journal_payload(circuit_list, run_kwargs) -> dict:
        """The recoverable portion of a submission's journal record.

        Circuits serialize as OpenQASM (bit-exact float round-trip) and
        run kwargs as JSON.  Anything that cannot be re-materialised from
        text makes the record ``durable: false`` — journalled for
        accounting, abandoned on recovery.
        """
        try:
            circuits = [to_qasm(c) for c in circuit_list]
            kwargs = json.loads(json.dumps(dict(run_kwargs)))
            if kwargs != dict(run_kwargs):
                return {"durable": False}
        except Exception:
            return {"durable": False}
        return {"durable": True, "circuits": circuits, "run_kwargs": kwargs}

    def submit_many(
        self,
        specs,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        concurrency: int = 4,
        dedup: bool = True,
        **run_kwargs,
    ) -> list[Job]:
        """Batch intake: one Job per spec, deduplicating identical work.

        *specs* may mix :class:`~repro.circuits.Circuit` objects and
        textual specs (``family:nqubits`` or QASM paths — see
        :func:`parse_circuit_spec`); textual specs are parsed concurrently
        on up to *concurrency* threads.  With ``dedup=True`` (default),
        submissions whose circuit *content* (structure **and** parameters)
        and run kwargs coincide execute **once**: followers receive the
        primary's results through their own independent Jobs (separately
        cancellable, same fan-out results).

        A malformed textual spec fails **only its own job**: that Job is
        returned already failed with a
        :class:`~repro.errors.SpecParseError` (counted as a rejection),
        and every other spec in the batch is admitted normally.
        """
        specs = list(specs)
        if any(isinstance(s, str) for s in specs):
            if concurrency < 1:
                raise ValueError(
                    "concurrency must be positive"
                )  # lint: config-error

            def _parse(spec):
                if not isinstance(spec, str):
                    return spec
                try:
                    return parse_circuit_spec(spec)
                except SpecParseError as exc:
                    return exc

            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                circuits = list(pool.map(_parse, specs))
        else:
            circuits = specs
        kwargs_key = tuple(sorted((k, repr(v)) for k, v in run_kwargs.items()))
        jobs: list[Job] = []
        primaries: dict[object, Job] = {}
        for circuit in circuits:
            if isinstance(circuit, SpecParseError):
                job = Job.pending(1, tenant=tenant)
                job._fail(circuit)
                with self._cond:
                    self.rejected += 1
                    self._tenant(tenant).rejected += 1
                jobs.append(job)
                continue
            key = (circuit.content_key(), kwargs_key) if dedup else None
            primary = primaries.get(key) if key is not None else None
            if primary is None:
                job = self.submit(
                    circuit,
                    tenant=tenant,
                    priority=priority,
                    weight=weight,
                    **run_kwargs,
                )
                if key is not None:
                    primaries[key] = job
            else:
                job = self._attach_follower(primary, tenant)
            jobs.append(job)
        return jobs

    def submit_file(
        self,
        path,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        concurrency: int = 4,
        dedup: bool = True,
        **run_kwargs,
    ) -> list[Job]:
        """Submit every circuit spec listed in a text file.

        One spec per line (``family:nqubits`` or a QASM path); blank lines
        and ``#`` comments are skipped.  Semantics otherwise identical to
        :meth:`submit_many`.
        """
        lines = Path(path).read_text().splitlines()
        specs = [
            line.strip()
            for line in lines
            if line.strip() and not line.strip().startswith("#")
        ]
        return self.submit_many(
            specs,
            tenant=tenant,
            priority=priority,
            weight=weight,
            concurrency=concurrency,
            dedup=dedup,
            **run_kwargs,
        )

    def _attach_follower(self, primary: Job, tenant: str) -> Job:
        """A dedup follower: its own cancellable Job, completed with the
        primary item's results when that item executes."""
        with self._cond:
            self._ensure_open()
            item = self._find_item(primary)
            stats = self._tenant(tenant)
            if item is None:
                # Primary already dispatched (or cancelled): fall back to
                # mirroring its terminal outcome via a deferred resolve.
                follower = Job.pending(len(primary), tenant=tenant)
                self.submitted += 1
                self.deduplicated += 1
                stats.submitted += 1
                stats.deduplicated += 1

                def _mirror(primary=primary, follower=follower):
                    try:
                        results = primary.results()
                    except BaseException as exc:
                        follower._fail(exc)
                    else:
                        follower._complete(
                            results,
                            backend=primary.backend,
                            wall_seconds=primary.wall_seconds,
                            cache_hits=primary.cache_hits,
                        )

                threading.Thread(target=_mirror, daemon=True).start()
                return follower
            follower = Job.pending(len(item.circuits), tenant=tenant)
            item.jobs.append(follower)
            self.submitted += 1
            self.deduplicated += 1
            stats.submitted += 1
            stats.deduplicated += 1
            return follower

    def _find_item(self, job: Job) -> "_WorkItem | None":
        for queue in self._scheduler._queues.values():
            for entry in queue._heap:
                if job in entry.payload.jobs:
                    return entry.payload
        return None

    # ------------------------------------------------------------------
    # Scheduler thread
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                self._heartbeat = time.monotonic()
                while not self._stop and self._scheduler.pending() == 0:
                    self._cond.wait(timeout=0.5)
                    self._heartbeat = time.monotonic()
                if self._stop and self._scheduler.pending() == 0:
                    return
                entry = self._scheduler.next_job()
                if entry is None:
                    continue
                tenant, queued = entry
                item: _WorkItem = queued.payload
                claimed = [job for job in item.jobs if job._mark_running()]
                stats = self._tenant(tenant)
                if not claimed:
                    # Every job of the item was cancelled while queued.
                    self.cancelled += len(item.jobs)
                    stats.cancelled += len(item.jobs)
                    if self._journal is not None and item.job_id is not None:
                        self._journal.append(
                            "cancelled", item.job_id, tenant=tenant
                        )
                    self._cond.notify_all()
                    continue
                self._inflight += 1
                self.dispatched += 1
                if item.job_id is not None:
                    self._running_since[item.job_id] = (
                        time.monotonic(),
                        item.modelled_seconds,
                        tenant,
                    )
            run_kwargs = dict(item.run_kwargs)
            if self._journal is not None and item.job_id is not None:
                # Write-ahead: the transition precedes the execution, so
                # a crash mid-run replays this job as an orphan.
                self._journal.append("running", item.job_id, tenant=tenant)
                # Durable dispatch: stage checkpoints land under the
                # journal with a per-job tag; recovered jobs resume from
                # whatever their crashed run already completed.
                run_kwargs.setdefault(
                    "checkpoint",
                    CheckpointConfig(
                        self._journal.checkpoint_dir, tag=f"job{item.job_id}"
                    ),
                )
                if item.recovered:
                    run_kwargs.setdefault(
                        "resume_from", self._journal.checkpoint_dir
                    )
            started = time.monotonic()
            stats_before = (
                self.session.stats.cache_hits,
                self.session.stats.shared_cache_hits,
                self.session.stats.plans_built,
            )
            error = None
            inner = None
            try:
                inner = self.session.run(
                    item.circuits, execute=True, **run_kwargs
                )
            except BaseException as exc:  # propagate through every Job
                error = exc
            finished = time.monotonic()
            if self._journal is not None and item.job_id is not None:
                if error is None:
                    self._journal.append(
                        "completed",
                        item.job_id,
                        tenant=tenant,
                        wall_seconds=finished - started,
                    )
                else:
                    self._journal.append(
                        "failed",
                        item.job_id,
                        tenant=tenant,
                        error=f"{type(error).__name__}: {error}",
                    )
            if error is None:
                results = inner.results()
                for job in claimed:
                    job._complete(
                        results,
                        backend=inner.backend,
                        wall_seconds=inner.wall_seconds,
                        cache_hits=inner.cache_hits,
                    )
            else:
                for job in claimed:
                    job._fail(error)
            with self._cond:
                self._inflight -= 1
                self._heartbeat = time.monotonic()
                if item.job_id is not None:
                    self._running_since.pop(item.job_id, None)
                delta = (
                    self.session.stats.cache_hits - stats_before[0],
                    self.session.stats.shared_cache_hits - stats_before[1],
                    self.session.stats.plans_built - stats_before[2],
                )
                stats.cache_hits += delta[0]
                stats.shared_cache_hits += delta[1]
                stats.plans_built += delta[2]
                stats.wait_seconds += started - item.submitted_at
                stats.turnaround_seconds += finished - item.submitted_at
                if error is None:
                    self.completed += len(claimed)
                    stats.completed += len(claimed)
                else:
                    self.failed += len(claimed)
                    stats.failed += len(claimed)
                skipped = len(item.jobs) - len(claimed)
                if skipped:
                    self.cancelled += skipped
                    stats.cancelled += skipped
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Watchdog thread
    # ------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        """Periodic liveness sweep: flag jobs running far beyond budget.

        A job's budget is ``stuck_grace_seconds + stuck_slack ×
        modelled_seconds`` (modelled time is known only when the
        admission policy priced the job; otherwise the grace period
        alone applies).  Each stuck job is flagged once — the watchdog
        observes and reports, it never kills work.
        """
        while not self._watchdog_stop.wait(self._watchdog_interval):
            now = time.monotonic()
            with self._cond:
                for jid, (started, modelled, tenant) in list(
                    self._running_since.items()
                ):
                    if jid in self._stuck_flagged:
                        continue
                    budget = self._stuck_grace_seconds + self._stuck_slack * (
                        modelled or 0.0
                    )
                    if now - started > budget:
                        self._stuck_flagged.add(jid)
                        self.stuck_jobs += 1
                        self._tenant(tenant).stuck_jobs += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats()
        return stats

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._scheduler.pending()

    def tenant_stats(self, tenant: str) -> TenantStats:
        with self._cond:
            return self._tenant(tenant)

    def stats(self) -> dict:
        """Snapshot of service, per-tenant, store and session counters."""
        with self._cond:
            return {
                "queue_depth": self._scheduler.pending(),
                "peak_queue_depth": self.peak_queue_depth,
                "inflight": self._inflight,
                "submitted": self.submitted,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "deduplicated": self.deduplicated,
                "tenants": {
                    name: stats.as_dict()
                    for name, stats in sorted(self._tenants.items())
                },
                "journal": (
                    {
                        **self._journal.stats(),
                        "recovered": self.recovered,
                        "abandoned": self.abandoned,
                    }
                    if self._journal is not None
                    else None
                ),
                "watchdog": {
                    "interval_seconds": self._watchdog_interval,
                    "heartbeat_age_seconds": time.monotonic() - self._heartbeat,
                    "running_jobs": len(self._running_since),
                    "stuck_jobs": self.stuck_jobs,
                },
                "shared_store": self.store.stats.as_dict(),
                "session": self.session.stats.as_dict(),
            }

"""The multi-tenant simulation service.

:class:`SimulationService` fronts **one** shared
:class:`~repro.session.Session` (and therefore one
:class:`~repro.runtime.parallel.ParallelRuntime` worker pool and one plan
cache hierarchy) for many logical tenants:

* ``submit`` applies admission control synchronously (typed
  :class:`~repro.errors.AdmissionError` rejections at the call site),
  then enqueues and returns a genuinely deferred :class:`~repro.session.Job`
  — ``done()`` / ``result(timeout=...)`` / ``cancel()`` work from any
  thread while a dedicated scheduler thread drains the queues.
* Scheduling is priority + weighted fair-share: per-tenant queues ordered
  by ``(-priority, submission)``, dispatched under deficit round-robin
  (:mod:`repro.service.scheduling`) so no tenant can starve another.
* Every tenant's plans flow through one cross-tenant
  :class:`~repro.service.SharedPlanStore` keyed on relabel-invariant
  structural keys, optionally persisted to disk so a restarted service
  replans nothing it already planned.
* Per-tenant accounting (waits, turnarounds, cache hit rates) and global
  service counters are maintained continuously and snapshot via
  :meth:`SimulationService.stats`.

The scheduler thread is the only thread that executes on the shared
session; deferred jobs returned by ``Session.run(execute=False)`` resolve
through the session's own lock, so both paths compose safely.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from ..circuits import Circuit, from_qasm
from ..circuits.library import get_circuit
from ..errors import ServiceClosedError
from ..session import Job, Session
from .admission import AdmissionController, AdmissionPolicy
from .persistence import SharedPlanStore
from .scheduling import FairShareScheduler, QueuedJob

__all__ = ["SimulationService", "TenantStats"]


@dataclass
class TenantStats:
    """Continuous accounting for one tenant."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    circuits: int = 0
    #: Structurally deduplicated submissions (fan-out followers).
    deduplicated: int = 0
    #: Plan-cache hits attributed to this tenant's dispatched jobs —
    #: local structural hits and cross-tenant shared-store hits.
    cache_hits: int = 0
    shared_cache_hits: int = 0
    plans_built: int = 0
    wait_seconds: float = 0.0
    turnaround_seconds: float = 0.0

    def as_dict(self) -> dict:
        dispatched = self.completed + self.failed
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "circuits": self.circuits,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "shared_cache_hits": self.shared_cache_hits,
            "plans_built": self.plans_built,
            "mean_wait_seconds": (
                self.wait_seconds / dispatched if dispatched else 0.0
            ),
            "mean_turnaround_seconds": (
                self.turnaround_seconds / dispatched if dispatched else 0.0
            ),
            "cache_hit_rate": (
                (self.cache_hits + self.shared_cache_hits)
                / max(1, self.cache_hits + self.shared_cache_hits + self.plans_built)
            ),
        }


@dataclass
class _WorkItem:
    """One scheduled unit: the circuits, the run kwargs, and every Job
    (primary + dedup followers) to complete with the shared results."""

    jobs: list
    circuits: list
    run_kwargs: dict
    tenant: str
    submitted_at: float
    entry: "QueuedJob | None" = field(default=None)


def parse_circuit_spec(spec: str) -> Circuit:
    """Build a circuit from a one-line textual spec.

    Accepted forms: ``family:nqubits`` (a named generator from
    :mod:`repro.circuits.library`, e.g. ``vqc:8``) or a path to an OpenQASM
    file.  Used by :meth:`SimulationService.submit_file` and for string
    entries in :meth:`SimulationService.submit_many`.
    """
    spec = spec.strip()
    if ":" in spec and not Path(spec).exists():
        family, _, n = spec.partition(":")
        return get_circuit(family.strip(), int(n))
    return from_qasm(Path(spec).read_text(), name=Path(spec).stem)


class SimulationService:
    """Multi-tenant front end over one shared simulation session.

    Parameters
    ----------
    machine:
        Cluster model for a service-owned session (ignored when *session*
        is given).
    session:
        An existing :class:`~repro.session.Session` to front.  The service
        wires its shared plan store into the session (replacing ``None``;
        an explicitly configured ``shared_cache`` is kept).
    policy:
        Admission limits (:class:`~repro.service.AdmissionPolicy`).
    store:
        Cross-tenant :class:`~repro.service.SharedPlanStore`; built
        automatically (persisting under *persist_dir* if given) when
        omitted.
    persist_dir:
        Directory for the store's disk tier — a service restarted with the
        same directory warms every previously planned structure.
    quantum:
        Deficit round-robin quantum (cost credited per tenant visit).
    session_kwargs:
        Forwarded to the service-owned :class:`~repro.session.Session`.
    """

    def __init__(
        self,
        machine=None,
        session: "Session | None" = None,
        *,
        policy: "AdmissionPolicy | None" = None,
        store: "SharedPlanStore | None" = None,
        persist_dir: "str | Path | None" = None,
        quantum: float = 1.0,
        **session_kwargs,
    ):
        if store is None:
            store = SharedPlanStore(persist_dir=persist_dir)
        self.store = store
        if session is None:
            session = Session(machine, shared_cache=store, **session_kwargs)
            self._owns_session = True
        else:
            if session.shared_cache is None:
                session.shared_cache = store
            self._owns_session = False
        self.session = session
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._admission = AdmissionController(self.policy, session)
        self._scheduler = FairShareScheduler(quantum=quantum)
        self._cond = threading.Condition()
        self._tenants: dict[str, TenantStats] = {}
        self._closed = False
        self._stop = False
        self._inflight = 0
        # Global counters (guarded by the condition lock).
        self.submitted = 0
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.deduplicated = 0
        self.peak_queue_depth = 0
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True) -> None:
        """Stop the service (idempotent).

        ``drain=True`` (default) waits for every queued job to finish
        first; ``drain=False`` cancels everything still pending.  A
        service-owned session is closed too; a caller-supplied session is
        left open.
        """
        with self._cond:
            if self._closed and not self._thread.is_alive():
                return
            self._closed = True
            if not drain:
                while True:
                    entry = self._scheduler.next_job()
                    if entry is None:
                        break
                    item = entry[1].payload
                    for job in item.jobs:
                        if job.cancel():
                            self.cancelled += 1
                            self._tenant(item.tenant).cancelled += 1
            else:
                while self._scheduler.pending() or self._inflight:
                    self._cond.wait(timeout=0.1)
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)
        if self._owns_session:
            self.session.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("service is closed", site="service.submit")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        circuits,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        **run_kwargs,
    ) -> Job:
        """Queue one job (one circuit or a batch) for *tenant*.

        Admission runs synchronously — the caller sees
        :class:`~repro.errors.QueueFullError` /
        :class:`~repro.errors.TenantQuotaError` /
        :class:`~repro.errors.AdmissionError` here, never deferred — and
        the returned :class:`~repro.session.Job` completes asynchronously
        once the fair-share scheduler dispatches it.  ``priority`` orders
        jobs *within* the tenant (higher first); ``weight`` sets the
        tenant's fair share (fixed at the tenant's first submission).
        ``run_kwargs`` are forwarded to :meth:`Session.run`.
        """
        circuit_list = (
            list(circuits) if isinstance(circuits, (list, tuple)) else [circuits]
        )
        modelled_seconds = None
        if self.policy.max_modelled_seconds is not None:
            # Plan now (cached for the execution) to price the job in
            # modelled cluster time before letting it occupy the queue.
            modelled_job = self.session.run(
                circuit_list, execute=False, **run_kwargs
            )
            modelled_seconds = sum(
                r.timing.total_seconds for r in modelled_job.modelled_results()
            )
        with self._cond:
            self._ensure_open()
            stats = self._tenant(tenant)
            try:
                self._admission.admit(
                    circuit_list,
                    tenant=tenant,
                    pending_total=self._scheduler.pending(),
                    pending_tenant=self._scheduler.pending_for(tenant),
                    modelled_seconds=modelled_seconds,
                )
            except Exception:
                self.rejected += 1
                stats.rejected += 1
                raise
            job = Job.pending(
                len(circuit_list),
                backend=run_kwargs.get("backend") or "",
                tenant=tenant,
            )
            item = _WorkItem(
                jobs=[job],
                circuits=circuit_list,
                run_kwargs=dict(run_kwargs),
                tenant=tenant,
                submitted_at=time.monotonic(),
            )
            item.entry = self._scheduler.enqueue(
                tenant,
                item,
                priority=priority,
                cost=len(circuit_list),
                weight=weight,
            )
            self.submitted += 1
            stats.submitted += 1
            stats.circuits += len(circuit_list)
            self.peak_queue_depth = max(
                self.peak_queue_depth, self._scheduler.pending()
            )
            self._cond.notify_all()
        return job

    def submit_many(
        self,
        specs,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        concurrency: int = 4,
        dedup: bool = True,
        **run_kwargs,
    ) -> list[Job]:
        """Batch intake: one Job per spec, deduplicating identical work.

        *specs* may mix :class:`~repro.circuits.Circuit` objects and
        textual specs (``family:nqubits`` or QASM paths — see
        :func:`parse_circuit_spec`); textual specs are parsed concurrently
        on up to *concurrency* threads.  With ``dedup=True`` (default),
        submissions whose circuit *content* (structure **and** parameters)
        and run kwargs coincide execute **once**: followers receive the
        primary's results through their own independent Jobs (separately
        cancellable, same fan-out results).
        """
        specs = list(specs)
        if any(isinstance(s, str) for s in specs):
            if concurrency < 1:
                raise ValueError(
                    "concurrency must be positive"
                )  # lint: config-error
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                circuits = list(
                    pool.map(
                        lambda s: parse_circuit_spec(s)
                        if isinstance(s, str)
                        else s,
                        specs,
                    )
                )
        else:
            circuits = specs
        kwargs_key = tuple(sorted((k, repr(v)) for k, v in run_kwargs.items()))
        jobs: list[Job] = []
        primaries: dict[object, Job] = {}
        for circuit in circuits:
            key = (circuit.content_key(), kwargs_key) if dedup else None
            primary = primaries.get(key) if key is not None else None
            if primary is None:
                job = self.submit(
                    circuit,
                    tenant=tenant,
                    priority=priority,
                    weight=weight,
                    **run_kwargs,
                )
                if key is not None:
                    primaries[key] = job
            else:
                job = self._attach_follower(primary, tenant)
            jobs.append(job)
        return jobs

    def submit_file(
        self,
        path,
        *,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        concurrency: int = 4,
        dedup: bool = True,
        **run_kwargs,
    ) -> list[Job]:
        """Submit every circuit spec listed in a text file.

        One spec per line (``family:nqubits`` or a QASM path); blank lines
        and ``#`` comments are skipped.  Semantics otherwise identical to
        :meth:`submit_many`.
        """
        lines = Path(path).read_text().splitlines()
        specs = [
            line.strip()
            for line in lines
            if line.strip() and not line.strip().startswith("#")
        ]
        return self.submit_many(
            specs,
            tenant=tenant,
            priority=priority,
            weight=weight,
            concurrency=concurrency,
            dedup=dedup,
            **run_kwargs,
        )

    def _attach_follower(self, primary: Job, tenant: str) -> Job:
        """A dedup follower: its own cancellable Job, completed with the
        primary item's results when that item executes."""
        with self._cond:
            self._ensure_open()
            item = self._find_item(primary)
            stats = self._tenant(tenant)
            if item is None:
                # Primary already dispatched (or cancelled): fall back to
                # mirroring its terminal outcome via a deferred resolve.
                follower = Job.pending(len(primary), tenant=tenant)
                self.submitted += 1
                self.deduplicated += 1
                stats.submitted += 1
                stats.deduplicated += 1

                def _mirror(primary=primary, follower=follower):
                    try:
                        results = primary.results()
                    except BaseException as exc:
                        follower._fail(exc)
                    else:
                        follower._complete(
                            results,
                            backend=primary.backend,
                            wall_seconds=primary.wall_seconds,
                            cache_hits=primary.cache_hits,
                        )

                threading.Thread(target=_mirror, daemon=True).start()
                return follower
            follower = Job.pending(len(item.circuits), tenant=tenant)
            item.jobs.append(follower)
            self.submitted += 1
            self.deduplicated += 1
            stats.submitted += 1
            stats.deduplicated += 1
            return follower

    def _find_item(self, job: Job) -> "_WorkItem | None":
        for queue in self._scheduler._queues.values():
            for entry in queue._heap:
                if job in entry.payload.jobs:
                    return entry.payload
        return None

    # ------------------------------------------------------------------
    # Scheduler thread
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and self._scheduler.pending() == 0:
                    self._cond.wait(timeout=0.5)
                if self._stop and self._scheduler.pending() == 0:
                    return
                entry = self._scheduler.next_job()
                if entry is None:
                    continue
                tenant, queued = entry
                item: _WorkItem = queued.payload
                claimed = [job for job in item.jobs if job._mark_running()]
                stats = self._tenant(tenant)
                if not claimed:
                    # Every job of the item was cancelled while queued.
                    self.cancelled += len(item.jobs)
                    stats.cancelled += len(item.jobs)
                    self._cond.notify_all()
                    continue
                self._inflight += 1
                self.dispatched += 1
            started = time.monotonic()
            stats_before = (
                self.session.stats.cache_hits,
                self.session.stats.shared_cache_hits,
                self.session.stats.plans_built,
            )
            error = None
            inner = None
            try:
                inner = self.session.run(
                    item.circuits, execute=True, **item.run_kwargs
                )
            except BaseException as exc:  # propagate through every Job
                error = exc
            finished = time.monotonic()
            if error is None:
                results = inner.results()
                for job in claimed:
                    job._complete(
                        results,
                        backend=inner.backend,
                        wall_seconds=inner.wall_seconds,
                        cache_hits=inner.cache_hits,
                    )
            else:
                for job in claimed:
                    job._fail(error)
            with self._cond:
                self._inflight -= 1
                delta = (
                    self.session.stats.cache_hits - stats_before[0],
                    self.session.stats.shared_cache_hits - stats_before[1],
                    self.session.stats.plans_built - stats_before[2],
                )
                stats.cache_hits += delta[0]
                stats.shared_cache_hits += delta[1]
                stats.plans_built += delta[2]
                stats.wait_seconds += started - item.submitted_at
                stats.turnaround_seconds += finished - item.submitted_at
                if error is None:
                    self.completed += len(claimed)
                    stats.completed += len(claimed)
                else:
                    self.failed += len(claimed)
                    stats.failed += len(claimed)
                skipped = len(item.jobs) - len(claimed)
                if skipped:
                    self.cancelled += skipped
                    stats.cancelled += skipped
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self._tenants.get(tenant)
        if stats is None:
            stats = self._tenants[tenant] = TenantStats()
        return stats

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._scheduler.pending()

    def tenant_stats(self, tenant: str) -> TenantStats:
        with self._cond:
            return self._tenant(tenant)

    def stats(self) -> dict:
        """Snapshot of service, per-tenant, store and session counters."""
        with self._cond:
            return {
                "queue_depth": self._scheduler.pending(),
                "peak_queue_depth": self.peak_queue_depth,
                "inflight": self._inflight,
                "submitted": self.submitted,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "deduplicated": self.deduplicated,
                "tenants": {
                    name: stats.as_dict()
                    for name, stats in sorted(self._tenants.items())
                },
                "shared_store": self.store.stats.as_dict(),
                "session": self.session.stats.as_dict(),
            }

"""Priority + weighted fair-share scheduling over per-tenant job queues.

The service dispatches from one :class:`FairShareScheduler`, which
implements *deficit round-robin* (DRR) across tenants:

* Each tenant owns a queue ordered by ``(-priority, sequence)`` — higher
  ``priority`` first, FIFO within a priority level.
* The scheduler cycles through active tenants in admission order.  Each
  visit credits the tenant's *deficit* with ``quantum × weight``; the
  tenant dispatches head-of-queue jobs while its deficit covers their
  cost (cost = circuit count, so a 100-circuit batch draws 100× the
  budget of a single circuit).
* A tenant whose queue empties forfeits its remaining deficit — credit
  never accumulates while idle, so a returning tenant cannot burst past
  its share.

DRR gives each tenant with weight :math:`w_i` a long-run share of
:math:`w_i / \\sum_j w_j` of dispatched cost, and — because every active
tenant is visited once per round and every visit adds at least one
quantum — a head-of-queue job waits at most one full round per
``ceil(cost / quantum×weight)`` deficits it still needs.  No tenant can
starve another, regardless of submission rate or priority values
(priorities order jobs *within* a tenant, never across tenants).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

__all__ = ["FairShareScheduler", "QueuedJob", "TenantQueue"]


@dataclass(order=True)
class QueuedJob:
    """One pending unit of work in a tenant's queue.

    Orders by ``sort_key = (-priority, seq)``: higher priority first,
    submission order within a priority level.  ``cost`` is the job's DRR
    cost (circuit count); ``payload`` is opaque to the scheduler.
    """

    sort_key: tuple = field(init=False, repr=False)
    priority: int = field(compare=False)
    seq: int = field(compare=False)
    cost: int = field(compare=False)
    payload: object = field(compare=False)

    def __post_init__(self):
        self.sort_key = (-self.priority, self.seq)


class TenantQueue:
    """One tenant's priority queue plus its DRR state."""

    def __init__(self, tenant: str, weight: float = 1.0):
        if weight <= 0:
            raise ValueError("tenant weight must be positive")  # lint: config-error
        self.tenant = tenant
        self.weight = weight
        self.deficit = 0.0
        #: Whether the current scheduler visit already credited the
        #: quantum (one credit per visit, however many jobs it funds).
        self.visit_credited = False
        self._heap: list[QueuedJob] = []
        #: Total cost ever dispatched from this queue (fairness telemetry).
        self.dispatched_cost = 0
        self.dispatched_jobs = 0

    def push(self, job: QueuedJob) -> None:
        heapq.heappush(self._heap, job)

    def peek(self) -> "QueuedJob | None":
        return self._heap[0] if self._heap else None

    def pop(self) -> QueuedJob:
        job = heapq.heappop(self._heap)
        self.dispatched_cost += job.cost
        self.dispatched_jobs += 1
        return job

    def remove(self, job: QueuedJob) -> bool:
        """Drop *job* from the queue if still pending (cancellation)."""
        try:
            self._heap.remove(job)
        except ValueError:
            return False
        heapq.heapify(self._heap)
        return True

    def __len__(self) -> int:
        return len(self._heap)


class FairShareScheduler:
    """Deficit round-robin across tenants, priority-ordered within each.

    Not itself thread-safe: the service calls it under its own condition
    lock (one scheduler thread consumes, submitters produce).

    Parameters
    ----------
    quantum:
        Cost credited per tenant visit before weighting.  The default of 1
        makes a weight-1 tenant earn one single-circuit job per round.
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")  # lint: config-error
        self.quantum = quantum
        self._queues: dict[str, TenantQueue] = {}
        #: Round-robin cursor over tenant names (admission order).
        self._cursor = 0
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def tenant_queue(self, tenant: str, weight: float = 1.0) -> TenantQueue:
        """The queue for *tenant*, created with *weight* on first use.

        The weight is fixed at first submission; later calls ignore the
        argument so one tenant cannot re-weight itself mid-stream.
        """
        queue = self._queues.get(tenant)
        if queue is None:
            queue = TenantQueue(tenant, weight)
            self._queues[tenant] = queue
        return queue

    def enqueue(
        self, tenant: str, payload: object, *, priority: int = 0,
        cost: int = 1, weight: float = 1.0,
    ) -> QueuedJob:
        job = QueuedJob(
            priority=priority, seq=next(self._seq), cost=max(1, cost),
            payload=payload,
        )
        self.tenant_queue(tenant, weight).push(job)
        return job

    def cancel(self, tenant: str, job: QueuedJob) -> bool:
        queue = self._queues.get(tenant)
        return queue.remove(job) if queue is not None else False

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pending_for(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def next_job(self) -> "tuple[str, QueuedJob] | None":
        """Dispatch the next job under DRR, or ``None`` if all queues are
        empty.

        Terminates: every full round credits ``quantum × weight`` to each
        non-empty queue while head costs are fixed, so some head is funded
        within ``ceil(min_i (cost_i / quantum·w_i))`` rounds.
        """
        while True:
            names = list(self._queues)
            if not any(len(q) for q in self._queues.values()):
                return None
            for _ in range(len(names)):
                self._cursor %= len(names)
                queue = self._queues[names[self._cursor]]
                head = queue.peek()
                if head is None:
                    # Idle tenants forfeit accumulated credit.
                    queue.deficit = 0.0
                    queue.visit_credited = False
                    self._cursor += 1
                    continue
                # One credit per visit; the visit then drains as many head
                # jobs as the accumulated deficit funds (across successive
                # next_job calls) before the cursor moves on.
                if not queue.visit_credited:
                    queue.deficit += self.quantum * queue.weight
                    queue.visit_credited = True
                if queue.deficit >= head.cost:
                    queue.deficit -= head.cost
                    job = queue.pop()
                    nxt = queue.peek()
                    if nxt is None:
                        queue.deficit = 0.0
                    if nxt is None or queue.deficit < nxt.cost:
                        # Visit over: credit spent (or queue empty).
                        queue.visit_credited = False
                        self._cursor += 1
                    return queue.tenant, job
                queue.visit_credited = False
                self._cursor += 1

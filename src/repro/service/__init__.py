"""Multi-tenant simulation service over one shared session.

See ``docs/service.md`` for the architecture: admission control, priority
+ weighted fair-share scheduling, deferred future-backed jobs, and the
persistent cross-tenant plan cache.
"""

from .admission import AdmissionController, AdmissionPolicy
from .persistence import SharedPlanStore, SharedStoreStats
from .scheduling import FairShareScheduler, QueuedJob, TenantQueue
from .service import SimulationService, TenantStats, parse_circuit_spec

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "FairShareScheduler",
    "QueuedJob",
    "SharedPlanStore",
    "SharedStoreStats",
    "SimulationService",
    "TenantQueue",
    "TenantStats",
    "parse_circuit_spec",
]

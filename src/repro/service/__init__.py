"""Multi-tenant simulation service over one shared session.

See ``docs/service.md`` for the architecture: admission control, priority
+ weighted fair-share scheduling, deferred future-backed jobs, the
persistent cross-tenant plan cache, and the write-ahead job journal that
makes a restarted service recover every accepted job.
"""

from .admission import AdmissionController, AdmissionPolicy
from .journal import JOURNAL_VERSION, JobJournal, JournalReplay, replay_journal
from .persistence import SharedPlanStore, SharedStoreStats
from .scheduling import FairShareScheduler, QueuedJob, TenantQueue
from .service import SimulationService, TenantStats, parse_circuit_spec

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "FairShareScheduler",
    "JOURNAL_VERSION",
    "JobJournal",
    "JournalReplay",
    "QueuedJob",
    "SharedPlanStore",
    "SharedStoreStats",
    "SimulationService",
    "TenantQueue",
    "TenantStats",
    "parse_circuit_spec",
    "replay_journal",
]

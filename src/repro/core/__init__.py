"""Atlas's core contribution: hierarchical circuit partitioning (staging + kernelization)."""

from .fast_kernelize import fast_kernelize
from .greedy_kernelize import greedy_kernelize
from .kernel import Kernel, KernelSequence, KernelType
from .kernelize import KernelizeConfig, kernelize
from .ordered_kernelize import ordered_kernelize
from .partitioner import KERNELIZERS, STAGERS, PartitionReport, partition
from .plan import ExecutionPlan, QubitPartition, Stage
from .stage import StagingResult, build_staging_ilp, solve_staging, stage_circuit
from .stage_heuristics import greedy_stage_circuit, snuqs_stage_circuit

__all__ = [
    "Kernel",
    "KernelSequence",
    "KernelType",
    "KernelizeConfig",
    "kernelize",
    "fast_kernelize",
    "ordered_kernelize",
    "greedy_kernelize",
    "ExecutionPlan",
    "QubitPartition",
    "Stage",
    "StagingResult",
    "build_staging_ilp",
    "solve_staging",
    "stage_circuit",
    "snuqs_stage_circuit",
    "greedy_stage_circuit",
    "partition",
    "PartitionReport",
    "KERNELIZERS",
    "STAGERS",
]

"""Execution plan data types: qubit partitions, stages, and full plans.

A plan is the output of :func:`repro.core.partitioner.partition` —
Algorithm 1's ``stagedKernels`` — and the input to the executors in
:mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..errors import PlanValidationError
from .kernel import KernelSequence

__all__ = ["QubitPartition", "Stage", "ExecutionPlan"]


@dataclass(frozen=True)
class QubitPartition:
    """Partition of the *logical* qubits into local / regional / global sets.

    The physical mapping convention follows Definition 1 of the paper: the
    first ``L`` physical qubits are local, the next ``R`` regional, and the
    last ``G`` global.  Logical qubits are assigned to physical positions in
    ascending order within each class, which fixes a concrete
    logical→physical permutation used by the executor.
    """

    local: tuple[int, ...]
    regional: tuple[int, ...]
    global_: tuple[int, ...]

    def __post_init__(self) -> None:
        all_qubits = list(self.local) + list(self.regional) + list(self.global_)
        if len(set(all_qubits)) != len(all_qubits):
            raise PlanValidationError("qubit appears in more than one partition class")

    @classmethod
    def from_sets(
        cls, local: Iterable[int], regional: Iterable[int], global_: Iterable[int]
    ) -> "QubitPartition":
        return cls(tuple(sorted(local)), tuple(sorted(regional)), tuple(sorted(global_)))

    @property
    def num_qubits(self) -> int:
        return len(self.local) + len(self.regional) + len(self.global_)

    @property
    def num_local(self) -> int:
        return len(self.local)

    @property
    def num_regional(self) -> int:
        return len(self.regional)

    @property
    def num_global(self) -> int:
        return len(self.global_)

    def logical_to_physical(self) -> dict[int, int]:
        """Map each logical qubit to its physical position.

        Physical positions ``0..L-1`` are local, ``L..L+R-1`` regional and
        the rest global (Definition 1).
        """
        mapping: dict[int, int] = {}
        position = 0
        for group in (self.local, self.regional, self.global_):
            for logical in group:
                mapping[logical] = position
                position += 1
        return mapping

    def physical_to_logical(self) -> dict[int, int]:
        return {p: q for q, p in self.logical_to_physical().items()}

    def classify(self, logical_qubit: int) -> str:
        if logical_qubit in self.local:
            return "local"
        if logical_qubit in self.regional:
            return "regional"
        if logical_qubit in self.global_:
            return "global"
        raise PlanValidationError(f"qubit {logical_qubit} not in partition")


@dataclass
class Stage:
    """One stage: a contiguous subcircuit plus its qubit partition and kernels."""

    gates: list[Gate]
    partition: QubitPartition
    kernels: KernelSequence | None = None
    gate_indices: list[int] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def subcircuit(self, num_qubits: int, name: str = "stage") -> Circuit:
        return Circuit(num_qubits, self.gates, name=name)

    def kernel_cost(self) -> float:
        return self.kernels.total_cost if self.kernels is not None else 0.0

    def is_local(self) -> bool:
        """Whether the staging invariant holds: non-insular qubits all local."""
        local = set(self.partition.local)
        return all(set(g.non_insular_qubits()) <= local for g in self.gates)

    def validate_locality(self, stage_index: int | None = None) -> None:
        """Enforce the staging invariant: non-insular qubits are all local.

        Raises :class:`~repro.errors.PlanValidationError` naming the
        offending gate and qubit; use :meth:`is_local` for the boolean
        predicate.
        """
        local = set(self.partition.local)
        for offset, gate in enumerate(self.gates):
            bad = set(gate.non_insular_qubits()) - local
            if bad:
                raise PlanValidationError(
                    f"stage violates the locality invariant: non-insular "
                    f"qubit(s) {sorted(bad)} of gate {gate} are not in the "
                    f"stage's local set {sorted(local)}",
                    site="plan.locality",
                    stage=stage_index,
                    gate_offset=offset,
                )


@dataclass
class ExecutionPlan:
    """A fully partitioned circuit: ordered stages with kernelized gates."""

    num_qubits: int
    stages: list[Stage]
    circuit_name: str = "circuit"
    #: Planning provenance stamped by the pipeline's finalize pass: which
    #: preset and pass sequence produced the plan and which passes skipped
    #: their work.  Carried through plan-cache rebinds so every executed
    #: plan can say where it came from.
    provenance: dict[str, Any] = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_kernels(self) -> int:
        return sum(len(s.kernels) if s.kernels is not None else 0 for s in self.stages)

    @property
    def total_kernel_cost(self) -> float:
        return sum(s.kernel_cost() for s in self.stages)

    def all_gates(self) -> list[Gate]:
        out: list[Gate] = []
        for stage in self.stages:
            out.extend(stage.gates)
        return out

    def gate_count(self) -> int:
        return sum(s.num_gates for s in self.stages)

    def validate(self, circuit: Circuit) -> None:
        """Validate the plan against the original circuit.

        Checks that every gate appears exactly once, that the per-stage
        locality invariant holds, and that the stage assignment respects
        gate dependencies (a gate never appears in an earlier stage than a
        predecessor it depends on).
        """
        if self.gate_count() != len(circuit):
            raise PlanValidationError(
                f"plan covers {self.gate_count()} gates, circuit has {len(circuit)}",
                site="plan.coverage",
                plan_gates=self.gate_count(),
                circuit_gates=len(circuit),
            )
        seen: list[int] = []
        for stage_index, stage in enumerate(self.stages):
            stage.validate_locality(stage_index)
            seen.extend(stage.gate_indices)
        if sorted(seen) != list(range(len(circuit))):
            raise PlanValidationError(
                "plan does not cover every gate exactly once",
                site="plan.coverage",
                indices=sorted(seen),
            )
        if not circuit.is_topologically_equivalent(seen):
            raise PlanValidationError(
                "stage assignment violates gate dependencies",
                site="plan.dependencies",
            )

    def summary(self) -> dict[str, Any]:
        return {
            "circuit": self.circuit_name,
            "num_qubits": self.num_qubits,
            "num_stages": self.num_stages,
            "num_kernels": self.num_kernels,
            "total_kernel_cost": self.total_kernel_cost,
            "gates_per_stage": [s.num_gates for s in self.stages],
            "provenance": dict(self.provenance),
        }

"""Greedy kernel-packing baseline (Section VII-E).

The baseline the paper compares KERNELIZE against: *"greedily packs gates
into fusion kernels of up to 5 qubits, the most cost-efficient kernel size
in the cost function"*.  The packer walks the gate sequence once and adds
each gate to the current kernel if the kernel's qubit set stays within the
target width; otherwise it closes the kernel and starts a new one.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from .kernel import Kernel, KernelSequence, KernelType

__all__ = ["greedy_kernelize"]


def greedy_kernelize(
    stage: Circuit | Sequence[Gate],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_width: int | None = None,
) -> KernelSequence:
    """Greedily pack gates into fusion kernels of at most *max_width* qubits.

    ``max_width`` defaults to the cost model's most cost-efficient fusion
    width (5 qubits under the default calibration), matching the paper's
    baseline description.
    """
    gates: list[Gate] = list(stage.gates) if isinstance(stage, Circuit) else list(stage)
    if max_width is None:
        max_width = cost_model.best_fusion_width()

    kernels: list[Kernel] = []
    current: list[Gate] = []
    current_indices: list[int] = []
    current_qubits: set[int] = set()

    def flush() -> None:
        if not current:
            return
        cost = cost_model.fusion_cost(len(current_qubits))
        kernels.append(
            Kernel(
                gates=tuple(current),
                qubits=tuple(sorted(current_qubits)),
                kernel_type=KernelType.FUSION,
                cost=cost,
                gate_indices=tuple(current_indices),
            )
        )
        current.clear()
        current_indices.clear()
        current_qubits.clear()

    for idx, gate in enumerate(gates):
        gate_qubits = set(gate.qubits)
        if current and len(current_qubits | gate_qubits) > max_width:
            flush()
        current.append(gate)
        current_indices.append(idx)
        current_qubits |= gate_qubits
    flush()
    return KernelSequence(kernels=kernels)

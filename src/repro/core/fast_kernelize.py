"""FAST-KERNELIZE — the beam DP of :mod:`repro.core.kernelize` on bitmasks.

Same algorithm, same search, same answers — only faster.  The reference
implementation in :mod:`repro.core.kernelize` mirrors the paper's data
structures (frozensets for qubit sets, dataclasses for DP states), which
makes it easy to audit against Algorithms 3/4 but slow: the inner loop is
dominated by set algebra and object construction.  This module replays the
*identical* dynamic program with the cheap representations Python is good
at:

* qubit sets are **int bitmasks** (``qubits < 64`` everywhere in this
  repository), so union/intersection/subset tests are single machine ops
  and widths come from :meth:`int.bit_count`;
* an open kernel is a plain tuple carrying its gate indices, qubit mask,
  extensible mask (``-1`` standing in for the paper's ``ALLQUBITS``
  marker), running shared-memory cost, and current closing cost;
* per-position suffix masks, per-gate shm costs, and the fusion table are
  precomputed flat lists indexed by position.

Equivalence contract
--------------------
For every input and :class:`~repro.core.kernelize.KernelizeConfig` the
function explores the same beam states in the same order as the reference
(the state key, the dominance rule, the ranking estimate and the stable
sort are replicated operation for operation), so the selected kernelization
— and therefore ``KernelSequence.total_cost`` — is identical.  The
differential tests in ``tests/test_planner.py`` pin this across the circuit
library and randomized circuits; the planning pipeline's presets rely on it
when they substitute this implementation for the reference one.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from .kernel import KernelSequence
from .kernelize import KernelizeConfig, _build_kernel_sequence

__all__ = ["fast_kernelize"]


def fast_kernelize(
    stage: Circuit | Sequence[Gate],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: KernelizeConfig = KernelizeConfig(),
) -> KernelSequence:
    """Bitmask replay of :func:`repro.core.kernelize.kernelize`.

    Drop-in compatible: same signature, same result, several times faster.
    See the module docstring for the equivalence contract.
    """
    gates: list[Gate] = list(stage.gates) if isinstance(stage, Circuit) else list(stage)
    if not gates:
        return KernelSequence(kernels=[])

    max_width = config.max_kernel_width
    if max_width is None:
        max_width = max(cost_model.max_fusion_qubits, cost_model.max_shm_qubits)
    subsume = config.subsume
    beam_width = config.pruning_threshold

    # Per-gate precomputation: qubit masks and shared-memory costs.
    gate_masks: list[int] = []
    for gate in gates:
        mask = 0
        for q in gate.qubits:
            mask |= 1 << q
        gate_masks.append(mask)
    shm_gate_cost = [cost_model.gate_cost(g) for g in gates]
    shm_load = cost_model.shm_load_cost
    max_shm = cost_model.max_shm_qubits
    max_fusion = cost_model.max_fusion_qubits
    fusion_table = [cost_model.fusion_cost(w) for w in range(max_shm + 2)]
    inf = float("inf")

    def close_cost(qmask: int, shm_sum: float) -> float:
        width = qmask.bit_count()
        fusion = fusion_table[width] if width <= max_fusion else inf
        shm = shm_load + shm_sum if width <= max_shm else inf
        return fusion if fusion < shm else shm

    # Suffix qubit masks: qubits appearing at or after position i+1.
    n = len(gates)
    suffix = [0] * (n + 1)
    running = 0
    for i in range(n - 1, -1, -1):
        suffix[i + 1] = running
        running |= gate_masks[i]
    suffix[0] = running

    # A DP state is (open_kernels, closed_cost, closed, estimate) where an
    # open kernel is (gate_indices, qubit_mask, ext_mask, shm_sum, close_now);
    # ext_mask == -1 is ALLQUBITS, shm_sum is the running per-gate shared-
    # memory cost and close_now the kernel's current closing cost, refreshed
    # whenever a gate joins.  The state's estimate — closed cost plus the
    # cost of closing every open kernel right now, the reference's ranking
    # function — is therefore maintained incrementally instead of being
    # recomputed for every state at every beam sort.  The beam maps the
    # reference's state key — the sorted tuple of open kernels' gate_indices
    # — to the best state for that key.
    beam: dict[tuple, tuple] = {(): ((), 0.0, (), 0.0)}

    for i in range(n):
        gmask = gate_masks[i]
        future = suffix[i + 1]
        next_states: dict[tuple, tuple] = {}

        def consider(open_kernels: tuple, closed_cost: float, closed: tuple) -> None:
            # Close kernels that are dead (empty extensible set) or that no
            # future gate can extend — the reference's _close_dead_kernels.
            still_open = []
            open_estimate = 0.0
            for kernel in open_kernels:
                ext = kernel[2]
                reachable = future if ext == -1 else (ext & future)
                if ext == 0 or not reachable:
                    closed_cost += kernel[4]
                    closed = closed + (kernel[0],)
                else:
                    still_open.append(kernel)
                    open_estimate += kernel[4]
            open_kernels = tuple(still_open)
            key = tuple(sorted(k[0] for k in open_kernels))
            best = next_states.get(key)
            if best is None or closed_cost < best[1]:
                next_states[key] = (
                    open_kernels,
                    closed_cost,
                    closed,
                    closed_cost + open_estimate,
                )

        for state in beam.values():
            open_kernels, closed_cost, closed, _estimate = state

            acceptors = []
            subsumed = -1
            for idx, kernel in enumerate(open_kernels):
                ext = kernel[2]
                if ext == -1:
                    if (kernel[1] | gmask).bit_count() > max_width:
                        continue
                elif gmask & ~ext:
                    continue
                acceptors.append(idx)
                # Subsumption shortcut: the gate's qubits are already inside
                # this open kernel, so adding it there is never worse.
                if subsume and not (gmask & ~kernel[1]):
                    subsumed = idx
                    break

            chosen = (subsumed,) if subsumed >= 0 else acceptors
            gcost = shm_gate_cost[i]
            for idx in chosen:
                new_open = []
                for j, kernel in enumerate(open_kernels):
                    kgates, kmask, ext, ksum, _kclose = kernel
                    if j == idx:
                        if ext == -1:
                            kmask |= gmask
                        kgates += (i,)
                        ksum += gcost
                        new_open.append(
                            (kgates, kmask, ext, ksum, close_cost(kmask, ksum))
                        )
                    else:
                        # Algorithm 4's EXTQ update after the gate joined
                        # another kernel.
                        if ext == -1:
                            if kmask & gmask:
                                new_open.append(
                                    (kgates, kmask, kmask & ~gmask, ksum, _kclose)
                                )
                            else:
                                new_open.append(kernel)
                        else:
                            new_open.append(
                                (kgates, kmask, ext & ~gmask, ksum, _kclose)
                            )
                consider(tuple(new_open), closed_cost, closed)

            if subsumed < 0:
                # Start a new single-gate kernel.
                new_open = []
                for kernel in open_kernels:
                    kgates, kmask, ext, ksum, _kclose = kernel
                    if ext == -1:
                        if kmask & gmask:
                            new_open.append(
                                (kgates, kmask, kmask & ~gmask, ksum, _kclose)
                            )
                        else:
                            new_open.append(kernel)
                    else:
                        new_open.append((kgates, kmask, ext & ~gmask, ksum, _kclose))
                new_open.append(((i,), gmask, -1, gcost, close_cost(gmask, gcost)))
                consider(tuple(new_open), closed_cost, closed)

        # Beam pruning, ranked by the incrementally maintained estimate (the
        # reference's _estimate).  The stable sort runs even under the
        # threshold so that iteration order — and with it every downstream
        # tie-break — matches the reference exactly.
        ranked = sorted(next_states.items(), key=lambda item: item[1][3])
        beam = dict(ranked[:beam_width])

    best_total = inf
    best_closed: tuple = ()
    for open_kernels, closed_cost, closed, _estimate in beam.values():
        total = closed_cost
        for kernel in open_kernels:
            total += kernel[4]
        if total < best_total:
            best_total = total
            best_closed = closed + tuple(k[0] for k in open_kernels)

    return _build_kernel_sequence(gates, best_closed, cost_model)

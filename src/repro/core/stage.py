"""Circuit staging (Section IV of the paper).

The staging problem splits a circuit into at most ``s`` contiguous-in-
dependency-order stages and picks, for every stage, a partition of the
logical qubits into ``L`` local, ``R`` regional and ``G`` global qubits
such that every *non-insular* qubit of every gate of the stage is local.
Communication then happens only between stages (a qubit remapping
all-to-all), and the objective (Equation 2/3) charges 1 unit for every
qubit that newly becomes local and ``c`` units for every qubit that newly
becomes global.

This module implements:

* :func:`build_staging_ilp` — the binary ILP of Equations (3)–(11),
* :func:`solve_staging` — one solve for a fixed number of stages ``s``,
* :func:`stage_circuit` — Algorithm 2: iterate ``s = 1, 2, ...`` and return
  the first feasible (hence stage-count-minimal) solution,
* the extraction of per-stage subcircuits and qubit partitions from the
  ILP solution, including the re-insertion of fully-insular gates that the
  ILP does not need to see (an optimisation described in DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..circuits.circuit import Circuit
from ..ilp import IlpModel, SolveStatus, lin_sum, solve
from .plan import QubitPartition, Stage

__all__ = ["StagingResult", "build_staging_ilp", "solve_staging", "stage_circuit"]


@dataclass
class StagingResult:
    """Result of the staging algorithm."""

    stages: list[Stage]
    num_stages: int
    communication_cost: float
    ilp_feasible: bool
    solver_status: str = ""
    #: Wall seconds spent in the ILP iteration — model construction plus
    #: solves, infeasible candidates included (0.0 for heuristic stagers).
    solver_seconds: float = 0.0
    #: Number of ILP solves performed (infeasible stage counts included).
    num_solves: int = 0

    def partitions(self) -> list[QubitPartition]:
        return [s.partition for s in self.stages]


@dataclass
class _IlpGate:
    """A gate as seen by the ILP: only its non-insular qubits matter."""

    original_index: int
    non_insular: tuple[int, ...]
    qubits: tuple[int, ...]


def _ilp_gates(circuit: Circuit) -> list[_IlpGate]:
    """Gates with at least one non-insular qubit (the only ones the ILP must place).

    Fully-insular gates (diagonal gates, controlled-phase gates, ...) can be
    executed in any stage without affecting locality, so they are assigned
    after the solve; dropping them shrinks the ILP dramatically for
    phase-heavy circuits such as ``qft``.
    """
    out = []
    for idx, gate in enumerate(circuit):
        non_insular = gate.non_insular_qubits()
        if non_insular:
            out.append(_IlpGate(idx, non_insular, gate.qubits))
    return out


def _ilp_dependencies(circuit: Circuit, gates: Sequence[_IlpGate]) -> list[tuple[int, int]]:
    """Dependencies among the ILP gates, projected through insular gates.

    Fully-insular gates are not part of the ILP, but dependency chains that
    pass *through* them (e.g. ``h(a) → cp(a,b) → h(b)``) still constrain the
    relative stages of the surrounding non-insular gates.  This walk
    propagates, along every qubit, the set of ILP gates whose influence has
    reached the current position without crossing another ILP gate, and
    emits an edge whenever an ILP gate consumes that influence.
    """
    ilp_index = {g.original_index: r for r, g in enumerate(gates)}
    # frontier[q]: set of reduced ILP-gate indices reaching the latest gate on q.
    frontier: dict[int, frozenset[int]] = {}
    edges: set[tuple[int, int]] = set()
    for idx, gate in enumerate(circuit):
        incoming: set[int] = set()
        for q in gate.qubits:
            incoming |= frontier.get(q, frozenset())
        if idx in ilp_index:
            r = ilp_index[idx]
            for src in incoming:
                if src != r:
                    edges.add((src, r))
            carried = frozenset({r})
        else:
            carried = frozenset(incoming)
        for q in gate.qubits:
            frontier[q] = carried
    return sorted(edges)


def build_staging_ilp(
    circuit: Circuit,
    num_stages: int,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
    inter_node_cost_factor: float = 3.0,
) -> tuple[IlpModel, dict]:
    """Build the binary ILP of Equations (3)–(11).

    Returns the model plus a dictionary of the variable matrices
    (``A[q][k]``, ``B[q][k]``, ``F[g][k]``) needed to extract the staging.
    """
    n = circuit.num_qubits
    if local_qubits + regional_qubits + global_qubits != n:
        raise ValueError(
            f"L+R+G = {local_qubits + regional_qubits + global_qubits} "
            f"must equal the number of qubits ({n})"
        )
    s = num_stages
    gates = _ilp_gates(circuit)
    deps = _ilp_dependencies(circuit, gates)

    model = IlpModel(name=f"stage_{circuit.name}_s{s}")
    # A[q][k] = 1 iff logical qubit q is local at stage k;
    # B[q][k] = 1 iff it is global at stage k.
    a_vars = [[model.binary_var(f"A_{q}_{k}") for k in range(s)] for q in range(n)]
    b_vars = [[model.binary_var(f"B_{q}_{k}") for k in range(s)] for q in range(n)]
    # F[g][k] = 1 iff ILP gate g is finished by the end of stage k.
    f_vars = [[model.binary_var(f"F_{g}_{k}") for k in range(s)] for g in range(len(gates))]
    # S/T are the transition indicator variables of the objective.
    s_vars = [[model.binary_var(f"S_{q}_{k}") for k in range(s - 1)] for q in range(n)]
    t_vars = [[model.binary_var(f"T_{q}_{k}") for k in range(s - 1)] for q in range(n)]

    # Objective (3): total qubit-update cost across stage transitions.
    objective_terms = []
    for q in range(n):
        for k in range(s - 1):
            objective_terms.append(s_vars[q][k])
            objective_terms.append(inter_node_cost_factor * t_vars[q][k])
    model.minimize(lin_sum(objective_terms) if objective_terms else lin_sum([]))

    for q in range(n):
        for k in range(s - 1):
            # (4): A[q][k+1] <= A[q][k] + S[q][k]
            model.add_constraint(a_vars[q][k + 1] - a_vars[q][k] - s_vars[q][k] <= 0)
            # (5): B[q][k+1] <= B[q][k] + T[q][k]
            model.add_constraint(b_vars[q][k + 1] - b_vars[q][k] - t_vars[q][k] <= 0)

    for g in range(len(gates)):
        for k in range(s - 1):
            # (6): F[g][k] <= F[g][k+1]
            model.add_constraint(f_vars[g][k] - f_vars[g][k + 1] <= 0)
        # (7): F[g][k] <= F[g][k-1] + A[q][k] for every non-insular qubit q.
        for q in gates[g].non_insular:
            for k in range(s):
                if k == 0:
                    model.add_constraint(f_vars[g][0] - a_vars[q][0] <= 0)
                else:
                    model.add_constraint(f_vars[g][k] - f_vars[g][k - 1] - a_vars[q][k] <= 0)
        # (9): F[g][s-1] = 1
        model.add_eq(f_vars[g][s - 1], 1)

    # (8): dependency order — if g2 is finished by stage k, so is g1.
    for g1, g2 in deps:
        for k in range(s):
            model.add_constraint(f_vars[g2][k] - f_vars[g1][k] <= 0)

    for q in range(n):
        for k in range(s):
            # (10): a qubit cannot be local and global at the same time.
            model.add_constraint(a_vars[q][k] + b_vars[q][k] <= 1)
    for k in range(s):
        # (11): exactly L local and G global qubits at each stage.
        model.add_eq(lin_sum([a_vars[q][k] for q in range(n)]), local_qubits)
        model.add_eq(lin_sum([b_vars[q][k] for q in range(n)]), global_qubits)

    variables = {"A": a_vars, "B": b_vars, "F": f_vars, "S": s_vars, "T": t_vars, "gates": gates}
    return model, variables


def solve_staging(
    circuit: Circuit,
    num_stages: int,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
    inter_node_cost_factor: float = 3.0,
    backend: str = "scipy",
    time_limit: float | None = 120.0,
) -> StagingResult | None:
    """Solve the staging ILP for a fixed stage count; ``None`` if infeasible."""
    model, variables = build_staging_ilp(
        circuit, num_stages, local_qubits, regional_qubits, global_qubits,
        inter_node_cost_factor,
    )
    solution = solve(model, backend=backend, time_limit=time_limit)
    if not solution.status.is_feasible:
        return None
    return _extract_stages(circuit, num_stages, variables, solution,
                           local_qubits, regional_qubits, global_qubits)


def _extract_stages(
    circuit: Circuit,
    num_stages: int,
    variables: dict,
    solution,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
) -> StagingResult:
    """Turn an ILP solution into per-stage subcircuits and qubit partitions."""
    n = circuit.num_qubits
    a_vars, b_vars, f_vars = variables["A"], variables["B"], variables["F"]
    ilp_gates = variables["gates"]

    partitions: list[QubitPartition] = []
    for k in range(num_stages):
        local = {q for q in range(n) if solution.int_value(a_vars[q][k]) == 1}
        global_ = {q for q in range(n) if solution.int_value(b_vars[q][k]) == 1}
        regional = set(range(n)) - local - global_
        partitions.append(QubitPartition.from_sets(local, regional, global_))

    # Stage index of each ILP gate: min{k | F[g][k] = 1}.
    ilp_stage_of_gate: dict[int, int] = {}
    for g, gate in enumerate(ilp_gates):
        for k in range(num_stages):
            if solution.int_value(f_vars[g][k]) == 1:
                ilp_stage_of_gate[gate.original_index] = k
                break

    # Assign every gate (including fully-insular ones) to a stage.  Insular
    # gates go to the latest stage of any predecessor on their qubits, which
    # always exists between their neighbours' stages.
    stage_of_gate: list[int] = [0] * len(circuit)
    last_stage_on_qubit = [0] * n
    for idx, gate in enumerate(circuit):
        if idx in ilp_stage_of_gate:
            k = ilp_stage_of_gate[idx]
        else:
            k = max((last_stage_on_qubit[q] for q in gate.qubits), default=0)
        stage_of_gate[idx] = k
        for q in gate.qubits:
            last_stage_on_qubit[q] = max(last_stage_on_qubit[q], k)

    stages: list[Stage] = []
    for k in range(num_stages):
        indices = [i for i, sk in enumerate(stage_of_gate) if sk == k]
        gates = [circuit[i] for i in indices]
        stages.append(Stage(gates=gates, partition=partitions[k], gate_indices=indices))

    cost = float(solution.objective) if solution.objective is not None else 0.0
    return StagingResult(
        stages=stages,
        num_stages=num_stages,
        communication_cost=cost,
        ilp_feasible=True,
        solver_status=solution.status.value,
    )


def stage_circuit(
    circuit: Circuit,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
    inter_node_cost_factor: float = 3.0,
    backend: str = "scipy",
    max_stages: int = 32,
    time_limit: float | None = 120.0,
    min_stages: int = 1,
) -> StagingResult:
    """Algorithm 2: find the minimum feasible number of stages via the ILP.

    ``min_stages`` starts the iteration higher than 1 when the caller has a
    *provable* lower bound on the stage count (the planning pipeline passes
    ``ceil(|U| / L)``, valid because ``s`` stages expose at most ``s * L``
    distinct local qubits and every qubit of the non-insular union ``U``
    must be local in some stage); stage counts below a correct bound are
    infeasible, so skipping their solves cannot change the result.

    Raises :class:`RuntimeError` if no feasible staging exists within
    ``max_stages`` (which would indicate a circuit/architecture mismatch,
    e.g. a single gate with more non-insular qubits than ``L``).
    """
    if min_stages < 1:
        raise ValueError("min_stages must be at least 1")
    solver_seconds = 0.0
    num_solves = 0
    for s in range(min_stages, max_stages + 1):
        start = time.perf_counter()
        result = solve_staging(
            circuit, s, local_qubits, regional_qubits, global_qubits,
            inter_node_cost_factor, backend=backend, time_limit=time_limit,
        )
        solver_seconds += time.perf_counter() - start
        num_solves += 1
        if result is not None:
            result.solver_seconds = solver_seconds
            result.num_solves = num_solves
            return result
    raise RuntimeError(
        f"no feasible staging of {circuit.name!r} within {max_stages} stages "
        f"(L={local_qubits}, R={regional_qubits}, G={global_qubits})"
    )

"""KERNELIZE — the dynamic-programming kernelizer (Section V / VI of the paper).

The kernelizer partitions the gate sequence of one stage into kernels so
that the summed kernel cost (Equation 12) is minimised, while every kernel
respects Constraint 1 (weak convexity + monotonicity), which guarantees that
the kernels can be ordered into a sequence topologically equivalent to the
original circuit (Theorem 2).

Implementation notes
--------------------
The DP follows the paper's implementation strategy (Section VI-A):

* the state tracks, for every *open* kernel, its qubit set and its
  *extensible qubit set* (Definition 3), maintained incrementally with
  Algorithm 4;
* kernels whose extensible set becomes empty — or can no longer intersect
  any future gate — are closed immediately and their cost added;
* the gate-subsumption optimisation (Appendix B-b) collapses the branching
  when a gate's qubits are already contained in an open kernel;
* a beam-pruning threshold ``T`` (Appendix B-f) bounds the number of DP
  states kept per position, ranked by accumulated cost plus a
  post-processing estimate of the open kernels' cost.

Two deliberate simplifications relative to the C++ implementation are
documented in DESIGN.md: the fusion/shared-memory decision is made when a
kernel is *closed* (taking the cheaper strategy) rather than being part of
the DP state, and the insular-qubit relaxations of Appendix B-a are not
applied inside the kernelizer (they are applied by the stager).  Both keep
the search space smaller; the pruning threshold plays the same quality/time
role as in the paper (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from .kernel import Kernel, KernelSequence

__all__ = ["kernelize", "KernelizeConfig"]


@dataclass(frozen=True)
class KernelizeConfig:
    """Tuning knobs of the DP kernelizer."""

    #: Beam width T (Appendix B-f).  The paper uses 500 in C++; the default
    #: here balances Python runtime against plan quality; Figure 13's
    #: ablation sweeps this value.
    pruning_threshold: int = 100
    #: Hard cap on kernel width (qubits); kernels wider than the shared-
    #: memory limit can never be cheaper, so they are not explored.
    max_kernel_width: int | None = None
    #: Enable the subsumption shortcut (Appendix B-b).
    subsume: bool = True


@dataclass(frozen=True)
class _OpenKernel:
    """An open kernel in a DP state.

    ``extensible`` of ``None`` denotes the paper's ``ALLQUBITS`` marker.
    """

    gate_indices: tuple[int, ...]
    qubits: frozenset[int]
    extensible: frozenset[int] | None

    def can_accept(self, gate_qubits: frozenset[int], max_width: int) -> bool:
        if self.extensible is None:
            return len(self.qubits | gate_qubits) <= max_width
        return gate_qubits <= self.extensible

    def accept(self, gate_index: int, gate_qubits: frozenset[int]) -> "_OpenKernel":
        if self.extensible is None:
            return _OpenKernel(
                self.gate_indices + (gate_index,), self.qubits | gate_qubits, None
            )
        # Monotonicity already applied: qubit set is frozen.
        return _OpenKernel(self.gate_indices + (gate_index,), self.qubits, self.extensible)

    def observe_other_gate(self, gate_qubits: frozenset[int]) -> "_OpenKernel":
        """Algorithm 4, lines 6–13: update EXTQ after a gate joined another kernel."""
        if self.extensible is None:
            if self.qubits & gate_qubits:
                return _OpenKernel(self.gate_indices, self.qubits, self.qubits - gate_qubits)
            return self
        return _OpenKernel(self.gate_indices, self.qubits, self.extensible - gate_qubits)

    @property
    def is_dead(self) -> bool:
        return self.extensible is not None and not self.extensible


@dataclass
class _DpState:
    """One DP state: the open kernels plus everything already closed."""

    open_kernels: tuple[_OpenKernel, ...]
    closed_cost: float
    closed: tuple[tuple[int, ...], ...]

    def key(self) -> tuple:
        return tuple(sorted(k.gate_indices for k in self.open_kernels))


class _CostCache:
    """Precomputed per-gate costs so the DP's inner loop never touches matrices."""

    def __init__(self, gates: Sequence[Gate], cost_model: CostModel):
        self.cost_model = cost_model
        self.gate_shm_cost = [cost_model.gate_cost(g) for g in gates]
        self.shm_load = cost_model.shm_load_cost
        self.max_shm = cost_model.max_shm_qubits
        self.fusion = [cost_model.fusion_cost(w) for w in range(cost_model.max_shm_qubits + 2)]
        self.max_fusion = cost_model.max_fusion_qubits

    def close_cost(self, gate_indices: Sequence[int], qubits: frozenset[int]) -> float:
        width = len(qubits)
        fusion = self.fusion[width] if width <= self.max_fusion else float("inf")
        if width <= self.max_shm:
            shm = self.shm_load + sum(self.gate_shm_cost[i] for i in gate_indices)
        else:
            shm = float("inf")
        return min(fusion, shm)


def _close_dead_kernels(
    state: _DpState,
    future_qubits: frozenset[int],
    costs: _CostCache,
) -> _DpState:
    """Close kernels that can no longer accept any future gate."""
    still_open: list[_OpenKernel] = []
    closed = list(state.closed)
    cost = state.closed_cost
    for kernel in state.open_kernels:
        ext = kernel.extensible
        reachable = future_qubits if ext is None else (ext & future_qubits)
        if kernel.is_dead or not reachable:
            cost += costs.close_cost(kernel.gate_indices, kernel.qubits)
            closed.append(kernel.gate_indices)
        else:
            still_open.append(kernel)
    if len(still_open) == len(state.open_kernels):
        return state
    return _DpState(tuple(still_open), cost, tuple(closed))


def _estimate(state: _DpState, costs: _CostCache) -> float:
    """Lower-ish bound used for beam ranking: closed cost + open kernels' cost now."""
    total = state.closed_cost
    for kernel in state.open_kernels:
        total += costs.close_cost(kernel.gate_indices, kernel.qubits)
    return total


def kernelize(
    stage: Circuit | Sequence[Gate],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    config: KernelizeConfig = KernelizeConfig(),
) -> KernelSequence:
    """Partition a gate sequence into kernels with the DP of Algorithm 3.

    Parameters
    ----------
    stage:
        The gate sequence of one stage (a :class:`Circuit` or a plain list
        of gates).
    cost_model:
        Kernel cost model (Equation 12's ``COST``).
    config:
        DP tuning knobs (beam width, kernel width cap).

    Returns
    -------
    KernelSequence
        Kernels in a valid execution order (topologically equivalent to the
        input sequence), each tagged with its execution strategy and cost.
    """
    gates: list[Gate] = list(stage.gates) if isinstance(stage, Circuit) else list(stage)
    if not gates:
        return KernelSequence(kernels=[])

    max_width = config.max_kernel_width
    if max_width is None:
        max_width = max(cost_model.max_fusion_qubits, cost_model.max_shm_qubits)

    costs = _CostCache(gates, cost_model)

    # Suffix qubit sets: qubits appearing at or after position i+1, used to
    # close kernels early once nothing can extend them.
    suffix: list[frozenset[int]] = [frozenset()] * (len(gates) + 1)
    running: set[int] = set()
    for i in range(len(gates) - 1, -1, -1):
        suffix[i + 1] = frozenset(running)
        running.update(gates[i].qubits)
    suffix[0] = frozenset(running)

    beam: dict[tuple, _DpState] = {(): _DpState((), 0.0, ())}

    for i, gate in enumerate(gates):
        gate_qubits = frozenset(gate.qubits)
        next_states: dict[tuple, _DpState] = {}

        def consider(state: _DpState) -> None:
            state = _close_dead_kernels(state, suffix[i + 1], costs)
            key = state.key()
            best = next_states.get(key)
            if best is None or state.closed_cost < best.closed_cost:
                next_states[key] = state

        for state in beam.values():
            acceptors = [
                idx
                for idx, kernel in enumerate(state.open_kernels)
                if kernel.can_accept(gate_qubits, max_width)
            ]

            # Subsumption shortcut: if an open kernel already contains all of
            # the gate's qubits, adding the gate there is never worse.
            subsumed = None
            if config.subsume:
                for idx in acceptors:
                    if gate_qubits <= state.open_kernels[idx].qubits:
                        subsumed = idx
                        break

            chosen_acceptors = [subsumed] if subsumed is not None else acceptors
            for idx in chosen_acceptors:
                new_open = []
                for j, kernel in enumerate(state.open_kernels):
                    if j == idx:
                        new_open.append(kernel.accept(i, gate_qubits))
                    else:
                        new_open.append(kernel.observe_other_gate(gate_qubits))
                consider(_DpState(tuple(new_open), state.closed_cost, state.closed))

            if subsumed is None:
                # Start a new single-gate kernel.
                new_open = [k.observe_other_gate(gate_qubits) for k in state.open_kernels]
                new_open.append(_OpenKernel((i,), gate_qubits, None))
                consider(_DpState(tuple(new_open), state.closed_cost, state.closed))

        # Beam pruning (Appendix B-f).
        states = sorted(next_states.values(), key=lambda s: _estimate(s, costs))
        states = states[: config.pruning_threshold]
        beam = {s.key(): s for s in states}

    # Close everything that is still open and pick the best state.
    best_total = float("inf")
    best_closed: tuple[tuple[int, ...], ...] = ()
    for state in beam.values():
        total = state.closed_cost
        closed = list(state.closed)
        for kernel in state.open_kernels:
            total += costs.close_cost(kernel.gate_indices, kernel.qubits)
            closed.append(kernel.gate_indices)
        if total < best_total:
            best_total = total
            best_closed = tuple(closed)

    return _build_kernel_sequence(gates, best_closed, cost_model)


def _build_kernel_sequence(
    gates: Sequence[Gate],
    kernel_gate_indices: Sequence[tuple[int, ...]],
    cost_model: CostModel,
) -> KernelSequence:
    """Order the kernels topologically and materialise :class:`Kernel` objects."""
    # Kernel dependency DAG: kernel A must run before kernel B if some gate
    # of A precedes a gate of B on a shared qubit (in the original order).
    owner: dict[int, int] = {}
    for k_idx, indices in enumerate(kernel_gate_indices):
        for gi in indices:
            owner[gi] = k_idx

    dag = nx.DiGraph()
    dag.add_nodes_from(range(len(kernel_gate_indices)))
    last_gate_on_qubit: dict[int, int] = {}
    for gi in sorted(owner):
        gate = gates[gi]
        for q in gate.qubits:
            prev = last_gate_on_qubit.get(q)
            if prev is not None and owner[prev] != owner[gi]:
                dag.add_edge(owner[prev], owner[gi])
            last_gate_on_qubit[q] = gi

    try:
        order = list(nx.lexicographical_topological_sort(dag))
    except nx.NetworkXUnfeasible as exc:  # pragma: no cover - Constraint 1 prevents this
        raise RuntimeError("kernelization produced cyclic kernel dependencies") from exc

    kernels: list[Kernel] = []
    for k_idx in order:
        indices = sorted(kernel_gate_indices[k_idx])
        kernel_gates = [gates[i] for i in indices]
        kernels.append(Kernel.from_gates(kernel_gates, cost_model, gate_indices=indices))
    return KernelSequence(kernels=kernels)

"""Kernel data types.

A *kernel* is a group of gates executed together on one GPU: either as a
single fused matrix ("fusion" kernel) or gate-by-gate out of GPU shared
memory ("shm" kernel) — Section VI-B of the paper.  Kernels are produced by
the kernelization algorithms in :mod:`repro.core.kernelize`,
:mod:`repro.core.ordered_kernelize` and :mod:`repro.core.greedy_kernelize`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..circuits.gates import Gate
from ..cluster.costmodel import CostModel

__all__ = ["KernelType", "Kernel", "KernelSequence"]


class KernelType(enum.Enum):
    """Execution strategy of a kernel."""

    FUSION = "fusion"
    SHM = "shm"


@dataclass(frozen=True)
class Kernel:
    """A group of gates executed as one GPU kernel.

    Attributes
    ----------
    gates:
        The gates in the kernel, in a valid execution order.
    qubits:
        Sorted union of the gates' qubits.
    kernel_type:
        Fusion or shared-memory execution strategy.
    cost:
        Modelled execution cost (cost units of the cost model used to build
        the kernel plan).
    gate_indices:
        Indices of the gates in the original (stage) gate sequence, used by
        tests to check topological equivalence.
    """

    gates: tuple[Gate, ...]
    qubits: tuple[int, ...]
    kernel_type: KernelType
    cost: float
    gate_indices: tuple[int, ...] = field(default_factory=tuple)

    @classmethod
    def from_gates(
        cls,
        gates: Sequence[Gate],
        cost_model: CostModel,
        gate_indices: Sequence[int] = (),
    ) -> "Kernel":
        """Build a kernel from *gates*, picking the cheaper execution strategy."""
        qubits: set[int] = set()
        for gate in gates:
            qubits.update(gate.qubits)
        kc = cost_model.kernel_cost(list(gates), qubits)
        ktype = KernelType.FUSION if kc.kernel_type == "fusion" else KernelType.SHM
        return cls(
            gates=tuple(gates),
            qubits=tuple(sorted(qubits)),
            kernel_type=ktype,
            cost=kc.cost,
            gate_indices=tuple(gate_indices),
        )

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def __len__(self) -> int:
        return len(self.gates)


@dataclass
class KernelSequence:
    """An ordered sequence of kernels covering one stage's gates."""

    kernels: list[Kernel]

    @property
    def total_cost(self) -> float:
        return sum(k.cost for k in self.kernels)

    @property
    def num_gates(self) -> int:
        return sum(k.num_gates for k in self.kernels)

    def __iter__(self):
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def all_gate_indices(self) -> list[int]:
        out: list[int] = []
        for k in self.kernels:
            out.extend(k.gate_indices)
        return out

    def widths(self) -> list[int]:
        return [k.num_qubits for k in self.kernels]

"""ORDERED-KERNELIZE — the contiguous-segment DP (Appendix A, Algorithm 5).

This simpler kernelizer only considers kernels that are contiguous segments
of the input gate sequence.  ``DP[i]`` stores the minimum cost of
kernelizing the first ``i`` gates; the transition tries every kernel ending
at position ``i``.  Its cost is never lower than KERNELIZE's (Theorem 6)
— the paper labels it "Atlas-Naive" in Figures 13–25 — but it is a useful
optimality reference for small circuits and a second implementation to
cross-check against.

The inner loop stops extending a candidate segment once its qubit width
exceeds every strategy's limit, which keeps the practical complexity well
below the worst-case ``O(|C|²)``.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from .kernel import Kernel, KernelSequence

__all__ = ["ordered_kernelize"]


def ordered_kernelize(
    stage: Circuit | Sequence[Gate],
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> KernelSequence:
    """Optimal kernelization over contiguous gate segments (Algorithm 5)."""
    gates: list[Gate] = list(stage.gates) if isinstance(stage, Circuit) else list(stage)
    if not gates:
        return KernelSequence(kernels=[])

    max_width = max(cost_model.max_fusion_qubits, cost_model.max_shm_qubits)
    n = len(gates)
    # Precompute per-gate shared-memory costs so the O(n * window) inner loop
    # stays matrix-free.
    gate_shm_cost = [cost_model.gate_cost(g) for g in gates]
    fusion_cost = [
        cost_model.fusion_cost(w) for w in range(max_width + 2)
    ]

    # dp[i] = (cost, split point j) meaning the last kernel is gates[j:i].
    dp_cost = [float("inf")] * (n + 1)
    dp_prev = [0] * (n + 1)
    dp_cost[0] = 0.0

    for i in range(1, n + 1):
        qubits: set[int] = set()
        shm_sum = 0.0
        num_gates_in_segment = 0
        # Grow the candidate kernel backwards from position i-1.
        for j in range(i - 1, -1, -1):
            qubits.update(gates[j].qubits)
            shm_sum += gate_shm_cost[j]
            num_gates_in_segment += 1
            width = len(qubits)
            if width > max_width and num_gates_in_segment > 1:
                break
            fus = fusion_cost[width] if width <= cost_model.max_fusion_qubits else float("inf")
            shm = (
                cost_model.shm_load_cost + shm_sum
                if width <= cost_model.max_shm_qubits
                else float("inf")
            )
            cost = min(fus, shm)
            total = dp_cost[j] + cost
            if total < dp_cost[i]:
                dp_cost[i] = total
                dp_prev[i] = j

    # Reconstruct the segment boundaries.
    boundaries: list[tuple[int, int]] = []
    i = n
    while i > 0:
        j = dp_prev[i]
        boundaries.append((j, i))
        i = j
    boundaries.reverse()

    kernels = [
        Kernel.from_gates(gates[a:b], cost_model, gate_indices=range(a, b))
        for a, b in boundaries
    ]
    return KernelSequence(kernels=kernels)

"""PARTITION — hierarchical partitioning (Algorithm 1 of the paper).

:func:`partition` glues the two levels of the hierarchy together: it stages
the circuit (ILP, Section IV) and then kernelizes every stage's subcircuit
(DP, Section V), returning an :class:`~repro.core.plan.ExecutionPlan` that
the executors in :mod:`repro.runtime` can run and the performance model can
time.

Since the planning pipeline refactor the function is a thin compatibility
wrapper over :mod:`repro.planner`: the legacy knobs (``stager=``,
``kernelizer=``, ``kernelize_config=``) map onto a fixed
:class:`~repro.planner.PassManager` pipeline via
:func:`repro.planner.legacy_pipeline`.  New code should prefer
:func:`repro.planner.build_plan` (or ``Session(planner=...)``), which adds
named presets, per-pass telemetry, refinement, and time budgets.

The module-level :data:`KERNELIZERS` / :data:`STAGERS` dictionaries are the
historical registries of the raw strategy functions, kept for backward
compatibility; the pipeline's extensible registries live in
:data:`repro.planner.KERNELIZERS` / :data:`repro.planner.STAGERS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from .greedy_kernelize import greedy_kernelize
from .kernelize import KernelizeConfig, kernelize
from .ordered_kernelize import ordered_kernelize
from .plan import ExecutionPlan
from .stage import stage_circuit
from .stage_heuristics import snuqs_stage_circuit

__all__ = ["partition", "PartitionReport", "KERNELIZERS", "STAGERS"]

#: Historical registry of the raw kernelization functions, keyed by the
#: names used in the paper's figures ("atlas" = KERNELIZE, "atlas-naive" =
#: ORDERED-KERNELIZE, "greedy" = the 5-qubit packing baseline).  The
#: pipeline registry (:data:`repro.planner.KERNELIZERS`) additionally
#: carries "atlas" as the fast bitmask implementation and "atlas-ref" as
#: this reference one.
KERNELIZERS = {
    "atlas": kernelize,
    "atlas-naive": ordered_kernelize,
    "greedy": greedy_kernelize,
}

#: Historical registry of the raw staging functions ("ilp" = Atlas,
#: "snuqs" = the greedy baseline); see :data:`repro.planner.STAGERS` for
#: the pipeline registry.
STAGERS = {
    "ilp": stage_circuit,
    "snuqs": snuqs_stage_circuit,
}


@dataclass
class PartitionReport:
    """Timing, size and telemetry metadata of one planning run.

    The first six fields are the original report (paper Section VII-A-b);
    the rest carry the pipeline's per-pass telemetry: which preset and
    passes produced the plan, how long each pass took, which passes skipped
    their work and why, and each pass's quality metrics (stage counts,
    per-stage kernel costs, refinement savings, ...).
    """

    staging_seconds: float
    kernelization_seconds: float
    num_stages: int
    num_kernels: int
    communication_cost: float
    total_kernel_cost: float
    #: Preset name that produced the plan ("" for legacy/custom pipelines).
    preset: str = ""
    #: Pass names in run order ("" pipelines included).
    pipeline: tuple[str, ...] = ()
    #: Wall seconds per pass, in run order.
    pass_seconds: dict[str, float] = field(default_factory=dict)
    #: Skipped pass name -> why it skipped its work (e.g. the stage pass
    #: after the fits-locally shortcut).
    passes_skipped: dict[str, str] = field(default_factory=dict)
    #: Pass name -> that pass's metrics dictionary.
    pass_metrics: dict[str, dict] = field(default_factory=dict)

    @property
    def preprocessing_seconds(self) -> float:
        return self.staging_seconds + self.kernelization_seconds

    @property
    def planning_seconds(self) -> float:
        """Total pipeline wall time (falls back to staging + kernelize)."""
        if self.pass_seconds:
            return sum(self.pass_seconds.values())
        return self.preprocessing_seconds

    def as_dict(self) -> dict:
        return {
            "staging_seconds": self.staging_seconds,
            "kernelization_seconds": self.kernelization_seconds,
            "planning_seconds": self.planning_seconds,
            "num_stages": self.num_stages,
            "num_kernels": self.num_kernels,
            "communication_cost": self.communication_cost,
            "total_kernel_cost": self.total_kernel_cost,
            "preset": self.preset,
            "pipeline": list(self.pipeline),
            "pass_seconds": dict(self.pass_seconds),
            "passes_skipped": dict(self.passes_skipped),
        }


def partition(
    circuit: Circuit,
    machine: MachineConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stager: str = "ilp",
    kernelizer: str = "atlas",
    kernelize_config: KernelizeConfig | None = None,
    ilp_backend: str = "scipy",
    ilp_time_limit: float | None = 120.0,
) -> tuple[ExecutionPlan, PartitionReport]:
    """Hierarchically partition *circuit* for execution on *machine*.

    Parameters
    ----------
    circuit:
        The input circuit.
    machine:
        Architecture parameters (``L``, ``R``, ``G``); must satisfy
        ``L + R + G == circuit.num_qubits``.
    cost_model:
        Kernel cost model used by the kernelizer.
    stager:
        ``"ilp"`` (Atlas) or ``"snuqs"`` (greedy baseline).
    kernelizer:
        ``"atlas"`` (KERNELIZE), ``"atlas-naive"`` (ORDERED-KERNELIZE) or
        ``"greedy"`` (5-qubit packing baseline).
    kernelize_config:
        Optional tuning knobs for the DP kernelizer.
    ilp_backend, ilp_time_limit:
        Passed through to the staging ILP solver.

    Returns
    -------
    (plan, report):
        The execution plan plus preprocessing statistics.
    """
    # Imported here: repro.planner imports this module for PartitionReport.
    from ..planner.pipeline import legacy_pipeline

    machine.validate(circuit.num_qubits)
    manager = legacy_pipeline(
        stager=stager,
        kernelizer=kernelizer,
        kernelize_config=kernelize_config,
        ilp_backend=ilp_backend,
        ilp_time_limit=ilp_time_limit,
    )
    return manager.run(circuit, machine, cost_model=cost_model)

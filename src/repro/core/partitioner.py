"""PARTITION — hierarchical partitioning (Algorithm 1 of the paper).

``partition`` glues the two levels of the hierarchy together: it stages the
circuit (ILP, Section IV) and then kernelizes every stage's subcircuit
(DP, Section V), returning an :class:`~repro.core.plan.ExecutionPlan` that
the executors in :mod:`repro.runtime` can run and the performance model can
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from .greedy_kernelize import greedy_kernelize
from .kernelize import KernelizeConfig, kernelize
from .ordered_kernelize import ordered_kernelize
from .plan import ExecutionPlan
from .stage import stage_circuit
from .stage_heuristics import snuqs_stage_circuit

__all__ = ["partition", "PartitionReport", "KERNELIZERS", "STAGERS"]

#: Available kernelization strategies, keyed by the names used in the
#: paper's figures ("atlas" = KERNELIZE, "atlas-naive" = ORDERED-KERNELIZE,
#: "greedy" = the 5-qubit packing baseline).
KERNELIZERS = {
    "atlas": kernelize,
    "atlas-naive": ordered_kernelize,
    "greedy": greedy_kernelize,
}

#: Available staging strategies ("ilp" = Atlas, "snuqs" = the greedy baseline).
STAGERS = {
    "ilp": stage_circuit,
    "snuqs": snuqs_stage_circuit,
}


@dataclass
class PartitionReport:
    """Timing and size metadata of one partitioning run (paper Section VII-A-b)."""

    staging_seconds: float
    kernelization_seconds: float
    num_stages: int
    num_kernels: int
    communication_cost: float
    total_kernel_cost: float

    @property
    def preprocessing_seconds(self) -> float:
        return self.staging_seconds + self.kernelization_seconds


def partition(
    circuit: Circuit,
    machine: MachineConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    stager: str = "ilp",
    kernelizer: str = "atlas",
    kernelize_config: KernelizeConfig | None = None,
    ilp_backend: str = "scipy",
    ilp_time_limit: float | None = 120.0,
) -> tuple[ExecutionPlan, PartitionReport]:
    """Hierarchically partition *circuit* for execution on *machine*.

    Parameters
    ----------
    circuit:
        The input circuit.
    machine:
        Architecture parameters (``L``, ``R``, ``G``); must satisfy
        ``L + R + G == circuit.num_qubits``.
    cost_model:
        Kernel cost model used by the kernelizer.
    stager:
        ``"ilp"`` (Atlas) or ``"snuqs"`` (greedy baseline).
    kernelizer:
        ``"atlas"`` (KERNELIZE), ``"atlas-naive"`` (ORDERED-KERNELIZE) or
        ``"greedy"`` (5-qubit packing baseline).
    kernelize_config:
        Optional tuning knobs for the DP kernelizer.
    ilp_backend, ilp_time_limit:
        Passed through to the staging ILP solver.

    Returns
    -------
    (plan, report):
        The execution plan plus preprocessing statistics.
    """
    machine.validate(circuit.num_qubits)
    if stager not in STAGERS:
        raise ValueError(f"unknown stager {stager!r}; known: {sorted(STAGERS)}")
    if kernelizer not in KERNELIZERS:
        raise ValueError(f"unknown kernelizer {kernelizer!r}; known: {sorted(KERNELIZERS)}")

    t0 = time.perf_counter()
    if stager == "ilp":
        staging = stage_circuit(
            circuit,
            machine.local_qubits,
            machine.regional_qubits,
            machine.global_qubits,
            inter_node_cost_factor=machine.inter_node_cost_factor,
            backend=ilp_backend,
            time_limit=ilp_time_limit,
        )
    else:
        staging = snuqs_stage_circuit(
            circuit,
            machine.local_qubits,
            machine.regional_qubits,
            machine.global_qubits,
            inter_node_cost_factor=machine.inter_node_cost_factor,
        )
    staging_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    kernelizer_fn = KERNELIZERS[kernelizer]
    for stage in staging.stages:
        if kernelizer == "atlas" and kernelize_config is not None:
            stage.kernels = kernelizer_fn(stage.gates, cost_model, kernelize_config)
        else:
            stage.kernels = kernelizer_fn(stage.gates, cost_model)
    kernelization_seconds = time.perf_counter() - t1

    plan = ExecutionPlan(
        num_qubits=circuit.num_qubits,
        stages=staging.stages,
        circuit_name=circuit.name,
    )
    report = PartitionReport(
        staging_seconds=staging_seconds,
        kernelization_seconds=kernelization_seconds,
        num_stages=plan.num_stages,
        num_kernels=plan.num_kernels,
        communication_cost=staging.communication_cost,
        total_kernel_cost=plan.total_kernel_cost,
    )
    return plan, report

"""Heuristic circuit staging baselines.

The paper compares its ILP-based staging against the greedy heuristic used
by SnuQS (Section VII-D, Figures 9 and 12): *"greedily selects the qubits
with more gates operating on non-local gates to form a stage and uses the
number of total gates as a tiebreaker"*.  This module re-implements that
heuristic (:func:`snuqs_stage_circuit`) on our circuit IR so that the
ablation benchmarks can regenerate those figures, plus a trivial
``one-gate-per-stage-boundary`` greedy used in tests as a lower-quality
reference point.
"""

from __future__ import annotations

from ..circuits.circuit import Circuit
from .plan import QubitPartition, Stage
from .stage import StagingResult

__all__ = ["snuqs_stage_circuit", "greedy_stage_circuit"]


def _select_qubits(
    circuit: Circuit,
    remaining: list[int],
    local_qubits: int,
    regional_qubits: int,
    force_local: set[int] | None = None,
) -> QubitPartition:
    """Pick the local/regional/global sets for the next stage.

    SnuQS-style scoring: a qubit scores one point for every remaining gate
    whose *non-insular* qubits include it (those are the gates that force
    locality); ties are broken by the total number of remaining gates
    touching the qubit, then by qubit index for determinism.  Qubits in
    *force_local* are placed in the local set unconditionally (used to
    guarantee forward progress when the scoring alone deadlocks).
    """
    n = circuit.num_qubits
    non_insular_count = [0] * n
    total_count = [0] * n
    for idx in remaining:
        gate = circuit[idx]
        for q in gate.non_insular_qubits():
            non_insular_count[q] += 1
        for q in gate.qubits:
            total_count[q] += 1
    forced = force_local or set()
    order = sorted(
        range(n),
        key=lambda q: (q not in forced, -non_insular_count[q], -total_count[q], q),
    )
    local = order[:local_qubits]
    regional = order[local_qubits : local_qubits + regional_qubits]
    global_ = order[local_qubits + regional_qubits :]
    return QubitPartition.from_sets(local, regional, global_)


def _take_stage(circuit: Circuit, remaining: list[int], local: set[int]) -> list[int]:
    """Greedily take the longest dependency-respecting prefix executable locally.

    Scans the remaining gates in order; a gate is taken if all its
    non-insular qubits are local and none of its qubits have been blocked by
    an earlier skipped gate (skipping a gate blocks its qubits, otherwise
    dependencies would be violated).
    """
    taken: list[int] = []
    blocked: set[int] = set()
    for idx in remaining:
        gate = circuit[idx]
        if blocked & set(gate.qubits):
            blocked.update(gate.qubits)
            continue
        if set(gate.non_insular_qubits()) <= local:
            taken.append(idx)
        else:
            blocked.update(gate.qubits)
    return taken


def snuqs_stage_circuit(
    circuit: Circuit,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
    inter_node_cost_factor: float = 3.0,
    max_stages: int = 1000,
) -> StagingResult:
    """SnuQS-style greedy staging (the baseline of Figures 9 and 12)."""
    n = circuit.num_qubits
    if local_qubits + regional_qubits + global_qubits != n:
        raise ValueError("L+R+G must equal the circuit's qubit count")

    remaining = list(range(len(circuit)))
    stages: list[Stage] = []
    prev_partition: QubitPartition | None = None
    comm_cost = 0.0

    while remaining:
        if len(stages) >= max_stages:
            raise RuntimeError("greedy staging did not converge")
        partition = _select_qubits(circuit, remaining, local_qubits, regional_qubits)
        taken = _take_stage(circuit, remaining, set(partition.local))
        if not taken:
            # Scoring ties can leave the very first remaining gate non-local,
            # blocking everything behind it.  Force its qubits local and retry
            # so the heuristic always makes progress.
            first_gate = circuit[remaining[0]]
            partition = _select_qubits(
                circuit, remaining, local_qubits, regional_qubits,
                force_local=set(first_gate.non_insular_qubits()),
            )
            taken = _take_stage(circuit, remaining, set(partition.local))
        if not taken:
            raise RuntimeError(
                "greedy staging made no progress — a gate has more "
                "non-insular qubits than there are local qubits"
            )
        gates = [circuit[i] for i in taken]
        stages.append(Stage(gates=gates, partition=partition, gate_indices=taken))
        if prev_partition is not None:
            new_local = set(partition.local) - set(prev_partition.local)
            new_global = set(partition.global_) - set(prev_partition.global_)
            comm_cost += len(new_local) + inter_node_cost_factor * len(new_global)
        prev_partition = partition
        taken_set = set(taken)
        remaining = [i for i in remaining if i not in taken_set]

    return StagingResult(
        stages=stages,
        num_stages=len(stages),
        communication_cost=comm_cost,
        ilp_feasible=False,
        solver_status="heuristic",
    )


def greedy_stage_circuit(
    circuit: Circuit,
    local_qubits: int,
    regional_qubits: int,
    global_qubits: int,
    inter_node_cost_factor: float = 3.0,
) -> StagingResult:
    """A simpler first-fit staging heuristic (used as a test reference).

    Walks the circuit once, keeping the current stage's local set equal to
    the union of non-insular qubits seen so far; starts a new stage whenever
    that union would exceed ``L``.
    """
    n = circuit.num_qubits
    if local_qubits + regional_qubits + global_qubits != n:
        raise ValueError("L+R+G must equal the circuit's qubit count")

    stages_indices: list[list[int]] = []
    current: list[int] = []
    current_qubits: set[int] = set()
    for idx, gate in enumerate(circuit):
        needed = set(gate.non_insular_qubits())
        if len(current_qubits | needed) > local_qubits and current:
            stages_indices.append(current)
            current = []
            current_qubits = set()
        current.append(idx)
        current_qubits |= needed
    if current:
        stages_indices.append(current)

    stages: list[Stage] = []
    prev_partition: QubitPartition | None = None
    comm_cost = 0.0
    for indices in stages_indices:
        used = set()
        for i in indices:
            used.update(circuit[i].non_insular_qubits())
        # Fill the local set up to L with the lowest-index unused qubits.
        local = sorted(used)
        for q in range(n):
            if len(local) >= local_qubits:
                break
            if q not in used:
                local.append(q)
        local = sorted(local[:local_qubits])
        rest = [q for q in range(n) if q not in local]
        regional = rest[:regional_qubits]
        global_ = rest[regional_qubits:]
        partition = QubitPartition.from_sets(local, regional, global_)
        stages.append(
            Stage(gates=[circuit[i] for i in indices], partition=partition, gate_indices=list(indices))
        )
        if prev_partition is not None:
            comm_cost += len(set(partition.local) - set(prev_partition.local))
            comm_cost += inter_node_cost_factor * len(
                set(partition.global_) - set(prev_partition.global_)
            )
        prev_partition = partition

    return StagingResult(
        stages=stages,
        num_stages=len(stages),
        communication_cost=comm_cost,
        ilp_feasible=False,
        solver_status="heuristic",
    )

"""The PassManager: composable planning pipelines and named presets.

A :class:`PassManager` is an ordered list of ``(pass_name, options)``
steps run over one :class:`~repro.planner.context.PlanningContext`.  It is
stateless and reusable: :meth:`PassManager.run` builds a fresh context per
call, so one manager may serve many circuits (and many sessions)
concurrently.

Presets
-------
Three cost-guided presets ship by default, selectable by name everywhere a
planner is accepted (``Session(planner=...)``, ``session.run(planner=...)``,
:func:`build_plan`):

=============  =============================================================
``"fast"``     latency-critical cold planning: lossless staging shortcuts
               (fits-locally direct staging, ILP lower-bound start), a
               tighter per-solve ILP time limit, the bitmask beam DP, no
               refinement.  Same plan quality as the seed planner — the
               shortcuts are provably lossless and the fast DP is
               result-identical to the reference.
``"balanced"`` the default: fast's pipeline plus the cheap ``ordered``
               refinement guard (contiguous-optimal DP per stage, keep the
               cheaper kernelization) — never worse than ``"fast"``.
``"quality"``  balanced plus wide-beam re-kernelization (the paper's C++
               beam width of 500) under a 30 s time budget, and plan
               validation.  Never worse than ``"balanced"``.
=============  =============================================================

Register custom presets with :func:`register_preset`, custom passes with
:func:`repro.planner.register_pass` — together the planning-side analogue
of :func:`repro.session.register_backend`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Mapping, Sequence

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.kernelize import KernelizeConfig
from ..core.partitioner import PartitionReport
from ..core.plan import ExecutionPlan
from ..errors import PlanValidationError
from .context import PassRecord, PlanningContext
from .passes import PASSES

__all__ = [
    "PassManager",
    "PRESETS",
    "available_presets",
    "build_plan",
    "legacy_pipeline",
    "register_preset",
    "resolve_planner",
]


def freeze_options(obj: Any) -> Any:
    """Recursively convert pass options into a hashable structure.

    Mirrors :func:`repro.session.cache.freeze_config` (kept separate to
    avoid a planner -> session import cycle): dataclasses, mappings and
    sequences become nested tuples; scalars pass through.  Two option trees
    freeze equal exactly when every field compares equal — the correctness
    condition for two pipelines sharing a structural plan-cache entry.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, freeze_options(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, Mapping):
        return tuple(sorted((k, freeze_options(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return tuple(freeze_options(v) for v in items)
    return obj


class PassManager:
    """An ordered, configured planning pipeline.

    Parameters
    ----------
    passes:
        Sequence of ``(pass_name, options)`` pairs; every name must be
        registered in :data:`repro.planner.PASSES` at run time.
    preset:
        Display name stamped into diagnostics and plan provenance
        (``""`` for ad-hoc pipelines).
    time_budget:
        Soft wall-clock budget in seconds for budget-aware passes (the
        refine pass stops starting per-stage work past it); ``None``
        disables the deadline.
    """

    def __init__(
        self,
        passes: Sequence[tuple[str, Mapping[str, Any]]],
        preset: str = "",
        time_budget: float | None = None,
    ):
        self.passes: tuple[tuple[str, dict], ...] = tuple(
            (name, dict(options)) for name, options in passes
        )
        self.preset = preset
        self.time_budget = time_budget

    def pass_names(self) -> tuple[str, ...]:
        return tuple(name for name, _options in self.passes)

    def signature(self) -> tuple:
        """Hashable identity of the *full* pipeline configuration.

        Everything that can change the produced plan is included: the pass
        sequence, every pass's options, and the time budget.  Structural
        plan caches key on this (plus circuit, machine and cost model), so
        two different pipelines can never alias each other's cache entries.
        """
        return (
            "pass-manager",
            self.preset,
            self.time_budget,
            tuple((name, freeze_options(options)) for name, options in self.passes),
        )

    def run(
        self,
        circuit: Circuit,
        machine: MachineConfig,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        time_budget: float | None = None,
    ) -> tuple[ExecutionPlan, PartitionReport]:
        """Plan *circuit* for *machine* through the configured pipeline.

        Returns ``(plan, report)`` exactly like
        :func:`repro.core.partition`, with the report additionally carrying
        per-pass telemetry.
        """
        machine.validate(circuit.num_qubits)
        budget = time_budget if time_budget is not None else self.time_budget
        ctx = PlanningContext(
            circuit=circuit,
            machine=machine,
            cost_model=cost_model,
            options={name: options for name, options in self.passes},
            preset=self.preset,
            pipeline=self.pass_names(),
            deadline=None if budget is None else time.perf_counter() + budget,
        )
        for name, _options in self.passes:
            try:
                planning_pass = PASSES[name]
            except KeyError as exc:
                raise ValueError(
                    f"unknown planning pass {name!r}; known: {sorted(PASSES)}"
                ) from exc
            record = PassRecord(name=name)
            start = time.perf_counter()
            planning_pass.run(ctx, record)
            record.seconds = time.perf_counter() - start
            ctx.diagnostics.record(record)
        if ctx.plan is None:
            raise RuntimeError(
                "pipeline finished without producing a plan — it needs a "
                "'finalize' pass (or a custom pass that sets context.plan)"
            )
        return ctx.plan, self._report(ctx)

    def _report(self, ctx: PlanningContext) -> PartitionReport:
        diagnostics = ctx.diagnostics
        seconds = diagnostics.pass_seconds()
        plan = ctx.plan
        if plan is None:  # pragma: no cover - guarded by run()
            raise PlanValidationError("pipeline finished without producing a plan")
        return PartitionReport(
            staging_seconds=seconds.get("stage", 0.0),
            kernelization_seconds=seconds.get("kernelize", 0.0)
            + seconds.get("refine", 0.0),
            num_stages=plan.num_stages,
            num_kernels=plan.num_kernels,
            communication_cost=(
                ctx.staging.communication_cost if ctx.staging is not None else 0.0
            ),
            total_kernel_cost=plan.total_kernel_cost,
            preset=self.preset,
            pipeline=self.pass_names(),
            pass_seconds=seconds,
            passes_skipped=diagnostics.passes_skipped(),
            pass_metrics={r.name: dict(r.metrics) for r in diagnostics.records},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.preset or "custom"
        return f"<PassManager {label!r}: {' -> '.join(self.pass_names())}>"


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

#: Preset factories by name; each call returns a fresh PassManager.
PRESETS: dict[str, Callable[[], PassManager]] = {}


def register_preset(name: str, factory: Callable[[], PassManager]) -> None:
    """Register a preset *factory* under *name* (overwrites existing)."""
    PRESETS[name] = factory


def available_presets() -> list[str]:
    """Sorted preset names."""
    return sorted(PRESETS)


def _fast_preset() -> PassManager:
    return PassManager(
        [
            ("analyze", {}),
            (
                "stage",
                {
                    "stager": "ilp",
                    "single_stage_shortcut": True,
                    "lower_bound_start": True,
                    "ilp_time_limit": 15.0,
                },
            ),
            ("kernelize", {"kernelizer": "atlas"}),
            ("finalize", {}),
        ],
        preset="fast",
    )


def _balanced_preset() -> PassManager:
    return PassManager(
        [
            ("analyze", {}),
            (
                "stage",
                {
                    "stager": "ilp",
                    "single_stage_shortcut": True,
                    "lower_bound_start": True,
                    "ilp_time_limit": 120.0,
                },
            ),
            ("kernelize", {"kernelizer": "atlas"}),
            ("refine", {"strategies": ("ordered",)}),
            ("finalize", {}),
        ],
        preset="balanced",
    )


def _quality_preset() -> PassManager:
    return PassManager(
        [
            ("analyze", {}),
            (
                "stage",
                {
                    "stager": "ilp",
                    "single_stage_shortcut": True,
                    "lower_bound_start": True,
                    "ilp_time_limit": 120.0,
                },
            ),
            ("kernelize", {"kernelizer": "atlas"}),
            (
                "refine",
                {"strategies": ("ordered", "beam"), "beam_threshold": 500},
            ),
            ("finalize", {"validate": True}),
            ("verify", {}),
        ],
        preset="quality",
        time_budget=30.0,
    )


register_preset("fast", _fast_preset)
register_preset("balanced", _balanced_preset)
register_preset("quality", _quality_preset)


def resolve_planner(planner: "str | PassManager | None") -> PassManager:
    """Resolve a planner spec into a :class:`PassManager`.

    ``None`` means the default (``"balanced"``); a string names a preset;
    a :class:`PassManager` passes through.
    """
    if planner is None:
        planner = "balanced"
    if isinstance(planner, PassManager):
        return planner
    if isinstance(planner, str):
        try:
            factory = PRESETS[planner]
        except KeyError as exc:
            raise ValueError(
                f"unknown planner preset {planner!r}; known: {available_presets()}"
            ) from exc
        return factory()
    raise TypeError(
        f"planner must be a preset name, a PassManager, or None; got {planner!r}"
    )


def build_plan(
    circuit: Circuit,
    machine: MachineConfig,
    planner: "str | PassManager | None" = "balanced",
    cost_model: CostModel = DEFAULT_COST_MODEL,
    time_budget: float | None = None,
) -> tuple[ExecutionPlan, PartitionReport]:
    """One-call planning through a preset or custom pipeline.

    ``planner`` is a preset name (``"fast"`` / ``"balanced"`` /
    ``"quality"`` or anything registered with :func:`register_preset`), a
    :class:`PassManager`, or ``None`` for the default.  Returns the same
    ``(plan, report)`` pair as :func:`repro.core.partition`.
    """
    manager = resolve_planner(planner)
    return manager.run(
        circuit, machine, cost_model=cost_model, time_budget=time_budget
    )


def legacy_pipeline(
    stager: str = "ilp",
    kernelizer: str = "atlas",
    kernelize_config: KernelizeConfig | None = None,
    ilp_backend: str = "scipy",
    ilp_time_limit: float | None = 120.0,
) -> PassManager:
    """A pipeline replicating the pre-pipeline ``partition(...)`` knobs.

    Used by :func:`repro.core.partition` (and by Sessions constructed with
    the legacy ``stager=`` / ``kernelizer=`` / ``kernelize_config=``
    keywords) so existing callers keep their exact configuration surface.
    The staging shortcuts stay on — they are provably lossless — and
    ``"atlas"`` resolves to the result-identical fast DP, so plans carry
    the seed planner's stage structure, kernel boundaries and costs
    exactly.  (One cosmetic freedom remains: on fits-locally machines the
    single-stage shortcut pads the zero-communication qubit partition with
    the lowest-index unused qubits, where the ILP would pick arbitrarily
    among the equally-optimal assignments.)
    """
    return PassManager(
        [
            ("analyze", {}),
            (
                "stage",
                {
                    "stager": stager,
                    "single_stage_shortcut": True,
                    "lower_bound_start": True,
                    "ilp_backend": ilp_backend,
                    "ilp_time_limit": ilp_time_limit,
                },
            ),
            ("kernelize", {"kernelizer": kernelizer, "config": kernelize_config}),
            ("finalize", {}),
        ],
        preset="",
    )

"""Unified planning pipeline: PassManager + Plan IR with cost-guided presets.

PRs 1–4 gave *warm* execution an architecture (compiled programs, parallel
runtimes, a structural plan cache); this package gives the *cold* path one
too.  Planning — partitioning a circuit into stages and kernels for a
machine — runs as a pipeline of registered passes over a shared
:class:`PlanningContext`, with per-pass telemetry, cost-model-adaptive
shortcuts, named presets (``"fast"``, ``"balanced"``, ``"quality"``), and
the same extension-point style as the execution side
(:func:`register_pass` / :func:`register_preset` mirror
:func:`repro.session.register_backend`).

Quick start::

    from repro.planner import build_plan
    plan, report = build_plan(circuit, machine, planner="fast")
    print(report.pass_seconds, report.passes_skipped)

or through a session::

    with Session(machine, planner="fast") as session:
        result = session.run(circuit).result()

See ``docs/planning.md`` for the architecture and the extension guide.
"""

from .context import PassRecord, PlanningContext, PlanningDiagnostics
from .passes import (
    KERNELIZERS,
    PASSES,
    STAGERS,
    AnalyzePass,
    FinalizePass,
    KernelizePass,
    PlanningPass,
    PreprocessPass,
    RefinePass,
    StagePass,
    register_kernelizer,
    register_pass,
    register_stager,
)
from .pipeline import (
    PRESETS,
    PassManager,
    available_presets,
    build_plan,
    legacy_pipeline,
    register_preset,
    resolve_planner,
)

__all__ = [
    "PassRecord",
    "PlanningContext",
    "PlanningDiagnostics",
    "PlanningPass",
    "PreprocessPass",
    "AnalyzePass",
    "StagePass",
    "KernelizePass",
    "RefinePass",
    "FinalizePass",
    "PASSES",
    "KERNELIZERS",
    "STAGERS",
    "register_pass",
    "register_kernelizer",
    "register_stager",
    "PassManager",
    "PRESETS",
    "available_presets",
    "build_plan",
    "legacy_pipeline",
    "register_preset",
    "resolve_planner",
]

"""The built-in planning passes and the pass / strategy registries.

Every pass is a small stateless object with a ``name`` and a
``run(context, record)`` method: it reads and grows the
:class:`~repro.planner.context.PlanningContext` and documents itself in the
:class:`~repro.planner.context.PassRecord` the PassManager hands it (the
manager owns the timing).  Third-party passes register with
:func:`register_pass` and are then addressable from any pipeline or preset,
exactly like execution backends register with
:func:`repro.session.register_backend`.

Built-in pipeline (the order the presets use)::

    analyze  ->  stage  ->  kernelize  ->  refine  ->  finalize

* **analyze** — cheap structural facts (non-insular qubit union, gate
  counts) that later passes use for their adaptive skips;
* **stage** — circuit staging through the unified stager registry
  (``"ilp"``, ``"snuqs"``, ``"greedy"``), with two provably lossless
  cost-model-adaptive shortcuts: a circuit whose non-insular union fits the
  local set is staged directly (no solver), and the ILP stage-count
  iteration starts at the provable lower bound ``ceil(|U| / L)``;
* **kernelize** — per-stage kernelization through the unified kernelizer
  registry (``"atlas"``, ``"atlas-ref"``, ``"atlas-naive"``, ``"greedy"``);
* **refine** — quality escalation that can only improve the plan: per
  stage (most expensive first, under the context's time budget) re-derive
  the kernelization with the contiguous-optimal ordered DP and/or a wider
  beam, keeping whichever result is cheaper;
* **finalize** — assemble and (optionally) validate the
  :class:`~repro.core.plan.ExecutionPlan`, stamping plan provenance.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

from ..circuits.gates import Gate
from ..cluster.costmodel import CostModel
from ..core.fast_kernelize import fast_kernelize
from ..core.greedy_kernelize import greedy_kernelize
from ..core.kernel import KernelSequence
from ..core.kernelize import KernelizeConfig, kernelize
from ..core.ordered_kernelize import ordered_kernelize
from ..core.plan import ExecutionPlan, QubitPartition, Stage
from ..core.stage import StagingResult, stage_circuit
from ..core.stage_heuristics import greedy_stage_circuit, snuqs_stage_circuit
from .context import PassRecord, PlanningContext

__all__ = [
    "PlanningPass",
    "PreprocessPass",
    "AnalyzePass",
    "StagePass",
    "KernelizePass",
    "RefinePass",
    "FinalizePass",
    "VerifyPass",
    "PASSES",
    "KERNELIZERS",
    "STAGERS",
    "register_pass",
    "register_kernelizer",
    "register_stager",
]


#: Unified kernelizer registry: every strategy behind one
#: ``(gates, cost_model, config) -> KernelSequence`` signature.
#: ``"atlas"`` is the beam DP in its fast bitmask implementation
#: (:func:`repro.core.fast_kernelize.fast_kernelize` — result-identical to
#: the reference); ``"atlas-ref"`` is the reference implementation kept as
#: the auditable oracle; ``"atlas-naive"`` the contiguous-segment DP;
#: ``"greedy"`` the 5-qubit packing baseline.
KERNELIZERS: dict[str, Callable[..., KernelSequence]] = {
    "atlas": lambda gates, cost_model, config: fast_kernelize(
        gates, cost_model, config if config is not None else KernelizeConfig()
    ),
    "atlas-ref": lambda gates, cost_model, config: kernelize(
        gates, cost_model, config if config is not None else KernelizeConfig()
    ),
    "atlas-naive": lambda gates, cost_model, config: ordered_kernelize(
        gates, cost_model
    ),
    "greedy": lambda gates, cost_model, config: greedy_kernelize(gates, cost_model),
}

#: Unified stager registry.  Entries are called as
#: ``fn(circuit, machine, **options)`` where the options always include
#: ``min_stages``, ``ilp_backend``, ``ilp_time_limit`` and ``max_stages``
#: (heuristic stagers swallow what they do not use with ``**_ignored``).
STAGERS: dict[str, Callable[..., StagingResult]] = {}


def register_kernelizer(name: str, fn: Callable[..., KernelSequence]) -> None:
    """Register a kernelization strategy under *name* (overwrites existing).

    *fn* must accept ``(gates, cost_model, config)`` where ``config`` is a
    :class:`~repro.core.kernelize.KernelizeConfig` or ``None``.
    """
    KERNELIZERS[name] = fn


def register_stager(name: str, fn: Callable[..., StagingResult]) -> None:
    """Register a staging strategy under *name* (overwrites existing).

    *fn* is invoked as ``fn(circuit, machine, **options)`` and must accept
    (or swallow via ``**kwargs``) the standard staging options
    ``min_stages`` / ``ilp_backend`` / ``ilp_time_limit`` / ``max_stages``
    in addition to anything pipeline-specific, and return a
    :class:`~repro.core.stage.StagingResult`.
    """
    STAGERS[name] = fn


def _stage_ilp(circuit, machine, *, min_stages, ilp_backend, ilp_time_limit, max_stages):
    return stage_circuit(
        circuit,
        machine.local_qubits,
        machine.regional_qubits,
        machine.global_qubits,
        inter_node_cost_factor=machine.inter_node_cost_factor,
        backend=ilp_backend,
        max_stages=max_stages,
        time_limit=ilp_time_limit,
        min_stages=min_stages,
    )


def _stage_snuqs(circuit, machine, **_ignored):
    return snuqs_stage_circuit(
        circuit,
        machine.local_qubits,
        machine.regional_qubits,
        machine.global_qubits,
        inter_node_cost_factor=machine.inter_node_cost_factor,
    )


def _stage_greedy(circuit, machine, **_ignored):
    return greedy_stage_circuit(
        circuit,
        machine.local_qubits,
        machine.regional_qubits,
        machine.global_qubits,
        inter_node_cost_factor=machine.inter_node_cost_factor,
    )


STAGERS["ilp"] = _stage_ilp
STAGERS["snuqs"] = _stage_snuqs
STAGERS["greedy"] = _stage_greedy


class PlanningPass:
    """One step of the planning pipeline.

    Subclasses set :attr:`name` and implement :meth:`run`.  Passes must be
    stateless: one instance may serve many concurrent pipeline runs, and
    everything run-specific lives on the context.
    """

    name: str = "pass"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class PreprocessPass(PlanningPass):
    """Optional circuit rewriting before staging (not in any preset).

    Runs the named passes of :data:`repro.circuits.passes.CIRCUIT_PASSES`
    (option ``passes``, default ``("optimize",)``) and replaces the
    context's circuit with the semantics-equivalent result; every later
    pass — including finalize's validation — operates on the rewritten
    circuit, and the plan's ``gate_indices`` refer to it.

    Because the rewrite changes gate indices, pipelines containing this
    pass are for direct :func:`repro.planner.build_plan` use: the session's
    structural plan cache keys and rebinds on the *input* circuit, and
    :func:`repro.session.cache.rebind_plan` rejects (loudly) any plan whose
    gate count no longer matches it.
    """

    name = "preprocess"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        from ..circuits.passes import preprocess_circuit

        passes = tuple(ctx.pass_options(self.name).get("passes", ("optimize",)))
        before = len(ctx.circuit)
        rewritten = preprocess_circuit(ctx.circuit, passes)
        if len(rewritten) < before:
            ctx.circuit = rewritten
        else:
            # Cost-adaptive keep: a rewrite that did not shrink the circuit
            # only burns downstream index stability; keep the original.
            record.skipped = True
            record.skip_reason = (
                f"rewrite kept nothing ({before} gates before, "
                f"{len(rewritten)} after): original circuit retained"
            )
        record.metrics.update(
            passes=list(passes),
            gates_before=before,
            gates_after=len(ctx.circuit),
        )


class AnalyzePass(PlanningPass):
    """Cheap structural facts later passes key their adaptive skips on."""

    name = "analyze"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        union: set[int] = set()
        non_insular_gates = 0
        for gate in ctx.circuit:
            non_insular = gate.non_insular_qubits()
            if non_insular:
                non_insular_gates += 1
                union.update(non_insular)
        ctx.facts["non_insular_union"] = frozenset(union)
        ctx.facts["non_insular_gates"] = non_insular_gates
        ctx.facts["fits_locally"] = len(union) <= ctx.machine.local_qubits
        record.metrics.update(
            num_gates=len(ctx.circuit),
            num_qubits=ctx.circuit.num_qubits,
            non_insular_gates=non_insular_gates,
            non_insular_union=len(union),
            fits_locally=ctx.facts["fits_locally"],
        )


def _single_stage_staging(ctx: PlanningContext) -> StagingResult:
    """Directly build the provably optimal single-stage staging.

    Valid exactly when the non-insular union ``U`` fits the local set: one
    stage with ``U`` local (padded with the lowest-index unused qubits) is
    feasible, and no staging can beat one stage with zero communication.
    The gate order is the circuit order — the same order the ILP extraction
    produces for a one-stage solution — so downstream kernelization sees
    identical input.
    """
    machine = ctx.machine
    n = ctx.circuit.num_qubits
    union = ctx.facts["non_insular_union"]
    local = sorted(union)
    for q in range(n):
        if len(local) >= machine.local_qubits:
            break
        if q not in union:
            local.append(q)
    local_set = set(local)
    rest = [q for q in range(n) if q not in local_set]
    partition = QubitPartition.from_sets(
        local_set, rest[: machine.regional_qubits], rest[machine.regional_qubits :]
    )
    stage = Stage(
        gates=list(ctx.circuit.gates),
        partition=partition,
        gate_indices=list(range(len(ctx.circuit))),
    )
    return StagingResult(
        stages=[stage],
        num_stages=1,
        communication_cost=0.0,
        ilp_feasible=False,
        solver_status="fits-locally",
    )


class StagePass(PlanningPass):
    """Staging through the stager registry, with lossless adaptive skips.

    Options
    -------
    stager:
        Registry name (default ``"ilp"``).
    single_stage_shortcut:
        When the analyze pass proved the circuit fits locally, build the
        (provably optimal) single-stage staging directly and skip the
        solver entirely.  Default True.  Only applied with the ``"ilp"``
        stager: the shortcut reproduces the ILP's optimal answer, whereas
        heuristic stagers are often run precisely to study *their*
        behaviour, which must not be silently replaced.
    lower_bound_start:
        Start the ILP stage-count iteration at ``ceil(|U| / L)`` — any
        smaller count is provably infeasible because ``s`` stages expose at
        most ``s * L`` distinct local qubits.  Default True.
    ilp_backend, ilp_time_limit, max_stages:
        Passed to the ILP stager.
    """

    name = "stage"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        options = ctx.pass_options(self.name)
        stager = options.get("stager", "ilp")
        if stager not in STAGERS:
            raise ValueError(f"unknown stager {stager!r}; known: {sorted(STAGERS)}")
        record.metrics["stager"] = stager

        if (
            stager == "ilp"
            and options.get("single_stage_shortcut", True)
            and ctx.facts.get("fits_locally")
        ):
            ctx.staging = _single_stage_staging(ctx)
            union = len(ctx.facts["non_insular_union"])
            record.skipped = True
            record.skip_reason = (
                f"circuit fits locally (|U|={union} <= L="
                f"{ctx.machine.local_qubits}): single-stage staging built "
                f"directly, staging solver skipped"
            )
        else:
            min_stages = 1
            if stager == "ilp" and options.get("lower_bound_start", True):
                union = ctx.facts.get("non_insular_union")
                if union:
                    min_stages = max(
                        1, math.ceil(len(union) / ctx.machine.local_qubits)
                    )
            record.metrics["min_stages_start"] = min_stages
            ctx.staging = STAGERS[stager](
                ctx.circuit,
                ctx.machine,
                min_stages=min_stages,
                ilp_backend=options.get("ilp_backend", "scipy"),
                ilp_time_limit=options.get("ilp_time_limit", 120.0),
                max_stages=options.get("max_stages", 32),
            )
        record.metrics.update(
            num_stages=ctx.staging.num_stages,
            communication_cost=ctx.staging.communication_cost,
            solver_status=ctx.staging.solver_status,
            solver_seconds=ctx.staging.solver_seconds,
            num_solves=ctx.staging.num_solves,
        )


class KernelizePass(PlanningPass):
    """Per-stage kernelization through the kernelizer registry.

    Options: ``kernelizer`` (registry name, default ``"atlas"``) and
    ``config`` (a :class:`~repro.core.kernelize.KernelizeConfig` or
    ``None`` for the strategy default).
    """

    name = "kernelize"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        if ctx.staging is None:
            raise RuntimeError("kernelize pass needs a staging (run a stage pass first)")
        options = ctx.pass_options(self.name)
        kernelizer = options.get("kernelizer", "atlas")
        if kernelizer not in KERNELIZERS:
            raise ValueError(
                f"unknown kernelizer {kernelizer!r}; known: {sorted(KERNELIZERS)}"
            )
        config = options.get("config")
        fn = KERNELIZERS[kernelizer]
        stage_costs: list[float] = []
        for stage in ctx.staging.stages:
            stage.kernels = fn(stage.gates, ctx.cost_model, config)
            stage_costs.append(stage.kernels.total_cost)
        record.metrics.update(
            kernelizer=kernelizer,
            num_kernels=sum(len(s.kernels) for s in ctx.staging.stages),
            stage_kernel_costs=stage_costs,
            total_kernel_cost=sum(stage_costs),
        )


class RefinePass(PlanningPass):
    """Cost-guided kernel refinement — strictly improve-or-keep.

    Revisits stages most-expensive-first under the context's time budget
    and re-derives each stage's kernelization with stronger (slower)
    searches, keeping whichever :class:`KernelSequence` is cheaper:

    * ``"ordered"`` — the contiguous-segment DP (optimal over contiguous
      kernelizations, cheap);
    * ``"beam"`` — the beam DP re-run at ``beam_threshold`` (the paper's
      C++ beam width of 500 by default — wider than the Python default the
      kernelize pass uses).

    Single-gate stages are skipped (nothing to regroup), and once the
    budget is exhausted the remaining stages are left untouched — the
    record says how many and why.
    """

    name = "refine"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        if ctx.staging is None:
            raise RuntimeError("refine pass needs a kernelized staging")
        options = ctx.pass_options(self.name)
        strategies = tuple(options.get("strategies", ("ordered",)))
        beam_threshold = options.get("beam_threshold", 500)
        base_config = options.get("config")

        order = sorted(
            range(len(ctx.staging.stages)),
            key=lambda i: -(ctx.staging.stages[i].kernel_cost()),
        )
        improved = 0
        saved = 0.0
        budget_skipped = 0
        trivial_skipped = 0
        for index in order:
            stage = ctx.staging.stages[index]
            if stage.kernels is None:
                continue
            if len(stage.gates) <= 1:
                trivial_skipped += 1
                continue
            if ctx.out_of_budget():
                budget_skipped += 1
                continue
            best = stage.kernels
            for strategy in strategies:
                if strategy == "ordered":
                    candidate = ordered_kernelize(stage.gates, ctx.cost_model)
                elif strategy == "beam":
                    config = base_config if base_config is not None else KernelizeConfig()
                    if config.pruning_threshold >= beam_threshold:
                        continue
                    config = dataclasses.replace(
                        config, pruning_threshold=beam_threshold
                    )
                    candidate = fast_kernelize(stage.gates, ctx.cost_model, config)
                else:
                    raise ValueError(f"unknown refine strategy {strategy!r}")
                if candidate.total_cost < best.total_cost - 1e-12:
                    best = candidate
            if best is not stage.kernels:
                saved += stage.kernels.total_cost - best.total_cost
                stage.kernels = best
                improved += 1
        if budget_skipped and not improved:
            record.skipped = True
            record.skip_reason = (
                f"time budget exhausted before refinement started "
                f"({budget_skipped} stages left untouched)"
            )
        record.metrics.update(
            strategies=list(strategies),
            stages_improved=improved,
            cost_saved=saved,
            stages_skipped_budget=budget_skipped,
            stages_skipped_trivial=trivial_skipped,
        )


class FinalizePass(PlanningPass):
    """Assemble the :class:`ExecutionPlan` and stamp plan provenance.

    Options: ``validate`` (default False) runs
    :meth:`ExecutionPlan.validate` against the input circuit — cheap
    insurance the quality preset turns on.
    """

    name = "finalize"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        if ctx.staging is None:
            raise RuntimeError("finalize pass needs a staging")
        plan = ExecutionPlan(
            num_qubits=ctx.circuit.num_qubits,
            stages=ctx.staging.stages,
            circuit_name=ctx.circuit.name,
        )
        plan.provenance = {
            "preset": ctx.preset or "custom",
            "pipeline": list(ctx.pipeline),
            "passes_skipped": ctx.diagnostics.passes_skipped(),
        }
        if ctx.pass_options(self.name).get("validate", False):
            plan.validate(ctx.circuit)
            record.metrics["validated"] = True
        ctx.plan = plan
        record.metrics.update(
            num_stages=plan.num_stages,
            num_kernels=plan.num_kernels,
            total_kernel_cost=plan.total_kernel_cost,
        )


class VerifyPass(PlanningPass):
    """Statically verify the assembled plan (:func:`repro.check.verify_plan`).

    Runs after ``finalize``; proves partition coverage, qubit bounds, the
    locality invariant, kernel consistency and exact circuit coverage, and
    raises :class:`repro.errors.StaticCheckError` on any violation.  The
    quality preset ends with it; any custom pipeline can append it.
    """

    name = "verify"

    def run(self, ctx: PlanningContext, record: PassRecord) -> None:
        if ctx.plan is None:
            raise RuntimeError("verify pass needs a finalized plan")
        from ..check import verify_plan

        report = verify_plan(ctx.plan, machine=ctx.machine, circuit=ctx.circuit)
        record.metrics.update(
            checks_run=list(report.checks_run),
            violations=len(report.violations),
        )
        report.raise_if_failed()


#: Pass registry: name -> pass instance (passes are stateless).
PASSES: dict[str, PlanningPass] = {
    p.name: p
    for p in (
        PreprocessPass(),
        AnalyzePass(),
        StagePass(),
        KernelizePass(),
        RefinePass(),
        FinalizePass(),
        VerifyPass(),
    )
}


def register_pass(name: str, planning_pass: PlanningPass) -> None:
    """Register *planning_pass* under *name* (overwrites existing).

    The pass becomes addressable from any :class:`PassManager` pipeline or
    preset — the planning-side analogue of
    :func:`repro.session.register_backend`.
    """
    PASSES[name] = planning_pass

"""Planning context and diagnostics — the shared state of a pipeline run.

A :class:`PlanningContext` is the Plan IR threaded through every pass of a
:class:`~repro.planner.pipeline.PassManager` run: the immutable inputs
(circuit, machine, cost model, per-pass options, optional time budget), the
mutable working state the passes grow (analysis facts, the staging, the
final :class:`~repro.core.plan.ExecutionPlan`), and a
:class:`PlanningDiagnostics` ledger recording, for every pass, how long it
ran, what it produced, and — when it decided to skip work — why.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.plan import ExecutionPlan
from ..core.stage import StagingResult

__all__ = ["PassRecord", "PlanningDiagnostics", "PlanningContext"]


@dataclass
class PassRecord:
    """What one pass did: timing, skip decision, and free-form metrics."""

    name: str
    seconds: float = 0.0
    #: True when the pass decided not to do its main work (the record's
    #: ``skip_reason`` says why — e.g. "circuit fits locally").
    skipped: bool = False
    skip_reason: str = ""
    #: Pass-specific quality/size facts (stage counts, kernel costs, ...).
    metrics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "skipped": self.skipped,
            "skip_reason": self.skip_reason,
            "metrics": dict(self.metrics),
        }


@dataclass
class PlanningDiagnostics:
    """Ordered ledger of :class:`PassRecord` entries for one pipeline run."""

    records: list[PassRecord] = field(default_factory=list)

    def record(self, record: PassRecord) -> None:
        self.records.append(record)

    def __getitem__(self, name: str) -> PassRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def pass_seconds(self) -> dict[str, float]:
        """Wall seconds per pass, in execution order."""
        return {r.name: r.seconds for r in self.records}

    def passes_skipped(self) -> dict[str, str]:
        """Skipped pass name -> the reason it was skipped."""
        return {r.name: r.skip_reason for r in self.records if r.skipped}

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def as_dict(self) -> dict[str, Any]:
        return {
            "passes": [r.as_dict() for r in self.records],
            "total_seconds": self.total_seconds,
        }


@dataclass
class PlanningContext:
    """Everything a planning pass may read or grow.

    Inputs (set by the PassManager, read-only by convention): ``circuit``,
    ``machine``, ``cost_model``, ``options`` (this run's per-pass option
    mapping), ``preset`` (the preset name, or ``""`` for a custom pipeline)
    and ``deadline`` (absolute :func:`time.perf_counter` instant after
    which budgeted passes should stop starting new work; ``None`` = no
    budget).

    Working state (written by passes): ``facts`` — cheap analysis results
    keyed by name (e.g. ``non_insular_union``); ``staging`` — the
    :class:`~repro.core.stage.StagingResult` the stage pass produced;
    ``plan`` — the assembled :class:`~repro.core.plan.ExecutionPlan` (set
    by the finalize pass).
    """

    circuit: Circuit
    machine: MachineConfig
    cost_model: CostModel = DEFAULT_COST_MODEL
    options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    preset: str = ""
    #: Names of the pipeline's passes in run order (set by the PassManager).
    pipeline: tuple[str, ...] = ()
    deadline: float | None = None

    facts: dict[str, Any] = field(default_factory=dict)
    staging: StagingResult | None = None
    plan: ExecutionPlan | None = None
    diagnostics: PlanningDiagnostics = field(default_factory=PlanningDiagnostics)

    def pass_options(self, name: str) -> Mapping[str, Any]:
        """The option mapping configured for pass *name* (may be empty)."""
        return self.options.get(name, {})

    def remaining_budget(self) -> float | None:
        """Seconds until the deadline, or ``None`` when unbudgeted."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def out_of_budget(self) -> bool:
        remaining = self.remaining_budget()
        return remaining is not None and remaining <= 0.0

"""Pluggable execution backends — every executor behind one protocol.

The repository grew four ways to run a plan (:func:`repro.runtime.execute_plan`,
:func:`repro.runtime.execute_plan_offloaded`,
:class:`repro.runtime.ParallelRuntime`, and the gate-by-gate reference), plus
the modelled baseline simulators in :mod:`repro.baselines`.  Each is wrapped
in an :class:`ExecutionBackend` adapter exposing one ``run_plan`` protocol so
the :class:`repro.session.Session` facade (and tests, and benchmarks) can
treat them uniformly:

=============  ==============================================================
``reference``  gate-by-gate on the full state; the correctness oracle
``incore``     single-stream staged executor (ping-pong buffers, fused kernels)
``offload``    sequential DRAM shard streaming (Section VII-C)
``parallel``   multi-worker shard scheduler with prefetch (PR 2's runtime)
``hyquas`` / ``cuquantum`` / ``qiskit``
               modelled baseline strategies: plans from the baseline's own
               partitioner, functional execution for correctness, timings
               scaled by the baseline's overhead factors
=============  ==============================================================

``"auto"`` is not a backend but a selection rule, resolved per job by
:func:`select_auto_backend`: **"incore" when the state fits aggregate GPU
device memory** (``machine.fits_in_gpus``), **"parallel" otherwise** (the
state must stream through the devices shard by shard, which is exactly what
the parallel runtime pipelines).

Backends are registered in :data:`BACKENDS` by factory so each Session owns
private instances (the parallel backend holds worker pools and device
buffers that must not be shared between sessions).  Register custom
backends with :func:`register_backend`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Sequence

from ..baselines import SIMULATORS, BaselineSimulator
from ..circuits.circuit import Circuit
from ..cluster.costmodel import CostModel
from ..cluster.machine import MachineConfig
from ..core.plan import ExecutionPlan
from ..errors import (
    Deadline,
    KernelError,
    PlanValidationError,
    RetryPolicy,
    TransientError,
)
from ..runtime import faults
from ..runtime.checkpoint import CheckpointConfig
from ..runtime.executor import execute_plan, trace_for_program
from ..runtime.offload import execute_plan_offloaded
from ..runtime.parallel import ParallelRuntime
from ..runtime.timeline import TimingBreakdown, model_simulation_time
from ..sim.statevector import StateVector
from .cache import freeze_config

__all__ = [
    "BACKENDS",
    "BaselineBackend",
    "ExecutionBackend",
    "InCoreBackend",
    "OffloadBackend",
    "ParallelBackend",
    "ReferenceBackend",
    "available_backends",
    "make_backend",
    "register_backend",
    "select_auto_backend",
]


class ExecutionBackend:
    """One executor behind the ``run_plan`` protocol.

    Subclasses implement :meth:`run_plan`; everything else has working
    defaults.  A backend instance may own heavyweight state (worker pools,
    device buffers) — it belongs to one Session and is released by
    :meth:`close`.
    """

    #: Registry name; set per subclass/instance.
    name: str = "backend"

    #: Whether the Session should compile plans to
    #: :class:`~repro.sim.program.CompiledProgram` streams for this backend
    #: (and pass them through ``program=``/``programs=``).  Backends with
    #: their own amortisation layer (the shard runtimes' schedule cache)
    #: leave this off.
    uses_programs: bool = False

    #: Whether the backend understands the durability kwargs
    #: (``checkpoint=`` / ``resume_from=`` / ``monitor=``).  Only the shard
    #: executors snapshot stage boundaries; the Session silently skips the
    #: plumbing for backends without it.
    supports_checkpoints: bool = False

    def run_plan(
        self,
        plan: ExecutionPlan,
        machine: MachineConfig,
        initial_state: StateVector | None = None,
        circuit: Circuit | None = None,
        schedule_key: str | None = None,
        program=None,
        deadline: Deadline | None = None,
    ) -> tuple[StateVector, object]:
        """Execute *plan* and return ``(final_state, execution_stats)``.

        ``circuit`` is the source circuit (used by backends that do not
        replay the staged plan, e.g. the reference oracle); ``schedule_key``
        names the plan structure for backends that cache per-structure
        schedules (see :meth:`ParallelRuntime.execute`); ``program`` is the
        plan's compiled op stream for backends with ``uses_programs``;
        ``deadline`` is the job's cooperative cancellation budget.
        """
        raise NotImplementedError

    def run_batch(
        self,
        items: Sequence[tuple[ExecutionPlan, StateVector | None, Circuit | None]],
        machine: MachineConfig,
        schedule_keys: Sequence[str | None] | None = None,
        programs: Sequence | None = None,
        deadline: Deadline | None = None,
        checkpoint=None,
        resume_from=None,
        monitor=None,
    ) -> list[tuple[StateVector, object]]:
        """Execute many ``(plan, initial_state, circuit)`` problems in order.

        The default runs them back to back through :meth:`run_plan`;
        backends with shared runtime state (worker pools, buffers,
        segmentation caches, compiled programs) override this to amortise
        it.  ``program=`` / ``deadline=`` / the durability kwargs are only
        forwarded when present, so third-party backends with older
        :meth:`run_plan` signatures keep working.
        """
        keys = schedule_keys if schedule_keys is not None else [None] * len(items)
        progs = programs if programs is not None else [None] * len(items)
        durable = self.supports_checkpoints and (
            checkpoint is not None or resume_from is not None
            or monitor is not None
        )
        base_ckpt = (
            CheckpointConfig.coerce(checkpoint)
            if durable and checkpoint is not None else None
        )
        out = []
        for i, ((plan, state, circuit), key, program) in enumerate(
            zip(items, keys, progs)
        ):
            if deadline is not None:
                deadline.check("batch item")
            kwargs = dict(initial_state=state, circuit=circuit, schedule_key=key)
            if program is not None:
                kwargs["program"] = program
            if deadline is not None:
                kwargs["deadline"] = deadline
            if durable:
                item_ckpt = base_ckpt
                if base_ckpt is not None and len(items) > 1:
                    # Per-item tags: batch items sharing a checkpoint
                    # directory must never overwrite each other's
                    # snapshots (and each resumes its own).
                    item_ckpt = dataclasses.replace(
                        base_ckpt, tag=f"{base_ckpt.tag}-i{i}"
                    )
                kwargs.update(
                    checkpoint=item_ckpt, resume_from=resume_from,
                    monitor=monitor,
                )
            out.append(self.run_plan(plan, machine, **kwargs))
        return out

    def recovery_counters(self) -> dict:
        """Cumulative recovery accounting over this backend's lifetime.

        Aggregated into ``SessionStats`` after every job; subclasses with
        richer runtimes (the parallel backend's per-runtime counters)
        override it.  Counters live as plain instance attributes so the
        base class needs no ``__init__`` cooperation from subclasses.
        """
        return {
            "retries": getattr(self, "retries", 0),
            "fallbacks": getattr(self, "fallbacks", 0),
            "quarantined_workers": getattr(self, "quarantined_workers", 0),
        }

    def timing(
        self, plan: ExecutionPlan, machine: MachineConfig, cost_model: CostModel
    ) -> TimingBreakdown:
        """Modelled wall-clock time of *plan* on the target cluster."""
        return model_simulation_time(plan, machine, cost_model)

    def planner_key(self) -> tuple | None:
        """Adapter hook: the backend's own planner identity, or ``None``.

        ``None`` (all the Atlas-pipeline backends) means the Session's
        stager/kernelizer configuration keys the plan cache; a backend with
        its own partitioner (the modelled baselines) returns a stable tuple
        instead, so its plans are cached separately.
        """
        return None

    def make_plan(
        self, circuit: Circuit, machine: MachineConfig
    ) -> ExecutionPlan | None:
        """Adapter hook: build a plan with the backend's own partitioner.

        Returning ``None`` (the default) asks the Session to plan through
        its Atlas pipeline; only called on plan-cache misses.
        """
        return None

    def close(self) -> None:
        """Release backend-owned resources (pools, buffers)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ReferenceBackend(ExecutionBackend):
    """Gate-by-gate execution on the full state — the correctness oracle.

    Runs the *circuit* (when provided) in its original gate order, making
    the result bit-identical with :func:`repro.sim.simulate_reference`;
    falls back to the plan's (topologically equivalent) gate order when
    only a plan exists.
    """

    name = "reference"

    def run_plan(self, plan, machine, initial_state=None, circuit=None, schedule_key=None, program=None, deadline=None):
        if deadline is not None:
            deadline.check("job")
        n = plan.num_qubits
        if initial_state is None:
            state = StateVector.zero_state(n)
        else:
            if initial_state.num_qubits != n:
                raise PlanValidationError("initial state size does not match plan")
            state = initial_state.copy()
        gates = circuit.gates if circuit is not None else plan.all_gates()
        state.apply_circuit(gates)
        return state, None


class InCoreBackend(ExecutionBackend):
    """Single-stream staged executor on in-memory buffers.

    Runs the compiled program the Session's plan cache carries (zero
    per-gate dispatch; the structural cache rebinds programs across a
    parameter sweep).  Batch items that share one program — a circuit
    fanned out over many initial states, a shots/observables sweep —
    execute as a single stacked ``(B, 2^n)`` pass with B-wide GEMM and
    broadcast calls per op instead of B independent runs.
    """

    name = "incore"
    uses_programs = True

    def run_plan(self, plan, machine, initial_state=None, circuit=None, schedule_key=None, program=None, deadline=None):
        if deadline is not None:
            deadline.check("job")
        try:
            faults.check("kernel_apply")
            if program is not None:
                return program.run(initial_state), trace_for_program(program)
            return execute_plan(plan, initial_state=initial_state, machine=machine)
        except (KernelError, TransientError):
            # Compiled-program failure → the bit-exact per-gate interpreter.
            self.fallbacks = getattr(self, "fallbacks", 0) + 1
            return execute_plan(
                plan, initial_state=initial_state, machine=machine, compiled=False
            )

    def run_batch(self, items, machine, schedule_keys=None, programs=None, deadline=None):
        if programs is None:
            return super().run_batch(
                items, machine, schedule_keys=schedule_keys, deadline=deadline
            )
        results: list[tuple[StateVector, object] | None] = [None] * len(items)
        index = 0
        while index < len(items):
            if deadline is not None:
                deadline.check("batch item")
            program = programs[index]
            span = index + 1
            while program is not None and span < len(items) and programs[span] is program:
                span += 1
            if span - index > 1:
                # One program, many initial states: a single (B, 2^n) pass.
                states = [state for _plan, state, _circuit in items[index:span]]
                try:
                    faults.check("kernel_apply")
                    for offset, final in enumerate(program.run_batched(states)):
                        results[index + offset] = (final, trace_for_program(program))
                except (KernelError, TransientError):
                    # Degrade the whole stacked pass to per-item interpreter
                    # runs; the batch stays bit-exact with the program path.
                    self.fallbacks = getattr(self, "fallbacks", 0) + 1
                    for offset, (plan, state, _circuit) in enumerate(items[index:span]):
                        results[index + offset] = execute_plan(
                            plan, initial_state=state, machine=machine,
                            compiled=False,
                        )
            else:
                plan, state, circuit = items[index]
                results[index] = self.run_plan(
                    plan, machine, initial_state=state, circuit=circuit,
                    program=program, deadline=deadline,
                )
            index = span
        return results


class OffloadBackend(ExecutionBackend):
    """Sequential DRAM shard-streaming executor (one load per stage per shard)."""

    name = "offload"
    supports_checkpoints = True

    def run_plan(self, plan, machine, initial_state=None, circuit=None, schedule_key=None, program=None, deadline=None, checkpoint=None, resume_from=None, monitor=None):
        state, stats = execute_plan_offloaded(
            plan,
            machine,
            initial_state=initial_state,
            deadline=deadline,
            retry=getattr(self, "retry", None),
            checkpoint=checkpoint,
            resume_from=resume_from,
            monitor=monitor,
        )
        self.retries = getattr(self, "retries", 0) + stats.retries
        self.fallbacks = getattr(self, "fallbacks", 0) + stats.fallbacks
        return state, stats


class ParallelBackend(ExecutionBackend):
    """Parallel shard scheduler: worker pool, prefetch, schedule cache.

    Owns one long-lived :class:`ParallelRuntime` per machine configuration
    so repeated and batched jobs reuse pools, device buffers, DRAM scratch
    and cached segmentation shapes.
    """

    name = "parallel"
    supports_checkpoints = True

    def __init__(self, num_workers: int | None = None, retry: RetryPolicy | None = None):
        self.num_workers = num_workers
        self.retry = retry
        self._runtimes: dict[object, ParallelRuntime] = {}

    def runtime_for(self, machine: MachineConfig) -> ParallelRuntime:
        key = freeze_config(machine)
        runtime = self._runtimes.get(key)
        if runtime is None:
            runtime = self._runtimes[key] = ParallelRuntime(
                machine,
                num_workers=self.num_workers,
                retry=getattr(self, "retry", None),
            )
        return runtime

    def run_plan(self, plan, machine, initial_state=None, circuit=None, schedule_key=None, program=None, deadline=None, checkpoint=None, resume_from=None, monitor=None):
        return self.runtime_for(machine).execute(
            plan, initial_state, schedule_key=schedule_key, deadline=deadline,
            checkpoint=checkpoint, resume_from=resume_from, monitor=monitor,
        )

    def run_batch(self, items, machine, schedule_keys=None, programs=None, deadline=None, checkpoint=None, resume_from=None, monitor=None):
        runtime = self.runtime_for(machine)
        pairs = [(plan, state) for plan, state, _circuit in items]
        return runtime.run_batch(
            pairs, schedule_keys=schedule_keys, deadline=deadline,
            checkpoint=checkpoint, resume_from=resume_from, monitor=monitor,
        )

    def schedule_cache_counters(self) -> tuple[int, int]:
        """Summed ``(hits, misses)`` of every owned runtime's schedule cache."""
        hits = sum(r.schedule_cache_hits for r in self._runtimes.values())
        misses = sum(r.schedule_cache_misses for r in self._runtimes.values())
        return hits, misses

    def exec_lock_counters(self) -> tuple[int, float]:
        """Summed ``(acquisitions, wait_seconds)`` of every owned runtime's
        exec lock — the pool-convoying signal the service watchdog reads."""
        acq = sum(r.exec_lock_acquisitions for r in self._runtimes.values())
        waited = sum(r.exec_lock_wait_seconds for r in self._runtimes.values())
        return acq, waited

    def recovery_counters(self) -> dict:
        return {
            "retries": sum(r.retries for r in self._runtimes.values()),
            "fallbacks": getattr(self, "fallbacks", 0)
            + sum(r.fallbacks for r in self._runtimes.values()),
            "quarantined_workers": sum(
                r.quarantined_workers for r in self._runtimes.values()
            ),
        }

    def close(self):
        for runtime in self._runtimes.values():
            runtime.close()
        self._runtimes.clear()


class BaselineBackend(ExecutionBackend):
    """A modelled baseline simulator as a session backend.

    Plans come from the baseline's *own* partitioning strategy
    (:meth:`make_plan`, cached by the Session under the baseline's planner
    key), functional execution goes through the staged executor so the
    baseline still computes the correct state, and :meth:`timing` scales
    the shared performance model by the baseline's kernel/communication
    overhead factors — exactly what the paper's Figure 5 curves measure.
    """

    def __init__(self, simulator: BaselineSimulator):
        self.simulator = simulator
        self.name = simulator.name

    def planner_key(self):
        return ("baseline", type(self.simulator).__name__, self.name)

    def make_plan(self, circuit, machine):
        return self.simulator.partition(circuit, machine)

    def run_plan(self, plan, machine, initial_state=None, circuit=None, schedule_key=None, program=None, deadline=None):
        if deadline is not None:
            deadline.check("job")
        # Baseline staging heuristics satisfy their own locality notion but
        # not necessarily Atlas's per-stage invariant; the functional check
        # is correctness of the final state, not the invariant.
        return execute_plan(
            plan, initial_state=initial_state, machine=machine, check_locality=False
        )

    def timing(self, plan, machine, cost_model):
        return model_simulation_time(
            plan,
            machine,
            cost_model=cost_model,
            kernel_overhead_factor=self.simulator.kernel_overhead_factor,
            comm_overhead_factor=self.simulator.comm_overhead_factor,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Backend factories by registry name.  Factories (not instances) so every
#: Session owns private backend state.
BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register a backend *factory* under *name* (overwrites existing)."""
    BACKENDS[name] = factory


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under *name*."""
    try:
        factory = BACKENDS[name]
    except KeyError as exc:
        raise ValueError(  # lint: config-error
            f"unknown backend {name!r}; known: {available_backends()}"
        ) from exc
    backend = factory()
    backend.name = name
    return backend


def available_backends() -> list[str]:
    """Sorted registry names (``"auto"`` is a selection rule, not listed)."""
    return sorted(BACKENDS)


def select_auto_backend(machine: MachineConfig, num_qubits: int) -> str:
    """The documented ``"auto"`` rule: state size vs. device memory.

    ``"incore"`` when the full state fits in aggregate GPU device memory
    (``machine.fits_in_gpus``); ``"parallel"`` when it does not, because an
    oversized state must stream through the devices shard by shard and the
    parallel runtime pipelines those loads.
    """
    return "incore" if machine.fits_in_gpus(num_qubits) else "parallel"


register_backend("reference", ReferenceBackend)
register_backend("incore", InCoreBackend)
register_backend("offload", OffloadBackend)
register_backend("parallel", ParallelBackend)
for _name in ("hyquas", "cuquantum", "qiskit"):
    register_backend(
        _name, lambda _cls=SIMULATORS[_name]: BaselineBackend(_cls())
    )

"""Unified Session facade: pluggable backends, structural plan cache, job API.

See :class:`Session` for the front door, :mod:`repro.session.backends` for
the backend registry and the ``"auto"`` selection rule, and
:mod:`repro.session.cache` for the structural plan cache that amortises
partitioning across parameter sweeps.
"""

from .backends import (
    BACKENDS,
    BaselineBackend,
    ExecutionBackend,
    InCoreBackend,
    OffloadBackend,
    ParallelBackend,
    ReferenceBackend,
    available_backends,
    make_backend,
    register_backend,
    select_auto_backend,
)
from .cache import (
    CacheStats,
    PlanCache,
    plan_cache_key,
    plan_fingerprint,
    plan_skeleton,
    rebind_plan,
    relabel_plan,
    shared_plan_key,
    skeleton_fingerprint,
    skeleton_to_plan,
)
from .result import Job, JobStatus, Result, normalize_observable
from .session import Session, SessionStats

__all__ = [
    "Session",
    "SessionStats",
    "Job",
    "JobStatus",
    "Result",
    "normalize_observable",
    "PlanCache",
    "CacheStats",
    "plan_cache_key",
    "plan_fingerprint",
    "plan_skeleton",
    "rebind_plan",
    "relabel_plan",
    "shared_plan_key",
    "skeleton_fingerprint",
    "skeleton_to_plan",
    "ExecutionBackend",
    "ReferenceBackend",
    "InCoreBackend",
    "OffloadBackend",
    "ParallelBackend",
    "BaselineBackend",
    "BACKENDS",
    "register_backend",
    "make_backend",
    "available_backends",
    "select_auto_backend",
]

"""The :class:`Session` facade — one front door for every execution path.

A Session owns the three things a production simulation service must
amortise across requests:

* a **backend registry instance** — adapters over every executor
  (:mod:`repro.session.backends`), with ``"auto"`` picking in-core vs.
  shard-streaming per job by state size vs. device memory;
* a **structural plan cache** (:mod:`repro.session.cache`) — ILP staging
  and DP kernelization run once per circuit *structure*; every further
  circuit of a parameter sweep re-binds the cached plan to its own angles;
* a **job API** — ``run(circuit_or_circuits, shots=..., observables=...)``
  returning :class:`~repro.session.result.Job`/:class:`~repro.session.result.Result`
  objects carrying states, samples, expectation values, modelled timing and
  plan provenance, with batches routed through
  :meth:`ParallelRuntime.run_batch` so pools, buffers and cached
  segmentation shapes are reused.

Quick start::

    from repro import MachineConfig, Session
    from repro.circuits.library import vqc

    machine = MachineConfig.for_circuit(12, num_shards=4, local_qubits=10)
    with Session(machine) as session:
        sweep = [vqc(12, seed=s) for s in range(50)]
        job = session.run(sweep, shots=256, observables=[0, (0, 1)])
        print(session.stats.as_dict())   # 1 plan built, 49 cache hits

:func:`repro.simulate` is a thin one-shot shim over this class.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from ..cluster.machine import MachineConfig
from ..core.kernelize import KernelizeConfig
from ..core.partitioner import PartitionReport
from ..core.plan import ExecutionPlan
from ..errors import (
    AdmissionError,
    CacheCorruptionError,
    Deadline,
    KernelError,
    PlanValidationError,
    ReproError,
    RetryPolicy,
    SessionClosedError,
    StateValidationError,
    TransientError,
)
from ..planner.pipeline import PassManager, legacy_pipeline, resolve_planner
from ..runtime import faults as _faults
from ..runtime.compile import compile_plan
from ..runtime.faults import FaultInjector
from ..sim.fusion import fusion_cache_stats
from ..sim.program import CompiledProgram
from ..sim.statevector import StateVector
from .backends import (
    BACKENDS,
    ExecutionBackend,
    ParallelBackend,
    make_backend,
    select_auto_backend,
)
from .cache import (
    PlanCache,
    freeze_config,
    plan_cache_key,
    plan_skeleton,
    rebind_plan,
    relabel_plan,
    shared_plan_key,
    skeleton_to_plan,
)
from .result import Job, Result, normalize_observable

__all__ = ["Session", "SessionStats"]

#: Sentinel distinguishing "knob not passed" from an explicit ``None``
#: (``ilp_time_limit=None`` means an unlimited per-solve budget).
_UNSET = object()


@dataclass
class SessionStats:
    """Aggregate accounting of one Session's lifetime."""

    jobs: int = 0
    circuits_run: int = 0
    #: Plans actually built (cache misses that ran the partitioner).
    plans_built: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cross-tenant shared plan-store counters (``Session(shared_cache=...)``):
    #: hits served by binding another submitter's canonical plan skeleton,
    #: and lookups that fell through to the planner.
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    #: Functional executions per backend name.
    backend_runs: dict[str, int] = field(default_factory=dict)
    #: Wall time spent partitioning (cache misses only), seconds.
    plan_seconds: float = 0.0
    #: Wall time spent in functional execution, seconds.
    execute_seconds: float = 0.0
    #: Cumulative wall seconds per planning pass across cache misses.
    planning_pass_seconds: dict[str, float] = field(default_factory=dict)
    #: Planning-pass skip counters: pass name -> times it skipped its work
    #: (e.g. the stage pass after the fits-locally shortcut).
    planning_passes_skipped: dict[str, int] = field(default_factory=dict)
    #: Parallel-runtime segmentation cache counters (hits, misses).
    schedule_cache_hits: int = 0
    schedule_cache_misses: int = 0
    #: Compiled programs built from scratch (plan-cache misses on
    #: program-running backends).
    programs_compiled: int = 0
    #: Programs produced by rebinding a cached program to new angles.
    programs_rebound: int = 0
    #: Ops taken verbatim from the cached program across all rebinds
    #: (constant-structure gates whose payload never changes).
    program_ops_reused: int = 0
    #: Bounded fused-unitary cache counters, attributed to this session
    #: (deltas of the process-wide cache since the session was created).
    fusion_cache_hits: int = 0
    fusion_cache_misses: int = 0
    fusion_cache_evictions: int = 0
    #: Recovery accounting (see ``docs/robustness.md``): transient shard
    #: retries across the session's runtimes, graceful degradations taken
    #: (backend chain, compiled-program → interpreter, planner preset →
    #: fallback, cache evict-and-replan), workers quarantined after
    #: exhausting their retry budget, injected faults fired, and cache
    #: entries evicted for failing their integrity check.
    retries: int = 0
    fallbacks: int = 0
    quarantined_workers: int = 0
    faults_injected: int = 0
    cache_corruptions: int = 0
    #: Static-verification passes run over plans/programs/schedules
    #: (``Session(check="plans"|"full")``; zero when checking is off).
    static_checks: int = 0
    #: Durability accounting (``docs/robustness.md`` § Durable execution):
    #: stage-boundary checkpoints written, checkpoint writes that failed
    #: (advisory — the run continued), integrity-monitor boundary checks
    #: performed, and the worst relative norm drift observed.
    checkpoints_written: int = 0
    checkpoint_errors: int = 0
    integrity_checks: int = 0
    max_norm_drift: float = 0.0
    #: Parallel-runtime exec-lock contention: executions that took the
    #: lock, and total seconds spent waiting while another job held it —
    #: the "pool convoying vs stuck job" signal the service watchdog uses.
    exec_lock_acquisitions: int = 0
    exec_lock_wait_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "circuits_run": self.circuits_run,
            "plans_built": self.plans_built,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                self.cache_hits / (self.cache_hits + self.cache_misses)
                if (self.cache_hits + self.cache_misses)
                else 0.0
            ),
            "shared_cache_hits": self.shared_cache_hits,
            "shared_cache_misses": self.shared_cache_misses,
            "backend_runs": dict(self.backend_runs),
            "plan_seconds": self.plan_seconds,
            "planning_pass_seconds": dict(self.planning_pass_seconds),
            "planning_passes_skipped": dict(self.planning_passes_skipped),
            "execute_seconds": self.execute_seconds,
            "schedule_cache_hits": self.schedule_cache_hits,
            "schedule_cache_misses": self.schedule_cache_misses,
            "programs_compiled": self.programs_compiled,
            "programs_rebound": self.programs_rebound,
            "program_ops_reused": self.program_ops_reused,
            "fusion_cache_hits": self.fusion_cache_hits,
            "fusion_cache_misses": self.fusion_cache_misses,
            "fusion_cache_evictions": self.fusion_cache_evictions,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "quarantined_workers": self.quarantined_workers,
            "faults_injected": self.faults_injected,
            "cache_corruptions": self.cache_corruptions,
            "static_checks": self.static_checks,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_errors": self.checkpoint_errors,
            "integrity_checks": self.integrity_checks,
            "max_norm_drift": self.max_norm_drift,
            "exec_lock_acquisitions": self.exec_lock_acquisitions,
            "exec_lock_wait_seconds": self.exec_lock_wait_seconds,
        }


class Session:
    """Unified facade over partitioning, caching, and every execution backend.

    Parameters
    ----------
    machine:
        Default cluster configuration for this session's jobs; individual
        :meth:`run` calls may override it.
    backend:
        Default backend name: ``"auto"`` (selection by state size vs.
        device memory), one of the registered executors (``"reference"``,
        ``"incore"``, ``"offload"``, ``"parallel"``), or a modelled
        baseline (``"hyquas"``, ``"cuquantum"``, ``"qiskit"``).
    planner:
        Planning pipeline: a preset name (``"fast"`` / ``"balanced"`` /
        ``"quality"`` or anything registered with
        :func:`repro.planner.register_preset`), a
        :class:`repro.planner.PassManager`, or ``None`` for the default
        (``"balanced"``; per-:meth:`run` override available).  The full
        pipeline configuration is part of the plan-cache key, so plans
        produced by different pipelines never alias each other.
    cost_model:
        Kernel cost model; part of the plan-cache key.
    stager, kernelizer, kernelize_config, ilp_time_limit:
        Legacy planning knobs (see :func:`repro.core.partition`), mapped
        onto a fixed pipeline via :func:`repro.planner.legacy_pipeline`.
        Mutually exclusive with ``planner``.
    seed:
        Seed of the session RNG used for measurement sampling.  Repeated
        ``run(shots=...)`` calls draw *independent* samples from this one
        generator; two sessions with equal seeds draw identical sequences.
    cache_size:
        Maximum number of plan structures kept in the cache.
    retry:
        :class:`~repro.errors.RetryPolicy` for transient failures in the
        shard runtimes (default: the shared bounded-backoff policy).
    faults:
        Fault-injection plan for this session's jobs: a
        :class:`~repro.runtime.faults.FaultPlan`, a spec string
        (``"shard_load:transient:2"``), or a list of
        :class:`~repro.runtime.faults.FaultSpec`.  Activated around each
        :meth:`run` call; see ``docs/robustness.md``.
    degrade:
        Allow graceful degradation (the backend fallback chain, planner
        preset fallback).  ``False`` turns every degradation point into an
        immediate typed error.
    memory_budget_bytes:
        Modelled device-memory budget for the admission check: jobs whose
        modelled working set exceeds it are degraded down the backend
        chain (``incore`` → ``offload`` → ``parallel``) or rejected with
        :class:`~repro.errors.AdmissionError`.  ``None`` disables the
        check.
    shared_cache:
        Optional cross-tenant shared plan store (typically a
        :class:`repro.service.SharedPlanStore`).  Consulted on local
        plan-cache misses under the circuit's *canonical* (qubit-relabel
        invariant) structural key, and fed every plan this session builds
        through the Atlas pipeline — so structurally equivalent circuits
        from different sessions/tenants share one cold plan, and a store
        with a persistence directory warms restarted services from disk.
        Entries that fail their integrity checksum are evicted and
        replanned, never trusted.
    check:
        Static-verification mode (see ``docs/static-analysis.md``):
        ``"off"`` (default — a single branch, no other overhead) runs no
        checks; ``"plans"`` verifies every plan leaving :meth:`plan_for`
        (:func:`repro.check.verify_plan`); ``"full"`` additionally
        verifies compiled op streams (:func:`repro.check.verify_program`)
        and, on the sharded backends, the parallel shard schedule
        (:func:`repro.check.verify_schedule`).  Violations raise
        :class:`~repro.errors.StaticCheckError` before anything executes.
    monitor:
        Runtime integrity monitoring on the shard backends (see
        ``docs/robustness.md`` § Durable execution): ``True`` (or an
        :class:`~repro.runtime.IntegrityConfig`) checks state-norm
        conservation and inter-stage checksums at every stage boundary,
        raising :class:`~repro.errors.IntegrityError` on corruption;
        telemetry lands in ``stats.integrity_checks`` /
        ``stats.max_norm_drift``.  Off by default (one digest pass over
        the state per boundary).

    Use as a context manager (or call :meth:`close`) to release
    backend-owned worker pools and buffers.  :meth:`close` is idempotent;
    any use after it raises :class:`~repro.errors.SessionClosedError`.
    """

    def __init__(
        self,
        machine: MachineConfig | None = None,
        backend: str = "auto",
        cost_model: CostModel = DEFAULT_COST_MODEL,
        planner: "str | PassManager | None" = None,
        stager: str | None = None,
        kernelizer: str | None = None,
        kernelize_config: KernelizeConfig | None = None,
        ilp_time_limit: "float | None | object" = _UNSET,
        seed: int = 0,
        cache_size: int = 128,
        retry: RetryPolicy | None = None,
        faults: "object | None" = None,
        degrade: bool = True,
        memory_budget_bytes: int | None = None,
        check: str = "off",
        shared_cache: "object | None" = None,
        monitor: "object | None" = None,
    ):
        if backend != "auto" and backend not in BACKENDS:
            raise ValueError(  # lint: config-error
                f"unknown backend {backend!r}; known: "
                f"{['auto'] + sorted(BACKENDS)}"
            )
        if check not in ("off", "plans", "full"):
            raise ValueError(  # lint: config-error
                f"unknown check mode {check!r}; known: ['off', 'plans', 'full']"
            )
        self.machine = machine
        self.backend = backend
        self.cost_model = cost_model
        legacy_given = (
            stager is not None
            or kernelizer is not None
            or kernelize_config is not None
            or ilp_time_limit is not _UNSET
        )
        if legacy_given:
            if planner is not None:
                raise ValueError(  # lint: config-error
                    "pass planner=... or the legacy stager/kernelizer/"
                    "kernelize_config/ilp_time_limit knobs, not both"
                )
            self.planner = legacy_pipeline(
                stager=stager if stager is not None else "ilp",
                kernelizer=kernelizer if kernelizer is not None else "atlas",
                kernelize_config=kernelize_config,
                # An explicit None keeps its historical meaning: no
                # per-solve time limit.
                ilp_time_limit=(
                    120.0 if ilp_time_limit is _UNSET else ilp_time_limit
                ),
            )
        else:
            self.planner = resolve_planner(planner)
        self.kernelize_config = kernelize_config
        self.cache = PlanCache(maxsize=cache_size)
        self.stats = SessionStats()
        self.retry = retry
        self.degrade = degrade
        self.memory_budget_bytes = memory_budget_bytes
        self.check = check
        self.shared_cache = shared_cache
        self.monitor = monitor
        #: Serializes ``run``/``plan_for`` so one Session may be shared by
        #: a service scheduler and deferred-job resolvers on other threads
        #: (reentrant: a deferred thunk re-enters ``run`` on its own
        #: thread without deadlocking).
        self._lock = threading.RLock()
        self._injector = FaultInjector(faults) if faults is not None else None
        #: Session-level degradations (backend chain, planner fallback,
        #: program-compile fallback, cache evict-and-replan); backend-level
        #: counters are aggregated separately (see ``_recovery_totals``).
        self._session_fallbacks = 0
        self._fusion_baseline = fusion_cache_stats()
        self._rng = np.random.default_rng(seed)
        self._backends: dict[str, ExecutionBackend] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release every backend's pools/buffers and drop the plan cache.

        Idempotent: closing an already-closed session is a no-op.  Any
        later use raises :class:`~repro.errors.SessionClosedError`.
        """
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        self.cache.clear()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Backend resolution
    # ------------------------------------------------------------------

    def backend_instance(self, name: str) -> ExecutionBackend:
        """This session's instance of the backend registered under *name*."""
        if self._closed:
            raise SessionClosedError("Session is closed")
        instance = self._backends.get(name)
        if instance is None:
            instance = self._backends[name] = make_backend(name)
            # Backends consult getattr(self, "retry", None) when building
            # their runtimes; only fill it when the factory left it unset.
            if self.retry is not None and getattr(instance, "retry", None) is None:
                instance.retry = self.retry
        return instance

    def resolve_backend(
        self, num_qubits: int, machine: MachineConfig, backend: str | None = None
    ) -> str:
        """The backend name a job with these parameters will run on."""
        name = backend if backend is not None else self.backend
        if name == "auto":
            return select_auto_backend(machine, num_qubits)
        if name not in BACKENDS:
            raise ValueError(  # lint: config-error
                f"unknown backend {name!r}; known: {['auto'] + sorted(BACKENDS)}"
            )
        return name

    def _resolve_machine(self, machine: MachineConfig | None) -> MachineConfig:
        resolved = machine if machine is not None else self.machine
        if resolved is None:
            raise ValueError(  # lint: config-error
                "no machine: pass machine= to Session(...) or to run(...)"
            )
        return resolved

    # ------------------------------------------------------------------
    # Robustness helpers: admission, degradation chain, recovery totals
    # ------------------------------------------------------------------

    #: Ordered degradation chain: each backend's smaller-working-set
    #: successor.  ``incore`` holds the full state in device memory;
    #: ``offload`` streams one shard's buffers; ``parallel`` streams one
    #: shard-buffer set per worker but recovers transient faults in flight.
    _BACKEND_CHAIN = {"incore": "offload", "offload": "parallel"}

    def _next_backend(self, name: str) -> str | None:
        return self._BACKEND_CHAIN.get(name)

    def _modelled_device_bytes(
        self, name: str, machine: MachineConfig, num_qubits: int
    ) -> int:
        """Modelled device-memory working set of one job on backend *name*.

        Complex128 amplitudes: the in-core executors ping-pong two full
        state buffers; the shard runtimes hold two buffer pairs of ``2^L``
        amplitudes per worker (the double-buffered prefetch), with the
        state itself residing in DRAM.
        """
        full = 2 * 16 * (1 << num_qubits)
        if num_qubits <= machine.local_qubits or name not in ("offload", "parallel"):
            return full
        shard_pairs = 4 * 16 * (1 << machine.local_qubits)
        if name == "offload":
            return shard_pairs
        workers = max(1, min(machine.num_shards, machine.physical_gpus))
        return workers * shard_pairs

    def modelled_device_bytes(
        self, backend_name: str, machine: MachineConfig, num_qubits: int
    ) -> int:
        """Public admission model: one job's modelled device working set.

        Used by this session's own admission check and by the service
        layer's :class:`repro.service.AdmissionController`.
        """
        return self._modelled_device_bytes(backend_name, machine, num_qubits)

    def _admit(
        self,
        backend_name: str,
        machine: MachineConfig,
        num_qubits: int,
        execute: bool,
    ) -> tuple[str, list[str]]:
        """Admission check: reject or degrade over-budget jobs up front.

        With ``memory_budget_bytes`` unset this is a no-op.  Otherwise the
        job's modelled working set must fit the budget; when it does not,
        ``degrade=True`` walks the backend chain to the first admissible
        backend (each hop counted as a fallback) and ``degrade=False`` —
        or an exhausted chain — raises
        :class:`~repro.errors.AdmissionError`.
        Returns ``(admitted_backend, chain_walked)``.
        """
        chain = [backend_name]
        if not execute or self.memory_budget_bytes is None:
            return backend_name, chain
        budget = self.memory_budget_bytes
        name = backend_name
        while True:
            need = self._modelled_device_bytes(name, machine, num_qubits)
            if need <= budget:
                if len(chain) > 1:
                    self._session_fallbacks += len(chain) - 1
                return name, chain
            nxt = self._next_backend(name) if self.degrade else None
            if nxt is None:
                raise AdmissionError(
                    f"modelled working set of {need} bytes on backend "
                    f"{name!r} exceeds the memory budget of {budget} bytes"
                    + (
                        ""
                        if self.degrade
                        else " (degrade=False disables the fallback chain)"
                    ),
                    backend=name,
                    bytes_needed=need,
                    budget=budget,
                )
            name = nxt
            chain.append(name)

    def _recovery_totals(self) -> dict:
        """Cumulative recovery counters: session-level + every backend's."""
        totals = {
            "retries": 0,
            "fallbacks": self._session_fallbacks,
            "quarantined_workers": 0,
        }
        for backend in self._backends.values():
            counters = backend.recovery_counters()
            for key in ("retries", "fallbacks", "quarantined_workers"):
                totals[key] += counters.get(key, 0)
        return totals

    def _validate_state(
        self, state: StateVector | None, normalize: bool
    ) -> StateVector | None:
        """Early initial-state validation (see ``run(normalize=...)``).

        Rejects non-finite amplitudes outright and badly non-normalized
        states unless ``normalize=True``, which renormalizes a copy — NaNs
        and norm drift are caught here, at the front door, not after
        propagating through every stage of the plan.
        """
        if state is None:
            return None
        data = state.data
        if not np.all(np.isfinite(data)):
            raise StateValidationError(
                "initial state contains non-finite amplitudes"
            )
        norm = float(np.linalg.norm(data))
        if abs(norm - 1.0) <= 1e-6:
            return state
        if not normalize:
            raise StateValidationError(
                f"initial state has norm {norm:.6g}, not 1; pass "
                f"normalize=True to renormalize it"
            )
        if norm == 0.0:
            raise StateValidationError("cannot normalize the zero state")
        return StateVector(state.num_qubits, data / norm)

    # ------------------------------------------------------------------
    # Planning (through the structural cache)
    # ------------------------------------------------------------------

    def resolve_planner_manager(
        self, planner: "str | PassManager | None" = None
    ) -> PassManager:
        """The pipeline a job with this *planner* override will plan with."""
        if planner is None:
            return self.planner
        return resolve_planner(planner)

    def _planner_key(self, manager: PassManager | None = None) -> tuple:
        """Cache-key component identifying the full planning configuration.

        Everything that can influence the produced plan is folded in: the
        complete pipeline signature (pass sequence, every pass's options,
        preset name, time budget) plus the cost model.  Two different
        presets/pipelines therefore can never share — or rebind from — one
        structural cache entry.
        """
        if manager is None:
            manager = self.planner
        return (
            "atlas-pipeline",
            manager.signature(),
            freeze_config(self.cost_model),
        )

    def plan_for(
        self,
        circuit: Circuit,
        machine: MachineConfig | None = None,
        backend: str | None = None,
        compile_programs: bool = True,
        planner: "str | PassManager | None" = None,
    ) -> tuple[ExecutionPlan, PartitionReport | None, bool, str, CompiledProgram | None]:
        """Plan *circuit* through the structural cache.

        Returns ``(plan, report, cache_hit, schedule_key, program)``.  On a
        hit the plan is the cached structure re-bound to this circuit's
        gates and ``report`` is ``None`` (no preprocessing happened); on a
        miss the partitioner runs and the result is cached.
        ``schedule_key`` is a stable string naming the structure, passed to
        runtimes that cache per-structure schedules.  ``program`` is the
        plan's compiled op stream when the resolved backend runs programs
        (``None`` otherwise): compiled once on a miss, and on a hit rebound
        from the cached program — only ops whose gates changed (new angles)
        are recompiled, and the whole family shares one workspace.
        ``compile_programs=False`` skips all program work (``run`` passes
        it for ``execute=False`` jobs, which never execute a program).

        With a ``shared_cache`` configured, a local miss consults the
        cross-tenant store under the circuit's canonical structural key:
        a shared hit binds the stored plan skeleton to this circuit
        (relabeled out of canonical form when needed) without running the
        partitioner, and every pipeline-built plan is published back.
        """
        with self._lock:
            return self._plan_for_locked(
                circuit, machine, backend, compile_programs, planner
            )

    def _plan_for_locked(
        self,
        circuit: Circuit,
        machine: MachineConfig | None,
        backend: str | None,
        compile_programs: bool,
        planner: "str | PassManager | None",
    ) -> tuple[ExecutionPlan, PartitionReport | None, bool, str, CompiledProgram | None]:
        machine = self._resolve_machine(machine)
        backend_name = self.resolve_backend(circuit.num_qubits, machine, backend)
        backend_obj = self.backend_instance(backend_name)
        manager = self.resolve_planner_manager(planner)

        planner_key = backend_obj.planner_key()
        if planner_key is None:
            planner_key = self._planner_key(manager)
        key = plan_cache_key(circuit, machine, planner_key)
        # Collision-resistant structure name (built-in hash() is not): the
        # blake2b structural fingerprint plus a digest of the machine and
        # planner parts of the cache key.
        tail = hashlib.blake2b(repr(key[1:]).encode(), digest_size=8).hexdigest()
        schedule_key = f"session-plan-{key[0]}-{tail}"

        try:
            cached = self.cache.get(key)
            if cached is not None:
                _faults.check("cache_rebind")
        except CacheCorruptionError:
            # A poisoned entry (failed checksum, or an injected
            # ``cache_rebind`` fault): evict it and replan from scratch
            # instead of executing a corrupted structure.
            self.cache.evict(key)
            self.stats.cache_corruptions += 1
            self._session_fallbacks += 1
            cached = None
        if cached is not None:
            plan, report, base_program = cached
            self.stats.cache_hits += 1
            rebound = rebind_plan(plan, circuit)
            program = None
            if compile_programs and backend_obj.uses_programs:
                try:
                    if base_program is None:
                        # The entry was populated by a backend that does not
                        # run programs (they share the Atlas planner key);
                        # compile the cached base plan once and upgrade the
                        # entry so later hits only rebind.
                        base_program = compile_plan(plan, machine)
                        self.stats.programs_compiled += 1
                        self.cache.put(key, plan, report, base_program)
                    program = compile_plan(rebound, machine, reuse=base_program)
                    self.stats.programs_rebound += 1
                    self.stats.program_ops_reused += program.ops_reused
                except (KernelError, TransientError):
                    # Program lowering failed: run this job through the
                    # backend's uncompiled path instead of failing it.
                    program = None
                    self._session_fallbacks += 1
            if self.check != "off":
                self._static_check(rebound, machine, circuit, program, backend_name)
            return rebound, None, True, schedule_key, program
        self.stats.cache_misses += 1

        # Local miss: try the cross-tenant shared store under the circuit's
        # canonical (qubit-relabel invariant) structural key before paying
        # for the partitioner.
        shared = self.shared_cache
        shared_key = shared_mapping = None
        if shared is not None:
            shared_key, shared_mapping = shared_plan_key(
                circuit, machine, planner_key
            )
            plan = self._bind_shared_plan(shared, shared_key, shared_mapping, circuit)
            if plan is not None:
                self.stats.shared_cache_hits += 1
                program = None
                if compile_programs and backend_obj.uses_programs:
                    try:
                        program = compile_plan(plan, machine)
                        self.stats.programs_compiled += 1
                    except (KernelError, TransientError):
                        program = None
                        self._session_fallbacks += 1
                # Upgrade to a local entry so later same-structure jobs
                # rebind (and share the program workspace) locally.
                self.cache.put(key, plan, None, program)
                if self.check != "off":
                    self._static_check(plan, machine, circuit, program, backend_name)
                return plan, None, True, schedule_key, program
            self.stats.shared_cache_misses += 1

        t0 = time.perf_counter()
        backend_plan = backend_obj.make_plan(circuit, machine)
        if backend_plan is not None:
            plan, report = backend_plan, None
        else:
            plan, report = self._plan_with_fallback(circuit, machine, manager)
            for name, seconds in report.pass_seconds.items():
                self.stats.planning_pass_seconds[name] = (
                    self.stats.planning_pass_seconds.get(name, 0.0) + seconds
                )
            for name in report.passes_skipped:
                self.stats.planning_passes_skipped[name] = (
                    self.stats.planning_passes_skipped.get(name, 0) + 1
                )
        self.stats.plan_seconds += time.perf_counter() - t0
        self.stats.plans_built += 1
        program = None
        if compile_programs and backend_obj.uses_programs:
            try:
                program = compile_plan(plan, machine)
                self.stats.programs_compiled += 1
            except (KernelError, TransientError):
                program = None
                self._session_fallbacks += 1
        self.cache.put(key, plan, report, program)
        if shared is not None and backend_plan is None:
            # Publish pipeline-built plans (only — baseline partitioners
            # keep to the local cache) in canonical labels, so any
            # relabeled twin from another tenant binds the same skeleton.
            shared.put(
                shared_key, plan_skeleton(relabel_plan(plan, shared_mapping), program)
            )
        if self.check != "off":
            self._static_check(plan, machine, circuit, program, backend_name)
        return plan, report, False, schedule_key, program

    def _bind_shared_plan(
        self,
        shared,
        shared_key: tuple,
        mapping: dict,
        circuit: Circuit,
    ) -> ExecutionPlan | None:
        """Look up and bind a shared-store skeleton; ``None`` on any miss.

        Integrity failures — a checksum mismatch surfaced by the store, an
        injected ``cache_rebind`` fault, or a skeleton that no longer fits
        the circuit — evict the entry and fall back to planning: a
        corrupted cross-tenant entry is never executed.
        """
        try:
            skeleton = shared.get(shared_key)
            if skeleton is None:
                return None
            _faults.check("cache_rebind")
            return skeleton_to_plan(skeleton, circuit, mapping)
        except (CacheCorruptionError, PlanValidationError, KeyError):
            shared.evict(shared_key)
            self.stats.cache_corruptions += 1
            self._session_fallbacks += 1
            return None

    #: Backends whose execution shards the state across workers — the ones
    #: whose schedules the ``check="full"`` race detector verifies.
    _SHARDED_BACKENDS = ("offload", "parallel")

    def _static_check(
        self,
        plan: ExecutionPlan,
        machine: MachineConfig,
        circuit: Circuit,
        program: "CompiledProgram | None",
        backend_name: str,
    ) -> None:
        """Run the configured static checks; raise
        :class:`~repro.errors.StaticCheckError` on the first failed report.

        ``"plans"`` verifies the plan IR; ``"full"`` additionally verifies
        the compiled op stream (when one was built) and — on the sharded
        backends — the shard schedule's write exclusivity.  The machine's
        locality bound applies only where execution shards the state;
        in-core backends verify against each stage's own partition.
        """
        from ..check import verify_plan, verify_program, verify_schedule

        sharded = (
            backend_name in self._SHARDED_BACKENDS
            and machine.local_qubits < plan.num_qubits
        )
        self.stats.static_checks += 1
        report = verify_plan(
            plan, machine=machine if sharded else None, circuit=circuit
        )
        if self.check == "full":
            if program is not None:
                report.merge(
                    verify_program(
                        program, plan=plan,
                        machine=machine if sharded else None,
                    )
                )
            if sharded:
                num_shards = 1 << (plan.num_qubits - machine.local_qubits)
                report.merge(
                    verify_schedule(
                        plan, machine, num_workers=min(4, num_shards)
                    )
                )
        report.raise_if_failed()

    def _plan_with_fallback(
        self, circuit: Circuit, machine: MachineConfig, manager: PassManager
    ) -> tuple[ExecutionPlan, PartitionReport]:
        """Run the planning pipeline, degrading on failure when allowed.

        Chain (``degrade=True``): the configured pipeline → the ``"fast"``
        preset → the legacy fixed pipeline.  Each fallback is counted in
        ``SessionStats.fallbacks``; when every pipeline fails, the
        *original* error propagates (the fallbacks were attempts to save
        the job, not the authoritative diagnosis).

        Configuration errors — a plain ``ValueError``/``TypeError`` that is
        not a typed :class:`ReproError` (unknown stager, unknown pass, bad
        options) — never degrade: the user asked for something that does
        not exist, and silently planning with a different pipeline would
        mask the mistake.
        """
        try:
            return manager.run(circuit, machine, cost_model=self.cost_model)
        except Exception as exc:
            if not self.degrade:
                raise
            if isinstance(exc, (ValueError, TypeError)) and not isinstance(
                exc, ReproError
            ):
                raise
            original = exc
        for fallback in (resolve_planner("fast"), legacy_pipeline()):
            if fallback.signature() == manager.signature():
                continue
            self._session_fallbacks += 1
            try:
                return fallback.run(circuit, machine, cost_model=self.cost_model)
            except Exception:
                continue
        raise original

    # ------------------------------------------------------------------
    # The job API
    # ------------------------------------------------------------------

    def run(
        self,
        circuits: Circuit | list[Circuit] | tuple[Circuit, ...],
        *,
        shots: int | None = None,
        observables=None,
        initial_state: StateVector | None = None,
        initial_states=None,
        backend: str | None = None,
        machine: MachineConfig | None = None,
        planner: "str | PassManager | None" = None,
        seed: int | None = None,
        execute: bool = True,
        deadline: "Deadline | float | None" = None,
        normalize: bool = False,
        checkpoint=None,
        resume_from=None,
    ) -> Job:
        """Run one circuit or a batch and return a :class:`Job`.

        With ``execute=True`` (default) the job completes before this
        method returns.  With ``execute=False`` it returns a **deferred**
        job: plans and modelled timing are available immediately
        (:meth:`Job.modelled_results`, ``state=None``), and the first
        :meth:`Job.result`/:meth:`Job.results` call performs the functional
        execution lazily — exactly once, thread-safe — through this
        session.  See :meth:`run` parameter docs below.
        """
        if not execute:
            with self._lock:
                modelled_job = self._run_locked(
                    circuits,
                    shots=shots,
                    observables=observables,
                    initial_state=initial_state,
                    initial_states=initial_states,
                    backend=backend,
                    machine=machine,
                    planner=planner,
                    seed=seed,
                    execute=False,
                    deadline=deadline,
                    normalize=normalize,
                )
            def _execute_deferred() -> Job:
                return self.run(
                    circuits,
                    shots=shots,
                    observables=observables,
                    initial_state=initial_state,
                    initial_states=initial_states,
                    backend=backend,
                    machine=machine,
                    planner=planner,
                    seed=seed,
                    execute=True,
                    deadline=deadline,
                    normalize=normalize,
                    checkpoint=checkpoint,
                    resume_from=resume_from,
                )
            return Job.deferred(
                _execute_deferred,
                modelled=modelled_job.results(),
                backend=modelled_job.backend,
            )
        with self._lock:
            return self._run_locked(
                circuits,
                shots=shots,
                observables=observables,
                initial_state=initial_state,
                initial_states=initial_states,
                backend=backend,
                machine=machine,
                planner=planner,
                seed=seed,
                execute=True,
                deadline=deadline,
                normalize=normalize,
                checkpoint=checkpoint,
                resume_from=resume_from,
            )

    def _run_locked(
        self,
        circuits: Circuit | list[Circuit] | tuple[Circuit, ...],
        *,
        shots: int | None = None,
        observables=None,
        initial_state: StateVector | None = None,
        initial_states=None,
        backend: str | None = None,
        machine: MachineConfig | None = None,
        planner: "str | PassManager | None" = None,
        seed: int | None = None,
        execute: bool = True,
        deadline: "Deadline | float | None" = None,
        normalize: bool = False,
        checkpoint=None,
        resume_from=None,
    ) -> Job:
        """Synchronous core of :meth:`run` (caller holds the session lock).

        Parameters
        ----------
        circuits:
            One :class:`Circuit` or a sequence of circuits.  Structurally
            identical circuits (a parameter sweep) are partitioned once.
        shots:
            When given, sample that many basis-state measurements per
            circuit into :attr:`Result.samples` using the session RNG
            (independent across calls, reproducible per session seed).
        observables:
            Pauli-Z product specs (see
            :func:`repro.session.result.normalize_observable`); expectation
            values land in :attr:`Result.expectations`.
        initial_state / initial_states:
            One starting state for every circuit, or one per circuit.  A
            single circuit with ``initial_states=[...]`` fans out into one
            job item per state.  Default |0...0>.
        backend, machine, planner, seed:
            Per-call overrides of the session defaults.  ``planner`` takes
            a preset name or a :class:`repro.planner.PassManager`; the
            override keys its own plan-cache entries, so switching presets
            never rebinds another pipeline's cached plan.
        execute:
            When False, skip functional execution: results carry the plan
            and modelled timing with ``state=None`` (useful for circuits
            too large to materialise, and for the modelled-comparison
            drivers in :mod:`repro.analysis`).
        deadline:
            Wall-clock budget in seconds (or a
            :class:`~repro.errors.Deadline`) for the whole job, checked
            cooperatively at planning, batch-item, and stage/segment/shard
            boundaries.  Expiry raises
            :class:`~repro.errors.DeadlineExceeded` with the session still
            usable.
        normalize:
            Renormalize initial states whose norm drifted (opt-in);
            without it, non-finite or badly non-normalized initial states
            raise :class:`~repro.errors.StateValidationError` instead of
            silently propagating NaNs through the whole plan.
        checkpoint / resume_from:
            Durable execution on the shard backends (``offload`` /
            ``parallel``; silently ignored elsewhere — an in-core run has
            no stage boundaries to snapshot).  ``checkpoint`` is a
            directory path or :class:`~repro.runtime.CheckpointConfig`:
            the executor durably snapshots the DRAM state at each stage
            boundary.  ``resume_from`` is a checkpoint file or directory:
            the run validates the snapshot against the plan's fingerprint
            and restarts after its last completed stage, bit-exact with
            an uninterrupted run (corrupt snapshots are evicted, never
            trusted).  See ``docs/robustness.md`` § Durable execution.
        """
        if self._closed:
            raise SessionClosedError("Session is closed")
        single = isinstance(circuits, Circuit)
        circuit_list = [circuits] if single else list(circuits)
        if not circuit_list:
            raise ValueError("no circuits to run")  # lint: config-error
        if not execute and (shots is not None or observables):
            raise ValueError(  # lint: config-error
                "shots/observables need a functional execution; drop them or "
                "run with execute=True"
            )
        machine = self._resolve_machine(machine)
        for circuit in circuit_list:
            machine.validate(circuit.num_qubits)

        if initial_state is not None and initial_states is not None:
            raise ValueError("pass initial_state or initial_states, not both")  # lint: config-error
        if initial_states is not None:
            initial_states = list(initial_states)
            if single:
                # One circuit fanned out over many starting states.
                circuit_list = circuit_list * len(initial_states)
            elif len(initial_states) != len(circuit_list):
                raise ValueError(  # lint: config-error
                    f"{len(circuit_list)} circuits but "
                    f"{len(initial_states)} initial states"
                )
            states = initial_states
        else:
            states = [initial_state] * len(circuit_list)
        if execute:
            states = [self._validate_state(s, normalize) for s in states]

        backend_name = self.resolve_backend(
            circuit_list[0].num_qubits, machine, backend
        )
        rng = self._rng if seed is None else np.random.default_rng(seed)
        observable_keys = (
            [normalize_observable(o) for o in observables] if observables else []
        )
        deadline = Deadline.resolve(deadline)

        t_job = time.perf_counter()
        recovery_before = self._recovery_totals()
        injector = self._injector
        counting = injector if injector is not None else _faults.active_injector()
        faults_before = counting.total_fired if counting is not None else 0
        if injector is not None:
            _faults.activate(injector)
        try:
            # Admission: degrade down the backend chain before allocating a
            # working set the modelled device memory cannot hold.
            backend_name, backend_chain = self._admit(
                backend_name, machine, circuit_list[0].num_qubits, execute
            )
            backend_obj = self.backend_instance(backend_name)

            planned: dict[int, tuple] = {}
            items = []
            for circuit, state in zip(circuit_list, states):
                deadline.check("planning")
                if id(circuit) in planned:
                    # The same circuit object fanned out over several initial
                    # states: reuse the exact plan and compiled program (not
                    # even a rebind) — the backend batches these into one
                    # stacked (B, 2^n) execution.
                    plan, report, hit, schedule_key, program = planned[id(circuit)]
                else:
                    plan, report, hit, schedule_key, program = self.plan_for(
                        circuit,
                        machine,
                        backend_name,
                        compile_programs=execute,
                        planner=planner,
                    )
                    planned[id(circuit)] = (plan, report, hit, schedule_key, program)
                items.append((circuit, state, plan, report, hit, schedule_key, program))

            if execute:
                t0 = time.perf_counter()
                while True:
                    batch_kwargs = {}
                    if backend_obj.uses_programs:
                        # Only program-running backends see the keyword, so
                        # third-party backends with the older run_batch
                        # signature keep working.
                        batch_kwargs["programs"] = [item[6] for item in items]
                    if deadline.seconds is not None:
                        batch_kwargs["deadline"] = deadline
                    if getattr(backend_obj, "supports_checkpoints", False) and (
                        checkpoint is not None
                        or resume_from is not None
                        or self.monitor is not None
                    ):
                        batch_kwargs["checkpoint"] = checkpoint
                        batch_kwargs["resume_from"] = resume_from
                        batch_kwargs["monitor"] = self.monitor
                    try:
                        outs = backend_obj.run_batch(
                            [(plan, state, circuit) for circuit, state, plan, *_ in items],
                            machine,
                            schedule_keys=[item[5] for item in items],
                            **batch_kwargs,
                        )
                        break
                    except MemoryError:
                        # A real allocation failure: degrade down the chain
                        # (smaller device working set) and re-run the batch.
                        next_name = self._next_backend(backend_name)
                        if not self.degrade or next_name is None:
                            raise
                        backend_name = next_name
                        backend_obj = self.backend_instance(backend_name)
                        backend_chain.append(backend_name)
                        self._session_fallbacks += 1
                execute_seconds = time.perf_counter() - t0
                self.stats.execute_seconds += execute_seconds
                self.stats.backend_runs[backend_name] = (
                    self.stats.backend_runs.get(backend_name, 0) + len(items)
                )
            else:
                outs = [(None, None)] * len(items)
                execute_seconds = 0.0
        finally:
            if injector is not None:
                _faults.deactivate(injector)

        # Per-job recovery provenance: what it took to deliver this job
        # (deltas over the pre-job counters), attached to every Result.
        recovery_after = self._recovery_totals()
        recovery = {
            k: recovery_after[k] - recovery_before[k] for k in recovery_after
        }
        if counting is not None:
            recovery["faults_injected"] = counting.total_fired - faults_before
        if len(backend_chain) > 1:
            recovery["backend_chain"] = list(backend_chain)
        recovery = {k: v for k, v in recovery.items() if v} or None

        per_item_wall = execute_seconds / len(items)
        results = []
        for (circuit, state, plan, report, hit, schedule_key, program), (out_state, exec_stats) in zip(
            items, outs
        ):
            samples = None
            expectations: dict[tuple[int, ...], float] = {}
            if out_state is not None:
                if shots is not None:
                    samples = out_state.sample(shots, rng)
                for key in observable_keys:
                    expectations[key] = out_state.expectation_z_product(key)
            results.append(
                Result(
                    circuit_name=circuit.name,
                    backend=backend_name,
                    state=out_state,
                    timing=backend_obj.timing(plan, machine, self.cost_model),
                    plan=plan,
                    report=report,
                    cache_hit=hit,
                    wall_seconds=per_item_wall,
                    samples=samples,
                    shots=shots if samples is not None else None,
                    expectations=expectations,
                    execution_stats=exec_stats,
                    recovery=recovery,
                )
            )

        self.stats.retries = recovery_after["retries"]
        self.stats.fallbacks = recovery_after["fallbacks"]
        self.stats.quarantined_workers = recovery_after["quarantined_workers"]
        if counting is not None:
            self.stats.faults_injected = counting.total_fired
        if isinstance(backend_obj, ParallelBackend):
            hits, misses = backend_obj.schedule_cache_counters()
            self.stats.schedule_cache_hits = hits
            self.stats.schedule_cache_misses = misses
            acquisitions, waited = backend_obj.exec_lock_counters()
            self.stats.exec_lock_acquisitions = acquisitions
            self.stats.exec_lock_wait_seconds = waited
        for _out_state, exec_stats in outs:
            self.stats.checkpoints_written += getattr(
                exec_stats, "checkpoints_written", 0
            )
            self.stats.checkpoint_errors += getattr(
                exec_stats, "checkpoint_errors", 0
            )
            self.stats.integrity_checks += getattr(
                exec_stats, "integrity_checks", 0
            )
            self.stats.max_norm_drift = max(
                self.stats.max_norm_drift,
                getattr(exec_stats, "max_norm_drift", 0.0),
            )
        fusion = fusion_cache_stats()
        self.stats.fusion_cache_hits = fusion["hits"] - self._fusion_baseline["hits"]
        self.stats.fusion_cache_misses = (
            fusion["misses"] - self._fusion_baseline["misses"]
        )
        self.stats.fusion_cache_evictions = (
            fusion["evictions"] - self._fusion_baseline["evictions"]
        )
        self.stats.jobs += 1
        self.stats.circuits_run += len(results)
        job = Job(
            results=results,
            backend=backend_name,
            wall_seconds=time.perf_counter() - t_job,
            cache_hits=sum(1 for r in results if r.cache_hit),
        )
        return job

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session backend={self.backend!r} machine={self.machine!r} "
            f"cache={len(self.cache)} entries>"
        )

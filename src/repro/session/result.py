"""Job and Result objects — what one ``Session.run`` call hands back.

A :class:`Job` is the handle for one ``run`` call: an ordered list of
per-circuit :class:`Result` objects plus job-level accounting.  A
:class:`Result` carries everything produced for one circuit: the final
state (when the job executed functionally), measurement samples,
observable expectation values, the modelled timing, and plan provenance —
which plan ran, whether it came from the structural cache, and which
backend executed it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.partitioner import PartitionReport
from ..core.plan import ExecutionPlan
from ..runtime.timeline import TimingBreakdown
from ..sim.statevector import StateVector

__all__ = ["Job", "Result", "normalize_observable"]


def normalize_observable(observable) -> tuple[int, ...]:
    """Canonicalise an observable spec into a sorted tuple of qubit indices.

    Supported specs — all denoting a product of Pauli-Z operators:

    * ``int q`` — ``<Z_q>``;
    * an iterable of ints — ``<Z_{q0} Z_{q1} ...>`` (empty = identity);
    * a string like ``"z0"`` or ``"z0*z3"`` — the same, spelled readably.

    The canonical form sorts the qubits and cancels pairs (``Z_q Z_q = I``),
    so ``(1, 0)``, ``"z0*z1"`` and ``(0, 1, 2, 2)`` all normalise to
    ``(0, 1)``.
    """
    if isinstance(observable, (int, np.integer)):
        return (int(observable),)
    if isinstance(observable, str):
        qubits = []
        for term in observable.lower().split("*"):
            term = term.strip()
            if not term.startswith("z") or not term[1:].isdigit():
                raise ValueError(  # lint: config-error
                    f"unsupported observable {observable!r}; expected e.g. 'z0' or 'z0*z3'"
                )
            qubits.append(int(term[1:]))
    else:
        try:
            qubits = [int(q) for q in observable]
        except TypeError as exc:
            raise ValueError(f"unsupported observable spec {observable!r}") from exc  # lint: config-error
    odd = {q for q in set(qubits) if qubits.count(q) % 2}
    return tuple(sorted(odd))


@dataclass
class Result:
    """Everything produced for one circuit of a job."""

    circuit_name: str
    backend: str
    #: Final state; ``None`` for modelled-only (``execute=False``) jobs.
    state: StateVector | None
    #: Modelled wall-clock time on the target cluster.
    timing: TimingBreakdown
    #: The execution plan that ran (possibly re-bound from the cache).
    plan: ExecutionPlan
    #: Preprocessing statistics; ``None`` when the plan came from the cache
    #: (there was no preprocessing) or from a baseline partitioner.
    report: PartitionReport | None
    #: Whether the plan came from the session's structural cache.
    cache_hit: bool
    #: This circuit's share of the job's measured execution wall time —
    #: the batch total divided evenly across its circuits, not a per-circuit
    #: measurement (batches run through one ``run_batch`` call; use
    #: :attr:`Job.wall_seconds` for the whole job).
    wall_seconds: float
    #: Sampled basis-state indices (``shots`` draws), or ``None``.
    samples: np.ndarray | None = None
    shots: int | None = None
    #: Observable spec (normalised qubit tuple) -> expectation value.
    expectations: dict[tuple[int, ...], float] = field(default_factory=dict)
    #: Executor-specific stats: ``ExecutionTrace`` (incore), ``OffloadStats``
    #: (offload/parallel), or ``None``.
    execution_stats: object | None = None
    #: Recovery provenance for the job this result belongs to: non-zero
    #: counters only (``retries``, ``fallbacks``, ``quarantined_workers``,
    #: ``faults_injected``) plus ``backend_chain`` when the job degraded
    #: across backends.  ``None`` for a clean run — so auditing recovered
    #: runs is one truthiness check.
    recovery: dict | None = None

    def expectation(self, observable) -> float:
        """Look up a computed expectation value by observable spec."""
        key = normalize_observable(observable)
        try:
            return self.expectations[key]
        except KeyError as exc:
            raise KeyError(
                f"observable {observable!r} was not requested for this run"
            ) from exc

    def counts(self) -> dict[int, int]:
        """Histogram of sampled basis-state indices (requires ``shots``)."""
        if self.samples is None:
            raise ValueError("no samples: run with shots=...")  # lint: config-error
        return dict(Counter(int(s) for s in self.samples))

    def summary(self) -> dict:
        return {
            "circuit": self.circuit_name,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "num_stages": self.plan.num_stages,
            "num_kernels": self.plan.num_kernels,
            "modelled_seconds": self.timing.total_seconds,
            "wall_seconds": self.wall_seconds,
            "shots": self.shots,
            "expectations": {k: v for k, v in self.expectations.items()},
            # Plan provenance: which pipeline/preset produced the plan (a
            # cache hit carries it over from the entry that built it), and
            # — for the run that actually planned — the per-pass telemetry.
            "plan_provenance": dict(self.plan.provenance),
            "planning": self.report.as_dict() if self.report is not None else None,
            # Recovery provenance: ``None`` for a clean run, else the
            # non-zero recovery counters (and any backend fallback chain)
            # of the job that produced this result.
            "recovery": dict(self.recovery) if self.recovery else None,
        }


@dataclass
class Job:
    """Handle for one ``Session.run`` call: ordered per-circuit results."""

    results: list[Result]
    backend: str
    #: Measured wall time of the whole call (planning + execution), seconds.
    wall_seconds: float
    #: How many of the job's plans came from the structural cache.
    cache_hits: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self.results)

    def __getitem__(self, idx) -> Result:
        return self.results[idx]

    @property
    def result(self) -> Result:
        """The single result of a one-circuit job."""
        if len(self.results) != 1:
            raise ValueError(  # lint: config-error
                f"job has {len(self.results)} results; index it or iterate"
            )
        return self.results[0]

    def states(self) -> list[StateVector | None]:
        return [r.state for r in self.results]

    @property
    def modelled_seconds(self) -> float:
        """Summed modelled cluster time across the job's circuits."""
        return sum(r.timing.total_seconds for r in self.results)

    def summary(self) -> dict:
        return {
            "backend": self.backend,
            "num_circuits": len(self.results),
            "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
            "modelled_seconds": self.modelled_seconds,
        }

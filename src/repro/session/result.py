"""Job and Result objects — what one ``Session.run`` call hands back.

A :class:`Job` is the *future-backed* handle for one unit of submitted
work: an ordered list of per-circuit :class:`Result` objects plus
job-level accounting, behind a ``done()`` / ``result(timeout=...)`` /
``cancel()`` surface.  Three completion modes share the one class:

* **eager** — ``Session.run(..., execute=True)`` completes the job before
  returning it, so ``result()`` never blocks;
* **deferred** — ``Session.run(..., execute=False)`` returns a pending job
  carrying the plan and modelled timing (:meth:`Job.modelled`); the first
  ``result()`` call executes it lazily, exactly once, thread-safe;
* **queued** — :meth:`repro.service.SimulationService.submit` returns a
  pending job completed asynchronously by the service scheduler thread;
  ``result(timeout=...)`` blocks, ``cancel()`` withdraws it from the queue.

A :class:`Result` carries everything produced for one circuit: the final
state (when the job executed functionally), measurement samples,
observable expectation values, the modelled timing, and plan provenance —
which plan ran, whether it came from the structural cache, and which
backend executed it.
"""

from __future__ import annotations

import enum
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..core.partitioner import PartitionReport
from ..core.plan import ExecutionPlan
from ..errors import DeadlineExceeded, JobCancelledError
from ..runtime.timeline import TimingBreakdown
from ..sim.statevector import StateVector

__all__ = ["Job", "JobStatus", "Result", "normalize_observable"]


def normalize_observable(observable) -> tuple[int, ...]:
    """Canonicalise an observable spec into a sorted tuple of qubit indices.

    Supported specs — all denoting a product of Pauli-Z operators:

    * ``int q`` — ``<Z_q>``;
    * an iterable of ints — ``<Z_{q0} Z_{q1} ...>`` (empty = identity);
    * a string like ``"z0"`` or ``"z0*z3"`` — the same, spelled readably.

    The canonical form sorts the qubits and cancels pairs (``Z_q Z_q = I``),
    so ``(1, 0)``, ``"z0*z1"`` and ``(0, 1, 2, 2)`` all normalise to
    ``(0, 1)``.
    """
    if isinstance(observable, (int, np.integer)):
        return (int(observable),)
    if isinstance(observable, str):
        qubits = []
        for term in observable.lower().split("*"):
            term = term.strip()
            if not term.startswith("z") or not term[1:].isdigit():
                raise ValueError(  # lint: config-error
                    f"unsupported observable {observable!r}; expected e.g. 'z0' or 'z0*z3'"
                )
            qubits.append(int(term[1:]))
    else:
        try:
            qubits = [int(q) for q in observable]
        except TypeError as exc:
            raise ValueError(f"unsupported observable spec {observable!r}") from exc  # lint: config-error
    odd = {q for q in set(qubits) if qubits.count(q) % 2}
    return tuple(sorted(odd))


@dataclass
class Result:
    """Everything produced for one circuit of a job."""

    circuit_name: str
    backend: str
    #: Final state; ``None`` for modelled-only (``execute=False``) jobs.
    state: StateVector | None
    #: Modelled wall-clock time on the target cluster.
    timing: TimingBreakdown
    #: The execution plan that ran (possibly re-bound from the cache).
    plan: ExecutionPlan
    #: Preprocessing statistics; ``None`` when the plan came from the cache
    #: (there was no preprocessing) or from a baseline partitioner.
    report: PartitionReport | None
    #: Whether the plan came from the session's structural cache.
    cache_hit: bool
    #: This circuit's share of the job's measured execution wall time —
    #: the batch total divided evenly across its circuits, not a per-circuit
    #: measurement (batches run through one ``run_batch`` call; use
    #: :attr:`Job.wall_seconds` for the whole job).
    wall_seconds: float
    #: Sampled basis-state indices (``shots`` draws), or ``None``.
    samples: np.ndarray | None = None
    shots: int | None = None
    #: Observable spec (normalised qubit tuple) -> expectation value.
    expectations: dict[tuple[int, ...], float] = field(default_factory=dict)
    #: Executor-specific stats: ``ExecutionTrace`` (incore), ``OffloadStats``
    #: (offload/parallel), or ``None``.
    execution_stats: object | None = None
    #: Recovery provenance for the job this result belongs to: non-zero
    #: counters only (``retries``, ``fallbacks``, ``quarantined_workers``,
    #: ``faults_injected``) plus ``backend_chain`` when the job degraded
    #: across backends.  ``None`` for a clean run — so auditing recovered
    #: runs is one truthiness check.
    recovery: dict | None = None

    def expectation(self, observable) -> float:
        """Look up a computed expectation value by observable spec."""
        key = normalize_observable(observable)
        try:
            return self.expectations[key]
        except KeyError as exc:
            raise KeyError(
                f"observable {observable!r} was not requested for this run"
            ) from exc

    def counts(self) -> dict[int, int]:
        """Histogram of sampled basis-state indices (requires ``shots``)."""
        if self.samples is None:
            raise ValueError("no samples: run with shots=...")  # lint: config-error
        return dict(Counter(int(s) for s in self.samples))

    def summary(self) -> dict:
        return {
            "circuit": self.circuit_name,
            "backend": self.backend,
            "cache_hit": self.cache_hit,
            "num_stages": self.plan.num_stages,
            "num_kernels": self.plan.num_kernels,
            "modelled_seconds": self.timing.total_seconds,
            "wall_seconds": self.wall_seconds,
            "shots": self.shots,
            "expectations": {k: v for k, v in self.expectations.items()},
            # Plan provenance: which pipeline/preset produced the plan (a
            # cache hit carries it over from the entry that built it), and
            # — for the run that actually planned — the per-pass telemetry.
            "plan_provenance": dict(self.plan.provenance),
            "planning": self.report.as_dict() if self.report is not None else None,
            # Recovery provenance: ``None`` for a clean run, else the
            # non-zero recovery counters (and any backend fallback chain)
            # of the job that produced this result.
            "recovery": dict(self.recovery) if self.recovery else None,
        }


class JobStatus(enum.Enum):
    """Lifecycle of a :class:`Job` (pending → running → terminal)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Job:
    """Future-backed handle for one unit of submitted work.

    Constructed completed (``Job(results=[...], ...)`` — the eager
    ``Session.run`` path keeps its historical signature), deferred
    (``Job.deferred(...)``), or pending (``Job.pending(...)``, completed by
    a service scheduler through the ``_mark_running``/``_complete``/
    ``_fail`` internal protocol).  All state transitions are serialized
    under one lock and signalled through one event, so ``result()`` /
    ``done()`` / ``cancel()`` are safe from any thread.

    .. note:: **Migration (1.6):** ``job.result`` and ``job.results`` were
       attributes; they are now *methods* — ``job.result()`` /
       ``job.results()`` — that resolve the future (lazily executing a
       deferred job, blocking on a queued one).  Use :meth:`modelled` /
       :meth:`modelled_results` for the plan-and-timing view that never
       triggers execution.
    """

    def __init__(
        self,
        results: list[Result] | None = None,
        backend: str = "",
        wall_seconds: float = 0.0,
        cache_hits: int = 0,
        *,
        num_circuits: int | None = None,
        modelled: list[Result] | None = None,
        tenant: str | None = None,
    ):
        self._lock = threading.RLock()
        self._event = threading.Event()
        self._results: list[Result] | None = None
        self._modelled = modelled
        self._thunk: Callable[[], "Job"] | None = None
        self._error: BaseException | None = None
        self._status = JobStatus.PENDING
        #: Backend the job ran (or is requested to run) on.
        self.backend = backend
        #: Measured wall time of the completed work (planning + execution),
        #: seconds; 0.0 until the job completes.
        self.wall_seconds = wall_seconds
        #: How many of the job's plans came from a plan cache (local
        #: structural or cross-tenant shared); 0 until the job completes.
        self.cache_hits = cache_hits
        #: Logical tenant that submitted the job (service path), or ``None``.
        self.tenant = tenant
        self._num_circuits = num_circuits
        if results is not None:
            self._results = list(results)
            self._num_circuits = len(self._results)
            self._status = JobStatus.DONE
            self._event.set()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def deferred(
        cls,
        thunk: Callable[[], "Job"],
        modelled: list[Result],
        backend: str = "",
    ) -> "Job":
        """A lazily-executing job: *thunk* runs the real execution exactly
        once, on the first ``result()`` call, from whichever thread makes
        it; *modelled* is the plan/timing-only view available immediately."""
        job = cls(
            backend=backend,
            num_circuits=len(modelled),
            modelled=list(modelled),
        )
        job._thunk = thunk
        return job

    @classmethod
    def pending(
        cls,
        num_circuits: int,
        backend: str = "",
        tenant: str | None = None,
    ) -> "Job":
        """A queued job to be completed externally (the service path)."""
        return cls(backend=backend, num_circuits=num_circuits, tenant=tenant)

    # ------------------------------------------------------------------
    # Future surface
    # ------------------------------------------------------------------

    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    def done(self) -> bool:
        """Whether the job reached a terminal state (done/failed/cancelled)."""
        return self._event.is_set()

    def cancelled(self) -> bool:
        with self._lock:
            return self._status is JobStatus.CANCELLED

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; ``False`` on timeout.

        Deferred jobs are *not* executed by ``wait`` — only ``result()`` /
        ``results()`` trigger the lazy execution.
        """
        return self._event.wait(timeout)

    def cancel(self) -> bool:
        """Withdraw a job that has not started; ``True`` when it worked.

        A pending queued job transitions to ``CANCELLED`` (the scheduler
        will skip it); a deferred job drops its thunk.  Running or already
        terminal jobs return ``False`` — in-flight execution is never
        interrupted (shard runtimes own cooperative deadlines for that).
        """
        with self._lock:
            if self._status is not JobStatus.PENDING:
                return False
            self._status = JobStatus.CANCELLED
            self._thunk = None
            self._error = JobCancelledError("job cancelled before execution")
        self._event.set()
        return True

    def results(self, timeout: float | None = None) -> list[Result]:
        """The job's per-circuit results, resolving the future if needed.

        Deferred jobs execute here — exactly once, even under concurrent
        callers; queued jobs block up to *timeout* seconds (``None`` waits
        indefinitely).  Raises :class:`~repro.errors.DeadlineExceeded` on
        timeout, :class:`~repro.errors.JobCancelledError` if cancelled, and
        re-raises the job's failure if it failed.
        """
        thunk = None
        with self._lock:
            if self._status is JobStatus.PENDING and self._thunk is not None:
                thunk = self._thunk
                self._thunk = None
                self._status = JobStatus.RUNNING
        if thunk is not None:
            try:
                inner = thunk()
            except BaseException as exc:
                self._fail(exc)
            else:
                self._complete(
                    inner.results(),
                    backend=inner.backend,
                    wall_seconds=inner.wall_seconds,
                    cache_hits=inner.cache_hits,
                )
        if not self._event.wait(timeout):
            raise DeadlineExceeded(
                f"job did not complete within {timeout:.6g}s",
                site="job.result",
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            assert self._results is not None
            return self._results

    def result(self, timeout: float | None = None) -> Result:
        """The single result of a one-circuit job (see :meth:`results`)."""
        results = self.results(timeout)
        if len(results) != 1:
            raise ValueError(  # lint: config-error
                f"job has {len(results)} results; index it or iterate"
            )
        return results[0]

    def modelled_results(self) -> list[Result]:
        """Plan-and-timing results without resolving the future.

        For a completed job these are the real results; for a deferred job
        the modelled view (``state=None``) captured at submission.  Queued
        service jobs have no modelled view before completion.
        """
        with self._lock:
            if self._results is not None:
                return self._results
            if self._modelled is not None:
                return self._modelled
        raise ValueError(  # lint: config-error
            "job has no modelled results yet; wait for completion or use "
            "result(timeout=...)"
        )

    def modelled(self) -> Result:
        """Single-circuit :meth:`modelled_results` (never executes)."""
        results = self.modelled_results()
        if len(results) != 1:
            raise ValueError(  # lint: config-error
                f"job has {len(results)} results; index it or iterate"
            )
        return results[0]

    # ------------------------------------------------------------------
    # Completion protocol (Session / service internals)
    # ------------------------------------------------------------------

    def _mark_running(self) -> bool:
        """Scheduler claim: pending → running; ``False`` if already
        cancelled (the scheduler must then skip the job)."""
        with self._lock:
            if self._status is not JobStatus.PENDING:
                return False
            self._status = JobStatus.RUNNING
            return True

    def _complete(
        self,
        results: list[Result],
        backend: str = "",
        wall_seconds: float = 0.0,
        cache_hits: int = 0,
    ) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._results = list(results)
            self._num_circuits = len(self._results)
            if backend:
                self.backend = backend
            self.wall_seconds = wall_seconds
            self.cache_hits = cache_hits
            self._status = JobStatus.DONE
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self._status = JobStatus.FAILED
        self._event.set()

    # ------------------------------------------------------------------
    # Container / accounting surface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of circuits in the job — known up front, never resolves."""
        if self._num_circuits is not None:
            return self._num_circuits
        return len(self.results())

    def __iter__(self) -> Iterator[Result]:
        return iter(self.results())

    def __getitem__(self, idx) -> Result:
        return self.results()[idx]

    def states(self) -> list[StateVector | None]:
        return [r.state for r in self.results()]

    @property
    def modelled_seconds(self) -> float:
        """Summed modelled cluster time across the job's circuits."""
        return sum(r.timing.total_seconds for r in self.modelled_results())

    def summary(self) -> dict:
        return {
            "backend": self.backend,
            "status": self.status.value,
            "tenant": self.tenant,
            "num_circuits": len(self),
            "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
            "modelled_seconds": (
                self.modelled_seconds if self._terminal_or_modelled() else None
            ),
        }

    def _terminal_or_modelled(self) -> bool:
        with self._lock:
            return self._results is not None or self._modelled is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Job status={self.status.value} circuits={self._num_circuits} "
            f"backend={self.backend!r}>"
        )

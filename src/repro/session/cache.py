"""Structural plan cache — amortise partitioning across a parameter sweep.

Atlas-style staged simulation pays an expensive preprocessing step (ILP
staging + DP kernelization) per circuit.  For the repository's variational
workloads (``vqc``/``qsvm`` parameter sweeps) every circuit in the sweep is
*structurally identical* — same gate sequence, different rotation angles —
so the plan's stage boundaries, qubit partitions and kernel grouping are
identical too.  The cache exploits that:

* the key combines :meth:`Circuit.structural_key` (gate structure + matrix
  sparsity patterns, angles excluded) with the machine configuration and
  the planner configuration, so a hit is only possible when partitioning
  would provably make the same decisions;
* a hit returns the cached plan *re-bound* to the new circuit's gates
  (:func:`rebind_plan`): the stage/kernel skeleton — partitions, kernel
  boundaries, costs — is shared, while every gate object comes from the
  circuit actually being executed, so angles are never stale;
* alongside the plan, the cache stores the plan's **compiled program**
  (:class:`repro.sim.program.CompiledProgram`) when the executing backend
  runs programs: on a hit the Session recompiles only the angle-dependent
  ops (``compile_plan(reuse=...)``) — constant-structure gates (H, CX, …)
  keep their compiled payload verbatim, and the whole rebound family
  shares the base program's workspace buffers.

The cache is an LRU over a bounded number of structures and is owned by a
:class:`repro.session.Session`; it is not thread-safe on its own.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from ..circuits.circuit import Circuit
from ..core.kernel import Kernel, KernelSequence, KernelType
from ..core.partitioner import PartitionReport
from ..core.plan import ExecutionPlan, QubitPartition, Stage
from ..errors import CacheCorruptionError, PlanValidationError

__all__ = [
    "CacheStats",
    "PlanCache",
    "freeze_config",
    "plan_cache_key",
    "plan_fingerprint",
    "plan_skeleton",
    "rebind_plan",
    "relabel_plan",
    "shared_plan_key",
    "skeleton_fingerprint",
    "skeleton_to_plan",
]


def freeze_config(obj) -> object:
    """Recursively convert *obj* into a hashable structure for cache keys.

    Handles dataclasses (frozen or not), mappings, and sequences; scalars
    pass through.  Two configs freeze equal exactly when every field
    compares equal, which is the correctness condition for sharing a plan.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, freeze_config(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, Mapping):
        return tuple(sorted((k, freeze_config(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = sorted(obj) if isinstance(obj, (set, frozenset)) else obj
        return tuple(freeze_config(v) for v in items)
    return obj


def plan_cache_key(circuit: Circuit, machine, planner_key: object) -> tuple:
    """The full cache key for planning *circuit* on *machine*.

    ``planner_key`` identifies everything else that influences the plan:
    the stager/kernelizer names and configs for the Atlas pipeline, or the
    baseline simulator identity for modelled baseline backends.
    """
    return (circuit.structural_key(), freeze_config(machine), planner_key)


def shared_plan_key(circuit: Circuit, machine, planner_key: object) -> tuple[tuple, dict[int, int]]:
    """The cross-tenant cache key for planning *circuit* on *machine*.

    Same shape as :func:`plan_cache_key` but built from the circuit's
    :meth:`~repro.circuits.circuit.Circuit.canonical_structural_key`, so
    structurally equivalent circuits submitted with permuted qubit labels
    resolve to one entry.  Returns ``(key, mapping)`` where *mapping*
    relabels this circuit's qubits into the canonical form the cached plan
    is stored in.
    """
    canonical, mapping = circuit.canonical_structural_key()
    return (canonical, freeze_config(machine), planner_key), mapping


def plan_fingerprint(plan: ExecutionPlan) -> str:
    """A cheap structural checksum of *plan* for cache-integrity checks.

    Covers the skeleton a rebind relies on — qubit count, per-stage gate
    membership, the stage partitions, and the kernel boundaries — via one
    blake2b digest.  Deliberately *not* the full plan repr: the fingerprint
    is recomputed on every cache hit, so it must stay cheap relative to the
    rebind + program-recompile work the hit performs anyway.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(repr(
        (
            plan.num_qubits,
            tuple(
                (
                    tuple(stage.gate_indices),
                    tuple(sorted(stage.partition.logical_to_physical().items())),
                    tuple(tuple(k.gate_indices) for k in stage.kernels)
                    if stage.kernels is not None
                    else None,
                )
                for stage in plan.stages
            ),
        )
    ).encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries that failed their integrity check on lookup (each one was
    #: evicted and surfaced as a :class:`CacheCorruptionError`).
    corruptions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Bounded LRU cache from structural plan keys to ``(plan, report)``.

    The cached :class:`ExecutionPlan` is treated as immutable: callers get
    either the stored object itself (when executing the very circuit that
    built it) or a :func:`rebind_plan` copy — never a mutable alias.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")  # lint: config-error
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> tuple | None:
        """Look up *key*, counting a hit or miss and refreshing LRU order.

        Returns ``(plan, report, program)`` — ``program`` is ``None`` when
        the entry was stored without a compiled program.  Every hit is
        verified against the structural checksum recorded at :meth:`put`
        time; an entry that no longer matches (a mutated or corrupted plan)
        is evicted and surfaced as a
        :class:`~repro.errors.CacheCorruptionError` — the caller replans
        instead of executing a poisoned structure.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        plan, report, program, checksum = entry
        if checksum is not None and plan_fingerprint(plan) != checksum:
            del self._entries[key]
            self.stats.corruptions += 1
            self.stats.misses += 1
            raise CacheCorruptionError(
                "cached plan failed its integrity check; entry evicted",
                site="cache_rebind",
            )
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return plan, report, program

    def put(
        self,
        key: tuple,
        plan: ExecutionPlan,
        report: PartitionReport | None = None,
        program=None,
    ) -> None:
        """Store ``(plan, report, program)`` under *key*, evicting the LRU
        entry if full.  ``program`` is the plan's compiled op stream (or
        ``None`` for backends that do not run programs); its workspace is
        shared with every rebind served from this entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = (plan, report, program, plan_fingerprint(plan))

    def evict(self, key: tuple) -> bool:
        """Drop *key* if present (used on corruption detected downstream)."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()


def rebind_plan(plan: ExecutionPlan, circuit: Circuit) -> ExecutionPlan:
    """Re-bind a cached plan's structure onto *circuit*'s gates.

    *circuit* must share the structural key of the circuit the plan was
    built from (the cache key guarantees it): the stage skeleton — qubit
    partitions, stage membership, kernel boundaries, kernel types and costs
    — carries over verbatim, while every gate object is taken from
    *circuit* via the recorded ``gate_indices``, so the executed angles are
    always the new circuit's.  The cached plan is not modified.
    """
    if plan.num_qubits != circuit.num_qubits:
        raise PlanValidationError(
            f"plan spans {plan.num_qubits} qubits, circuit has {circuit.num_qubits}"
        )
    if plan.gate_count() != len(circuit):
        raise PlanValidationError(
            f"plan covers {plan.gate_count()} gates, circuit has {len(circuit)}"
        )
    stages = []
    for stage in plan.stages:
        gates = [circuit.gates[i] for i in stage.gate_indices]
        kernels = None
        if stage.kernels is not None:
            kernels = KernelSequence(
                kernels=[
                    Kernel(
                        gates=tuple(gates[i] for i in kernel.gate_indices),
                        qubits=kernel.qubits,
                        kernel_type=kernel.kernel_type,
                        cost=kernel.cost,
                        gate_indices=kernel.gate_indices,
                    )
                    for kernel in stage.kernels
                ]
            )
        stages.append(
            Stage(
                gates=gates,
                partition=stage.partition,
                kernels=kernels,
                gate_indices=list(stage.gate_indices),
            )
        )
    return ExecutionPlan(
        num_qubits=plan.num_qubits,
        stages=stages,
        circuit_name=circuit.name,
        provenance=dict(plan.provenance),
    )


def relabel_plan(plan: ExecutionPlan, mapping: Mapping[int, int]) -> ExecutionPlan:
    """Rewrite every qubit reference of *plan* through *mapping*.

    Stage partitions, kernel qubit sets and the gates themselves are all
    relabeled consistently, so the staging invariant (non-insular qubits
    local) is preserved: relabeling both sides of the subset relation
    cannot break it.  Stage and kernel *gate indices* are label-free and
    carry over verbatim — which is what lets a plan built for a circuit's
    canonical labeling be rebound to any relabeled submission
    (:func:`skeleton_to_plan`).  The input plan is not modified.
    """
    stages = []
    for stage in plan.stages:
        gates = [g.remap(dict(mapping)) for g in stage.gates]
        kernels = None
        if stage.kernels is not None:
            kernels = KernelSequence(
                kernels=[
                    Kernel(
                        gates=tuple(gates[i] for i in kernel.gate_indices),
                        qubits=tuple(sorted(mapping[q] for q in kernel.qubits)),
                        kernel_type=kernel.kernel_type,
                        cost=kernel.cost,
                        gate_indices=kernel.gate_indices,
                    )
                    for kernel in stage.kernels
                ]
            )
        stages.append(
            Stage(
                gates=gates,
                partition=QubitPartition.from_sets(
                    (mapping[q] for q in stage.partition.local),
                    (mapping[q] for q in stage.partition.regional),
                    (mapping[q] for q in stage.partition.global_),
                ),
                kernels=kernels,
                gate_indices=list(stage.gate_indices),
            )
        )
    return ExecutionPlan(
        num_qubits=plan.num_qubits,
        stages=stages,
        circuit_name=plan.circuit_name,
        provenance=dict(plan.provenance),
    )


# ---------------------------------------------------------------------------
# Plan skeletons — the serialized form of a cached plan
# ---------------------------------------------------------------------------

#: Version stamp of the skeleton JSON schema; bump on incompatible change
#: (loaders evict entries with a different version instead of guessing).
SKELETON_VERSION = 1


def plan_skeleton(plan: ExecutionPlan, program=None) -> dict:
    """Serialize *plan*'s structure into a JSON-able skeleton dict.

    The skeleton carries exactly what a rebind needs — per-stage gate
    indices, the qubit partitions, and the kernel grouping — plus a
    ``fingerprint`` checksum (:func:`plan_fingerprint` of *plan*) that
    loaders verify before trusting the entry.  Gates are deliberately *not*
    stored: a skeleton is always bound to the gates of the circuit being
    executed (:func:`skeleton_to_plan`), so angles can never be stale.
    ``program`` (the plan's :class:`~repro.sim.program.CompiledProgram`, if
    one was compiled) contributes metadata only — op count and workspace
    shape — used for telemetry and warm-start validation, never replayed
    from disk.
    """
    stages = []
    for stage in plan.stages:
        kernels = None
        if stage.kernels is not None:
            kernels = [
                {
                    "gate_indices": list(kernel.gate_indices),
                    "qubits": list(kernel.qubits),
                    "kernel_type": kernel.kernel_type.value,
                    "cost": kernel.cost,
                }
                for kernel in stage.kernels
            ]
        stages.append(
            {
                "gate_indices": list(stage.gate_indices),
                "local": sorted(stage.partition.local),
                "regional": sorted(stage.partition.regional),
                "global": sorted(stage.partition.global_),
                "kernels": kernels,
            }
        )
    program_meta = None
    if program is not None:
        program_meta = {
            "num_ops": len(getattr(program, "ops", ()) or ()),
            "num_qubits": getattr(program, "num_qubits", plan.num_qubits),
        }
    return {
        "version": SKELETON_VERSION,
        "num_qubits": plan.num_qubits,
        "circuit_name": plan.circuit_name,
        "stages": stages,
        "provenance": {
            k: v
            for k, v in plan.provenance.items()
            if isinstance(v, (str, int, float, bool, type(None)))
        },
        "program_meta": program_meta,
        "fingerprint": plan_fingerprint(plan),
    }


def skeleton_fingerprint(skeleton: Mapping) -> str:
    """Recompute the integrity checksum of a parsed skeleton.

    Produces exactly the digest :func:`plan_fingerprint` would for the
    plan the skeleton describes — same fields, same repr layout — so a
    skeleton loaded from disk can be verified against its stored
    ``fingerprint`` without first materialising a plan.
    """
    h = hashlib.blake2b(digest_size=8)
    stage_reprs = []
    for stage in skeleton["stages"]:
        partition = QubitPartition.from_sets(
            stage["local"], stage["regional"], stage["global"]
        )
        kernels = stage.get("kernels")
        stage_reprs.append(
            (
                tuple(stage["gate_indices"]),
                tuple(sorted(partition.logical_to_physical().items())),
                tuple(tuple(k["gate_indices"]) for k in kernels)
                if kernels is not None
                else None,
            )
        )
    h.update(repr((skeleton["num_qubits"], tuple(stage_reprs))).encode())
    return h.hexdigest()


def skeleton_to_plan(
    skeleton: Mapping,
    circuit: Circuit,
    mapping: Mapping[int, int] | None = None,
) -> ExecutionPlan:
    """Materialise a skeleton into an :class:`ExecutionPlan` for *circuit*.

    *mapping* is the circuit's canonical relabeling (circuit labels →
    the canonical labels the skeleton's partitions are stored in); the
    inverse is applied to every stored qubit set while gates come straight
    from *circuit* via the recorded indices — the relabeled twin of
    :func:`rebind_plan`.  Pass ``mapping=None`` (or an identity mapping)
    when the skeleton was stored in the circuit's own labels.
    """
    if skeleton["num_qubits"] != circuit.num_qubits:
        raise PlanValidationError(
            f"skeleton spans {skeleton['num_qubits']} qubits, circuit has "
            f"{circuit.num_qubits}"
        )
    total = sum(len(stage["gate_indices"]) for stage in skeleton["stages"])
    if total != len(circuit):
        raise PlanValidationError(
            f"skeleton covers {total} gates, circuit has {len(circuit)}"
        )
    if mapping is None:
        inverse = {q: q for q in range(circuit.num_qubits)}
    else:
        inverse = {canonical: original for original, canonical in mapping.items()}
    stages = []
    for stage in skeleton["stages"]:
        gates = [circuit.gates[i] for i in stage["gate_indices"]]
        kernels = None
        if stage["kernels"] is not None:
            kernels = KernelSequence(
                kernels=[
                    Kernel(
                        gates=tuple(gates[i] for i in k["gate_indices"]),
                        qubits=tuple(sorted(inverse[q] for q in k["qubits"])),
                        kernel_type=KernelType(k["kernel_type"]),
                        cost=float(k["cost"]),
                        gate_indices=tuple(k["gate_indices"]),
                    )
                    for k in stage["kernels"]
                ]
            )
        stages.append(
            Stage(
                gates=gates,
                partition=QubitPartition.from_sets(
                    (inverse[q] for q in stage["local"]),
                    (inverse[q] for q in stage["regional"]),
                    (inverse[q] for q in stage["global"]),
                ),
                kernels=kernels,
                gate_indices=list(stage["gate_indices"]),
            )
        )
    return ExecutionPlan(
        num_qubits=circuit.num_qubits,
        stages=stages,
        circuit_name=circuit.name,
        provenance=dict(skeleton.get("provenance") or {}),
    )

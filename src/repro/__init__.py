"""repro — a from-scratch reproduction of *Atlas: Hierarchical Partitioning
for Quantum Circuit Simulation on GPUs* (SC 2024).

The package is organised as:

* :mod:`repro.circuits` — circuit IR, OpenQASM I/O and the benchmark
  circuit library (Table I's 11 families plus ``hhl``),
* :mod:`repro.ilp` — the integer-linear-programming substrate used by the
  staging algorithm,
* :mod:`repro.sim` — the dense NumPy state-vector engine,
* :mod:`repro.cluster` — the multi-node GPU cluster performance model,
* :mod:`repro.core` — the paper's contribution: ILP circuit staging
  (Section IV), DP circuit kernelization (Section V), and the hierarchical
  partitioner that combines them (Algorithm 1),
* :mod:`repro.runtime` — staged execution, DRAM offloading, and the
  end-to-end timing model,
* :mod:`repro.baselines` — HyQuas / cuQuantum / Qiskit-Aer / QDAO simulator
  models used in the evaluation,
* :mod:`repro.analysis` — experiment drivers regenerating every table and
  figure of the paper's evaluation.

Quick start::

    from repro import simulate, MachineConfig
    from repro.circuits.library import qft

    result = simulate(qft(12), MachineConfig.for_circuit(12, num_gpus=4, local_qubits=10))
    print(result.timing.total_seconds, result.state.probabilities()[:4])
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuits import Circuit, Gate, from_qasm, make_gate, to_qasm
from .cluster import DEFAULT_COST_MODEL, CostModel, MachineConfig
from .core import (
    ExecutionPlan,
    KernelizeConfig,
    PartitionReport,
    partition,
)
from .runtime import TimingBreakdown, execute_plan, model_simulation_time
from .sim import StateVector, simulate_reference

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "make_gate",
    "to_qasm",
    "from_qasm",
    "StateVector",
    "simulate_reference",
    "MachineConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ExecutionPlan",
    "KernelizeConfig",
    "partition",
    "PartitionReport",
    "execute_plan",
    "model_simulation_time",
    "TimingBreakdown",
    "SimulationResult",
    "simulate",
    "__version__",
]


@dataclass
class SimulationResult:
    """Everything produced by one end-to-end :func:`simulate` call."""

    state: StateVector | None
    plan: ExecutionPlan
    report: PartitionReport
    timing: TimingBreakdown


def simulate(
    circuit: Circuit,
    machine: MachineConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    initial_state: StateVector | None = None,
    stager: str = "ilp",
    kernelizer: str = "atlas",
    kernelize_config: KernelizeConfig | None = None,
    execute: bool = True,
) -> SimulationResult:
    """Partition, execute, and time *circuit* on *machine* — the one-call API.

    Parameters
    ----------
    circuit:
        Input circuit (``machine.total_qubits()`` must match its size).
    machine:
        Cluster configuration; use :meth:`MachineConfig.for_circuit` for the
        common cases.
    cost_model:
        Kernel cost model used by the kernelizer and the timing model.
    initial_state:
        Optional starting state (default |0…0>).
    stager, kernelizer, kernelize_config:
        Partitioning strategy knobs (see :func:`repro.core.partition`).
    execute:
        When False, skip the functional state-vector execution (useful for
        circuits too large to materialise) and return ``state=None``.
    """
    plan, report = partition(
        circuit,
        machine,
        cost_model=cost_model,
        stager=stager,
        kernelizer=kernelizer,
        kernelize_config=kernelize_config,
    )
    timing = model_simulation_time(plan, machine, cost_model)
    state = None
    if execute:
        state, _trace = execute_plan(plan, initial_state=initial_state, machine=machine)
    return SimulationResult(state=state, plan=plan, report=report, timing=timing)

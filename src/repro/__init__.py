"""repro — a from-scratch reproduction of *Atlas: Hierarchical Partitioning
for Quantum Circuit Simulation on GPUs* (SC 2024).

The package is organised as:

* :mod:`repro.circuits` — circuit IR, OpenQASM I/O and the benchmark
  circuit library (Table I's 11 families plus ``hhl``),
* :mod:`repro.ilp` — the integer-linear-programming substrate used by the
  staging algorithm,
* :mod:`repro.sim` — the dense NumPy state-vector engine,
* :mod:`repro.cluster` — the multi-node GPU cluster performance model,
* :mod:`repro.core` — the paper's contribution: ILP circuit staging
  (Section IV), DP circuit kernelization (Section V), and the hierarchical
  partitioner that combines them (Algorithm 1),
* :mod:`repro.runtime` — staged execution, DRAM offloading, the
  end-to-end timing model, and the deterministic fault-injection harness,
* :mod:`repro.errors` — the typed error taxonomy (transient vs permanent)
  plus the :class:`RetryPolicy` / :class:`Deadline` primitives that the
  executors and the Session share,
* :mod:`repro.session` — the :class:`Session` facade: pluggable execution
  backends, a structural plan cache, and the shots/observables job API,
* :mod:`repro.baselines` — HyQuas / cuQuantum / Qiskit-Aer / QDAO simulator
  models used in the evaluation,
* :mod:`repro.analysis` — experiment drivers regenerating every table and
  figure of the paper's evaluation.

Quick start::

    from repro import Session, MachineConfig
    from repro.circuits.library import qft

    machine = MachineConfig.for_circuit(12, num_shards=4, local_qubits=10)
    with Session(machine) as session:
        result = session.run(qft(12), shots=100).result()
    print(result.timing.total_seconds, result.counts())

:func:`simulate` remains as a one-shot convenience over the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuits import Circuit, Gate, from_qasm, make_gate, to_qasm
from .cluster import DEFAULT_COST_MODEL, CostModel, MachineConfig
from .check import (
    CheckReport,
    verify_plan,
    verify_program,
    verify_schedule,
)
from .errors import (
    AdmissionError,
    CacheCorruptionError,
    Deadline,
    DeadlineExceeded,
    IntegrityError,
    JobCancelledError,
    KernelError,
    PermanentError,
    PlanValidationError,
    QueueFullError,
    ReproError,
    RetryPolicy,
    ServiceClosedError,
    SessionClosedError,
    ShardIOError,
    SpecParseError,
    StateValidationError,
    StaticCheckError,
    TenantQuotaError,
    TransientError,
)
from .core import (
    ExecutionPlan,
    KernelizeConfig,
    PartitionReport,
    partition,
)
from .planner import PassManager, available_presets, build_plan, register_preset
from .runtime import (
    CheckpointConfig,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    IntegrityConfig,
    TimingBreakdown,
    compile_plan,
    execute_plan,
    model_simulation_time,
)
from .service import (
    AdmissionPolicy,
    JobJournal,
    SharedPlanStore,
    SimulationService,
    replay_journal,
)
from .session import Job, JobStatus, Result, Session
from .sim import CompiledProgram, StateVector, simulate_reference

__version__ = "1.7.0"

__all__ = [
    "Circuit",
    "Gate",
    "make_gate",
    "to_qasm",
    "from_qasm",
    "StateVector",
    "simulate_reference",
    "MachineConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ExecutionPlan",
    "KernelizeConfig",
    "partition",
    "PartitionReport",
    "execute_plan",
    "compile_plan",
    "CompiledProgram",
    "model_simulation_time",
    "TimingBreakdown",
    "Session",
    "Job",
    "JobStatus",
    "Result",
    # Multi-tenant service layer.
    "SimulationService",
    "SharedPlanStore",
    "AdmissionPolicy",
    "PassManager",
    "build_plan",
    "available_presets",
    "register_preset",
    # Robustness: error taxonomy, retry/deadline, fault injection.
    "ReproError",
    "TransientError",
    "PermanentError",
    "ShardIOError",
    "KernelError",
    "PlanValidationError",
    "StateValidationError",
    "AdmissionError",
    "StaticCheckError",
    "DeadlineExceeded",
    "CacheCorruptionError",
    "IntegrityError",
    "SpecParseError",
    "SessionClosedError",
    "ServiceClosedError",
    "QueueFullError",
    "TenantQuotaError",
    "JobCancelledError",
    "RetryPolicy",
    "Deadline",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    # Durable execution: checkpoints, integrity monitors, job journal.
    "CheckpointConfig",
    "IntegrityConfig",
    "JobJournal",
    "replay_journal",
    # Static verification layer.
    "CheckReport",
    "verify_plan",
    "verify_program",
    "verify_schedule",
    "SimulationResult",
    "simulate",
    "__version__",
]


@dataclass
class SimulationResult:
    """Everything produced by one end-to-end :func:`simulate` call."""

    state: StateVector | None
    plan: ExecutionPlan
    report: PartitionReport | None
    timing: TimingBreakdown


def simulate(
    circuit: Circuit,
    machine: MachineConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    initial_state: StateVector | None = None,
    planner: "str | PassManager | None" = None,
    stager: str = "ilp",
    kernelizer: str = "atlas",
    kernelize_config: KernelizeConfig | None = None,
    execute: bool = True,
) -> SimulationResult:
    """Partition, execute, and time *circuit* on *machine* — the one-call API.

    A thin one-shot shim over :class:`repro.session.Session` with the
    in-core backend: one circuit, one plan, no caching across calls.  Use a
    Session directly for repeated runs (plan-cache amortisation), shard
    streaming backends, shots, or observables.

    Parameters
    ----------
    circuit:
        Input circuit (``machine.total_qubits()`` must match its size).
    machine:
        Cluster configuration; use :meth:`MachineConfig.for_circuit` for the
        common cases.
    cost_model:
        Kernel cost model used by the kernelizer and the timing model.
    initial_state:
        Optional starting state (default |0…0>).
    planner:
        Planning pipeline preset name or :class:`PassManager`; when given
        it replaces the legacy knobs below (see :mod:`repro.planner`).
    stager, kernelizer, kernelize_config:
        Legacy partitioning strategy knobs (see :func:`repro.core.partition`).
    execute:
        When False, skip the functional state-vector execution (useful for
        circuits too large to materialise) and return ``state=None``.
    """
    if planner is not None:
        session_kwargs = dict(planner=planner)
    else:
        session_kwargs = dict(
            stager=stager,
            kernelizer=kernelizer,
            kernelize_config=kernelize_config,
        )
    with Session(
        machine,
        backend="incore",
        cost_model=cost_model,
        **session_kwargs,
    ) as session:
        job = session.run(circuit, initial_state=initial_state, execute=execute)
        result = job.result() if execute else job.modelled()
    return SimulationResult(
        state=result.state,
        plan=result.plan,
        report=result.report,
        timing=result.timing,
    )

"""Circuit transformation passes.

The Atlas artifact preprocesses circuits before partitioning: multi-qubit
gates outside the supported vocabulary are decomposed, runs of adjacent
single-qubit gates are merged, and trivially cancelling pairs are removed
(fewer gates means smaller ILPs and DP state spaces).  This module provides
those passes as pure functions on :class:`~repro.circuits.circuit.Circuit`:

* :func:`decompose_gates` — rewrite ``swap``/``ccx``/``cswap``/``ryy``/``rxx``
  into {single-qubit, cx, cz, cp} gates;
* :func:`cancel_adjacent_inverses` — remove adjacent self-inverse pairs
  (``h h``, ``x x``, ``cx cx``, ...) and merge adjacent rotations about the
  same axis;
* :func:`merge_single_qubit_runs` — fuse maximal runs of single-qubit gates
  on the same qubit into one ``u3`` gate;
* :func:`optimize` — the standard pipeline (decompose → merge → cancel),
  run to a fixed point;
* :func:`preprocess_circuit` — the same passes behind a *named registry*
  (:data:`CIRCUIT_PASSES`), so callers — and the planning pipeline's
  optional ``preprocess`` pass (:mod:`repro.planner`) — can select and
  order them explicitly.

Every pass is semantics-preserving; the test suite checks each one against
the reference simulator on random circuits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "decompose_gates",
    "cancel_adjacent_inverses",
    "merge_single_qubit_runs",
    "optimize",
    "preprocess_circuit",
    "CIRCUIT_PASSES",
]


# ---------------------------------------------------------------------------
# Decomposition
# ---------------------------------------------------------------------------

def _decompose_gate(gate: Gate) -> list[Gate]:
    """Decompose one gate into the {1q, cx, cz, cp} basis (or keep it)."""
    name = gate.name
    if name == "swap":
        a, b = gate.qubits
        return [Gate("cx", (b, a)), Gate("cx", (a, b)), Gate("cx", (b, a))]
    if name == "ccx":
        t, c0, c1 = gate.qubits
        # Standard 6-CX Toffoli decomposition.
        return [
            Gate("h", (t,)),
            Gate("cx", (t, c1)), Gate("tdg", (t,)),
            Gate("cx", (t, c0)), Gate("t", (t,)),
            Gate("cx", (t, c1)), Gate("tdg", (t,)),
            Gate("cx", (t, c0)), Gate("t", (c1,)), Gate("t", (t,)),
            Gate("cx", (c1, c0)), Gate("h", (t,)),
            Gate("t", (c0,)), Gate("tdg", (c1,)),
            Gate("cx", (c1, c0)),
        ]
    if name == "ccz":
        t, c0, c1 = gate.qubits
        return [Gate("h", (t,))] + _decompose_gate(Gate("ccx", (t, c0, c1))) + [Gate("h", (t,))]
    if name == "cswap":
        a, b, c = gate.qubits
        return (
            [Gate("cx", (a, b))]
            + _decompose_gate(Gate("ccx", (b, a, c)))
            + [Gate("cx", (a, b))]
        )
    if name == "rxx":
        (theta,) = gate.params
        a, b = gate.qubits
        return [
            Gate("h", (a,)), Gate("h", (b,)),
            Gate("cx", (b, a)), Gate("rz", (b,), (theta,)), Gate("cx", (b, a)),
            Gate("h", (a,)), Gate("h", (b,)),
        ]
    if name == "ryy":
        (theta,) = gate.params
        a, b = gate.qubits
        half_pi = math.pi / 2
        return [
            Gate("rx", (a,), (half_pi,)), Gate("rx", (b,), (half_pi,)),
            Gate("cx", (b, a)), Gate("rz", (b,), (theta,)), Gate("cx", (b, a)),
            Gate("rx", (a,), (-half_pi,)), Gate("rx", (b,), (-half_pi,)),
        ]
    return [gate]


def decompose_gates(circuit: Circuit) -> Circuit:
    """Decompose unsupported / wide gates into the {1q, cx, cz, cp} basis."""
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        for decomposed in _decompose_gate(gate):
            out.append(decomposed)
    return out


# ---------------------------------------------------------------------------
# Cancellation / merging
# ---------------------------------------------------------------------------

_SELF_INVERSE = {"h", "x", "y", "z", "cx", "cy", "cz", "swap", "ccx", "ccz", "cswap"}
_ROTATIONS = {"rx", "ry", "rz", "p", "cp", "crz", "crx", "cry", "rzz", "rxx", "ryy"}


def cancel_adjacent_inverses(circuit: Circuit) -> Circuit:
    """Remove adjacent self-inverse pairs and merge adjacent equal-axis rotations.

    Two gates are "adjacent" when no other gate touching any of their qubits
    sits between them, which a single left-to-right sweep with a per-qubit
    frontier detects exactly.
    """
    gates: list[Gate | None] = list(circuit.gates)
    last_on_qubit: dict[int, int] = {}

    for idx, gate in enumerate(circuit.gates):
        prev_idx = None
        adjacent = True
        for q in gate.qubits:
            p = last_on_qubit.get(q)
            if prev_idx is None:
                prev_idx = p
            elif p != prev_idx:
                adjacent = False
        prev = gates[prev_idx] if (adjacent and prev_idx is not None) else None
        merged = False
        if prev is not None and prev_idx is not None:
            if gates[prev_idx] is not None and prev.qubits == gate.qubits:
                if gate.name in _SELF_INVERSE and prev.name == gate.name and not gate.params:
                    gates[prev_idx] = None
                    gates[idx] = None
                    merged = True
                elif (
                    gate.name in _ROTATIONS
                    and prev.name == gate.name
                ):
                    angle = prev.params[0] + gate.params[0]
                    if abs(angle) < 1e-12 or abs(abs(angle) - 4 * math.pi) < 1e-12:
                        gates[prev_idx] = None
                        gates[idx] = None
                    else:
                        gates[prev_idx] = None
                        gates[idx] = Gate(gate.name, gate.qubits, (angle,))
                    merged = True
        # Update frontiers.
        for q in gate.qubits:
            if merged and gates[idx] is None:
                # Pair removed: the frontier reverts to whatever preceded the
                # cancelled pair; conservatively clear it.
                last_on_qubit.pop(q, None)
            else:
                last_on_qubit[q] = idx

    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in gates:
        if gate is not None:
            out.append(gate)
    return out


def merge_single_qubit_runs(circuit: Circuit) -> Circuit:
    """Fuse maximal runs of single-qubit gates on one qubit into a ``u3``.

    The fused unitary is converted back to ``u3`` angles (up to global
    phase), which keeps the circuit in the standard vocabulary.  Runs of
    length one are left untouched.
    """
    out_gates: list[Gate] = []
    pending: dict[int, list[Gate]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, [])
        if not run:
            return
        if len(run) == 1:
            out_gates.append(run[0])
            return
        matrix = np.eye(2, dtype=np.complex128)
        for g in run:
            matrix = g.matrix() @ matrix
        theta, phi, lam = _u3_angles(matrix)
        fused = Gate("u3", (qubit,), (theta, phi, lam))
        # Safety net: only replace the run if the u3 reconstruction matches
        # the fused matrix up to a global phase; otherwise keep the run.
        if _same_up_to_phase(fused.matrix(), matrix):
            out_gates.append(fused)
        else:  # pragma: no cover - numerical corner cases
            out_gates.extend(run)

    for gate in circuit:
        if gate.num_qubits == 1:
            pending.setdefault(gate.qubits[0], []).append(gate)
        else:
            for q in gate.qubits:
                flush(q)
            out_gates.append(gate)
    for q in list(pending):
        flush(q)

    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in out_gates:
        out.append(gate)
    return out


def _u3_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """Extract (theta, phi, lam) such that U3(theta, phi, lam) ~ matrix (global phase)."""
    # Remove the global phase so that the (0,0) entry is real non-negative.
    a = matrix[0, 0]
    phase = a / abs(a) if abs(a) > 1e-12 else matrix[1, 0] / abs(matrix[1, 0])
    m = matrix / phase
    theta = 2.0 * math.atan2(abs(m[1, 0]), abs(m[0, 0]))
    if abs(m[1, 0]) < 1e-12:
        phi = 0.0
        lam = cmath.phase(m[1, 1]) if abs(m[1, 1]) > 1e-12 else 0.0
    elif abs(m[0, 0]) < 1e-12:
        phi = 0.0
        lam = cmath.phase(-m[0, 1])
    else:
        phi = cmath.phase(m[1, 0] / m[0, 0])
        lam = cmath.phase(-m[0, 1] / m[0, 0])
    return theta, phi, lam


def _same_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True when the two matrices are equal up to a global phase."""
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(a[idx]) < atol or abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = b[idx] / a[idx]
    return bool(np.allclose(a * phase, b, atol=atol))


def optimize(circuit: Circuit, max_rounds: int = 4) -> Circuit:
    """Standard preprocessing pipeline: decompose, merge, cancel (to fixpoint)."""
    current = decompose_gates(circuit)
    for _ in range(max_rounds):
        before = len(current)
        current = cancel_adjacent_inverses(current)
        current = merge_single_qubit_runs(current)
        if len(current) >= before:
            break
    return current


#: Named circuit-transformation passes, selectable by
#: :func:`preprocess_circuit` and by the planning pipeline's optional
#: ``preprocess`` pass.  Every entry maps a circuit to a semantics-
#: equivalent circuit.
CIRCUIT_PASSES: dict = {
    "decompose": decompose_gates,
    "cancel": cancel_adjacent_inverses,
    "merge-1q": merge_single_qubit_runs,
    "optimize": optimize,
}


def preprocess_circuit(circuit: Circuit, passes=("optimize",)) -> Circuit:
    """Run the named circuit passes in order (see :data:`CIRCUIT_PASSES`).

    Returns a semantics-equivalent circuit; gate count and gate indices may
    change, so anything keyed on the *input* circuit's indices (structural
    plan-cache rebinds in particular) must be keyed on the returned circuit
    instead.
    """
    current = circuit
    for name in passes:
        try:
            fn = CIRCUIT_PASSES[name]
        except KeyError as exc:
            raise ValueError(
                f"unknown circuit pass {name!r}; known: {sorted(CIRCUIT_PASSES)}"
            ) from exc
        current = fn(current)
    return current

"""Benchmark circuit library.

This subpackage re-implements, from their published constructions, the 11
scalable MQT-Bench / NWQBench circuit families used in the Atlas paper's
evaluation (Table I) plus the ``hhl`` case-study circuit (Table II) and
random-circuit generators for testing.

The :data:`CIRCUIT_FAMILIES` registry maps the family name used in the
paper's figures to a generator ``f(num_qubits) -> Circuit``.
"""

from __future__ import annotations

from typing import Callable

from ..circuit import Circuit
from .ae import ae
from .dj import dj
from .ghz import ghz
from .graphstate import graphstate
from .hhl import hhl, hhl_padded
from .ising import ising
from .qft import inverse_qft, qft
from .qpe import qpeexact
from .qsvm import qsvm
from .random_circuits import brickwork_circuit, random_circuit
from .su2random import su2random
from .vqc import vqc
from .wstate import wstate

__all__ = [
    "ae", "dj", "ghz", "graphstate", "ising", "qft", "inverse_qft",
    "qpeexact", "qsvm", "su2random", "vqc", "wstate", "hhl", "hhl_padded",
    "random_circuit", "brickwork_circuit",
    "CIRCUIT_FAMILIES", "get_circuit", "PAPER_FAMILIES",
]

#: The 11 scalable families evaluated in the paper's Figure 5 / Table I.
PAPER_FAMILIES: tuple[str, ...] = (
    "ae", "dj", "ghz", "graphstate", "ising", "qft",
    "qpeexact", "qsvm", "su2random", "vqc", "wstate",
)

CIRCUIT_FAMILIES: dict[str, Callable[[int], Circuit]] = {
    "ae": ae,
    "dj": dj,
    "ghz": ghz,
    "graphstate": graphstate,
    "ising": ising,
    "qft": qft,
    "qpeexact": qpeexact,
    "qsvm": qsvm,
    "su2random": su2random,
    "vqc": vqc,
    "wstate": wstate,
    "hhl": hhl,
}


def get_circuit(family: str, num_qubits: int) -> Circuit:
    """Build the named benchmark circuit at the requested size."""
    try:
        generator = CIRCUIT_FAMILIES[family]
    except KeyError as exc:
        raise ValueError(
            f"unknown circuit family {family!r}; known: {sorted(CIRCUIT_FAMILIES)}"
        ) from exc
    return generator(num_qubits)
